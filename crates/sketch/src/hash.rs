//! Seeded pairwise-independent hash family.
//!
//! §IV-A of the paper assumes a *family of pairwise independent hash
//! functions*, one per layer, so that the false-positive events of different
//! layers multiply (the independence that makes intersection shrink false
//! positives exponentially). We implement the classic 2-universal
//! multiply-add-mod-prime scheme over the Mersenne prime `p = 2^61 − 1`:
//!
//! ```text
//! h_{a,b}(x) = ((a · pre(x) + b) mod p) mod m
//! ```
//!
//! where `pre` is a 64-bit FNV-1a prehash of the word bytes and `(a, b)` are
//! per-layer seeds drawn uniformly from `[1, p) × [0, p)`. Only the seeds
//! need to be persisted (in the header block) to reconstruct the family at
//! Searcher initialization — "it retrieves hash seeds … then reconstructs
//! hash functions, and hence, MHT" (§III-C).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Mersenne prime `2^61 − 1` used as the field modulus.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Per-layer hash seeds `(a, b)` for the multiply-add-mod-prime scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSeed {
    /// Multiplier, in `[1, p)`.
    pub a: u64,
    /// Offset, in `[0, p)`.
    pub b: u64,
}

/// 64-bit FNV-1a prehash of a byte string.
///
/// Maps arbitrary-length words onto the 64-bit domain the 2-universal family
/// operates on. FNV-1a mixes every byte and is cheap; the universality
/// guarantee then comes from the outer multiply-add-mod-prime stage.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// `(a * x + b) mod (2^61 - 1)` without 128-bit division.
///
/// Uses the Mersenne-prime folding trick: for `p = 2^61 − 1`,
/// `y mod p = (y >> 61) + (y & p)`, folded twice.
#[inline]
fn mul_add_mod_m61(a: u64, x: u64, b: u64) -> u64 {
    let prod = (a as u128) * (x as u128) + (b as u128);
    let lo = (prod & MERSENNE_61 as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut r = lo.wrapping_add(hi & MERSENNE_61).wrapping_add(hi >> 61);
    while r >= MERSENNE_61 {
        r -= MERSENNE_61;
    }
    r
}

/// A seeded family of `L` pairwise-independent hash functions, each mapping
/// words to `[0, bins_per_layer)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFamily {
    seeds: Vec<LayerSeed>,
    bins_per_layer: usize,
}

impl HashFamily {
    /// Draw a fresh family of `layers` functions onto `bins_per_layer` bins,
    /// deterministically from `seed`.
    pub fn generate(layers: usize, bins_per_layer: usize, seed: u64) -> Self {
        assert!(layers > 0, "need at least one layer");
        assert!(bins_per_layer > 0, "need at least one bin per layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = (0..layers)
            .map(|_| LayerSeed {
                a: rng.gen_range(1..MERSENNE_61),
                b: rng.gen_range(0..MERSENNE_61),
            })
            .collect();
        HashFamily {
            seeds,
            bins_per_layer,
        }
    }

    /// Reconstruct a family from persisted seeds (Searcher initialization).
    pub fn from_seeds(seeds: Vec<LayerSeed>, bins_per_layer: usize) -> Self {
        assert!(!seeds.is_empty(), "need at least one layer seed");
        assert!(bins_per_layer > 0, "need at least one bin per layer");
        HashFamily {
            seeds,
            bins_per_layer,
        }
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        self.seeds.len()
    }

    /// Number of bins per layer (`B / L` in the paper's notation).
    pub fn bins_per_layer(&self) -> usize {
        self.bins_per_layer
    }

    /// The persisted per-layer seeds.
    pub fn seeds(&self) -> &[LayerSeed] {
        &self.seeds
    }

    /// Bin index of `word` in `layer`.
    #[inline]
    pub fn bin(&self, layer: usize, word: &str) -> usize {
        let pre = fnv1a64(word.as_bytes());
        let s = self.seeds[layer];
        (mul_add_mod_m61(s.a, pre, s.b) % self.bins_per_layer as u64) as usize
    }

    /// Bin indices of `word` across all layers, in layer order.
    pub fn bins(&self, word: &str) -> Vec<usize> {
        (0..self.layers()).map(|l| self.bin(l, word)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_distinguishes_words() {
        assert_ne!(fnv1a64(b"hello"), fnv1a64(b"world"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"a"));
        // Known FNV-1a vector: empty string hashes to the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn mod_m61_agrees_with_u128_reference() {
        let cases = [
            (1u64, 0u64, 0u64),
            (123_456_789, 987_654_321, 555),
            (MERSENNE_61 - 1, MERSENNE_61 - 1, MERSENNE_61 - 1),
            (u64::MAX >> 3, u64::MAX, 17),
        ];
        for (a, x, b) in cases {
            let expect = (((a as u128) * (x as u128) + b as u128) % MERSENNE_61 as u128) as u64;
            assert_eq!(mul_add_mod_m61(a, x, b), expect, "a={a} x={x} b={b}");
        }
    }

    #[test]
    fn bins_are_in_range_and_deterministic() {
        let fam = HashFamily::generate(4, 100, 7);
        for word in ["hello", "airphant", "xyzzy", ""] {
            let bins = fam.bins(word);
            assert_eq!(bins.len(), 4);
            assert!(bins.iter().all(|&b| b < 100));
            assert_eq!(bins, fam.bins(word), "determinism");
        }
    }

    #[test]
    fn layers_use_different_functions() {
        let fam = HashFamily::generate(8, 1_000, 3);
        // The same word should not land in the same bin index in every
        // layer (overwhelmingly unlikely with independent seeds).
        let bins = fam.bins("airphant");
        let distinct: HashSet<_> = bins.iter().collect();
        assert!(distinct.len() > 1, "bins {bins:?} look layer-correlated");
    }

    #[test]
    fn seed_roundtrip_reconstructs_family() {
        let fam = HashFamily::generate(3, 64, 99);
        let rebuilt = HashFamily::from_seeds(fam.seeds().to_vec(), fam.bins_per_layer());
        for word in ["a", "b", "longer-word-with-dashes"] {
            assert_eq!(fam.bins(word), rebuilt.bins(word));
        }
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let f1 = HashFamily::generate(1, 1_000_000, 1);
        let f2 = HashFamily::generate(1, 1_000_000, 2);
        let differs = (0..100)
            .map(|i| format!("w{i}"))
            .any(|w| f1.bin(0, &w) != f2.bin(0, &w));
        assert!(differs);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-square-ish sanity check: hash 10_000 distinct words into 16
        // bins; each bin should get 625 ± a generous margin.
        let fam = HashFamily::generate(1, 16, 42);
        let mut counts = [0usize; 16];
        for i in 0..10_000 {
            counts[fam.bin(0, &format!("word-{i}"))] += 1;
        }
        for (bin, &c) in counts.iter().enumerate() {
            assert!(
                (425..=825).contains(&c),
                "bin {bin} has suspicious count {c}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        HashFamily::generate(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        HashFamily::generate(1, 0, 1);
    }
}
