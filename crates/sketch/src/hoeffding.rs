//! Concentration of observed false positives (§IV-A0d, Equation 5) and the
//! corpus coefficient `σ_X` of Table II.
//!
//! Each potential false positive is a scaled Bernoulli
//! `x_{i,w} = p_w·b_i`, so Hoeffding's inequality bounds the deviation of
//! the observed count `X` from its expectation `F(L)`:
//!
//! ```text
//! Pr[X ≥ F(L) + ε] ≤ exp(−2ε²/σ_X²),   σ_X² = Σ_i Σ_{w∉W_i} p_w²
//! ```
//!
//! Under the default uniform prior `p_w = 1/|W|`, the variance proxy
//! simplifies to `σ_X² = Σ_i (|W| − |W_i|)/|W|²` — the `σ_X` column the
//! paper reports per corpus in Table II.

use crate::analysis::CorpusShape;

/// `σ_X²` under the uniform query-word prior.
pub fn sigma_x_squared(shape: &CorpusShape) -> f64 {
    let w = shape.n_terms().max(1) as f64;
    shape
        .groups()
        .iter()
        .map(|g| g.docs as f64 * (w - g.size as f64).max(0.0) / (w * w))
        .sum()
}

/// The corpus coefficient `σ_X` (Table II).
pub fn sigma_x(shape: &CorpusShape) -> f64 {
    sigma_x_squared(shape).sqrt()
}

/// Deviation bound: the `ε` such that `Pr[X ≥ F(L) + ε] ≤ δ`, i.e.
/// `ε = sqrt(σ_X²·ln(1/δ)/2)`.
pub fn deviation_bound(shape: &CorpusShape, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    (sigma_x_squared(shape) * (1.0 / delta).ln() / 2.0).sqrt()
}

/// Failure probability for a given deviation:
/// `δ = exp(−2ε²/σ_X²)` (Equation 5).
pub fn failure_probability(shape: &CorpusShape, epsilon: f64) -> f64 {
    let s2 = sigma_x_squared(shape);
    if s2 <= 0.0 {
        return 0.0;
    }
    (-2.0 * epsilon * epsilon / s2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cranfield_sigma_matches_table_ii() {
        // Table II: Cranfield has 1.4e3 documents, 5.3e3 terms, σ_X = 0.51.
        // With |W_i| ≪ |W|, σ_X² ≈ n/|W| = 1398/5300 ≈ 0.264 → σ_X ≈ 0.514.
        let sizes = vec![60u64; 1398]; // |Wi| ≈ 60 distinct words each
        let shape = CorpusShape::uniform(sizes, 5_300);
        let s = sigma_x(&shape);
        assert!((s - 0.51).abs() < 0.02, "σ_X = {s}, Table II says 0.51");
    }

    #[test]
    fn diag_sigma_is_one() {
        // Table II: diag(8,8,0) has σ_X = 1.00 — n = |W| and |W_i| = 1,
        // so σ_X² = n(|W|−1)/|W|² ≈ 1. (Scaled down for test runtime.)
        let n = 100_000u64;
        let shape = CorpusShape::uniform(vec![1u64; n as usize], n);
        let s = sigma_x(&shape);
        assert!((s - 1.0).abs() < 0.01, "σ_X = {s}");
    }

    #[test]
    fn skewed_corpora_have_larger_sigma() {
        // Windows in Table II has σ_X = 11.73: many documents per term
        // (n ≫ |W|) inflates σ_X² = Σ(…)/|W|² ≈ n/|W|.
        let windows_like = CorpusShape::uniform(vec![10u64; 110_000], 830);
        let hdfs_like = CorpusShape::uniform(vec![12u64; 11_000], 3_600);
        assert!(sigma_x(&windows_like) > 3.0 * sigma_x(&hdfs_like));
    }

    #[test]
    fn deviation_bound_inverts_failure_probability() {
        let shape = CorpusShape::uniform(vec![20u64; 5_000], 10_000);
        let delta = 1e-4;
        let eps = deviation_bound(&shape, delta);
        let back = failure_probability(&shape, eps);
        assert!((back - delta).abs() / delta < 1e-9);
    }

    #[test]
    fn deviation_shrinks_with_vocabulary() {
        // "the deviation would instead shrink as the number of words
        // increases: ε = O(sqrt(n/|W|))".
        let small_vocab = CorpusShape::uniform(vec![10u64; 1_000], 1_000);
        let large_vocab = CorpusShape::uniform(vec![10u64; 1_000], 100_000);
        assert!(deviation_bound(&large_vocab, 1e-6) < deviation_bound(&small_vocab, 1e-6));
    }

    #[test]
    fn empty_corpus_never_deviates() {
        let shape = CorpusShape::uniform(std::iter::empty(), 100);
        assert_eq!(sigma_x(&shape), 0.0);
        assert_eq!(failure_probability(&shape, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        let shape = CorpusShape::uniform(vec![1u64], 10);
        deviation_bound(&shape, 1.0);
    }
}
