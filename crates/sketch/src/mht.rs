//! The Multilayer Hash Table (MHT): the in-memory half of a persisted IoU
//! Sketch.
//!
//! Table I of the paper draws the correspondence: Lucene's skip-list term
//! index ↔ Airphant's MHT; Lucene's postings lists ↔ Airphant's superposts.
//! The MHT holds, per layer, a pointer `(block, offset, len)` to each bin's
//! superpost in cloud storage, plus the hash seeds and the exact
//! common-word dictionary. It is "downloaded and kept in memory when a
//! certain corpus is searched for the first time" (§III-B); its memory
//! footprint is `O(B)` pointers + `O(L)` seeds.

use crate::encoding::{BinPointer, HeaderBlock, StringTable};
use crate::hash::HashFamily;
use crate::sketch::SketchConfig;
use crate::vocab::Vocabulary;
use std::collections::HashMap;
use std::sync::Arc;

/// How a word resolves through the MHT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordLookup {
    /// A common word: one pointer to its exact postings list.
    Common(BinPointer),
    /// A sketched word: `L` superpost pointers, one per layer, to be
    /// fetched in a single concurrent batch and intersected.
    Sketched(Vec<BinPointer>),
}

/// The in-memory multilayer hash table.
#[derive(Debug, Clone)]
pub struct Mht {
    config: SketchConfig,
    family: HashFamily,
    /// `pointers[layer][bin]`.
    pointers: Vec<Vec<BinPointer>>,
    common: HashMap<String, BinPointer>,
    string_table: StringTable,
    meta: Vec<(String, String)>,
    /// Sorted vocabulary + suffix array (v2 segments built with prefix/
    /// fuzzy support; `None` for v1 and older v2 segments).
    vocab: Option<Arc<Vocabulary>>,
}

impl Mht {
    /// Assemble an MHT directly (Builder side).
    pub fn new(
        config: SketchConfig,
        family: HashFamily,
        pointers: Vec<Vec<BinPointer>>,
        common: HashMap<String, BinPointer>,
        string_table: StringTable,
        meta: Vec<(String, String)>,
    ) -> Self {
        assert_eq!(pointers.len(), config.layers, "one pointer table per layer");
        Mht {
            config,
            family,
            pointers,
            common,
            string_table,
            meta,
            vocab: None,
        }
    }

    /// Attach (or clear) the vocabulary (Builder side, v2 segments).
    pub fn with_vocab(mut self, vocab: Option<Vocabulary>) -> Self {
        self.vocab = vocab.map(Arc::new);
        self
    }

    /// Reconstruct an MHT from a decoded header block (Searcher
    /// initialization: "it retrieves hash seeds and postings list pointers
    /// … then reconstructs hash functions, and hence, MHT").
    pub fn from_header(header: HeaderBlock) -> Self {
        let bins_per_layer = header.pointers.first().map(|l| l.len()).unwrap_or(1).max(1);
        let family = HashFamily::from_seeds(header.seeds, bins_per_layer);
        Mht {
            config: header.config,
            family,
            pointers: header.pointers,
            common: header.common.into_iter().collect(),
            string_table: header.string_table,
            meta: header.meta,
            vocab: header.vocab.map(Arc::new),
        }
    }

    /// Serialize into a header block for persistence.
    pub fn to_header(&self) -> HeaderBlock {
        let mut common: Vec<(String, BinPointer)> =
            self.common.iter().map(|(w, p)| (w.clone(), *p)).collect();
        common.sort_by(|a, b| a.0.cmp(&b.0));
        HeaderBlock {
            config: self.config.clone(),
            seeds: self.family.seeds().to_vec(),
            string_table: self.string_table.clone(),
            pointers: self.pointers.clone(),
            common,
            meta: self.meta.clone(),
            vocab: self.vocab.as_deref().cloned(),
        }
    }

    /// Structural configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The hash family.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// The blob-name interning table.
    pub fn string_table(&self) -> &StringTable {
        &self.string_table
    }

    /// Free-form metadata recorded by the Builder.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// The vocabulary, when this segment carries one.
    pub fn vocab(&self) -> Option<&Arc<Vocabulary>> {
        self.vocab.as_ref()
    }

    /// Metadata value by key.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.config.layers
    }

    /// Resolve `word` to its superpost pointers (or exact common pointer).
    pub fn lookup(&self, word: &str) -> WordLookup {
        if let Some(&ptr) = self.common.get(word) {
            return WordLookup::Common(ptr);
        }
        let ptrs = (0..self.config.layers)
            .map(|layer| self.pointers[layer][self.family.bin(layer, word)])
            .collect();
        WordLookup::Sketched(ptrs)
    }

    /// The pointer for a specific `(layer, bin)`.
    pub fn pointer(&self, layer: usize, bin: usize) -> BinPointer {
        self.pointers[layer][bin]
    }

    /// Approximate in-memory footprint in bytes (pointers dominate) — the
    /// paper's "runtime size about 2 MB" claim for `B = 10^5` is checked
    /// against this.
    pub fn approx_memory_bytes(&self) -> usize {
        let ptrs: usize = self
            .pointers
            .iter()
            .map(|l| l.len() * std::mem::size_of::<BinPointer>())
            .sum();
        let common: usize = self
            .common
            .keys()
            .map(|w| w.len() + std::mem::size_of::<BinPointer>() + 16)
            .sum();
        let vocab = self.vocab.as_ref().map_or(0, |v| v.approx_bytes());
        ptrs + common + vocab + self.family.seeds().len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashFamily;

    fn sample_mht() -> Mht {
        let config = SketchConfig {
            total_bins: 20,
            layers: 2,
            common_fraction: 0.1,
        };
        let bins = config.bins_per_layer();
        let family = HashFamily::generate(2, bins, 11);
        let pointers = (0..2u32)
            .map(|layer| {
                (0..bins as u64)
                    .map(|b| BinPointer::new(layer, b * 100, 100))
                    .collect()
            })
            .collect();
        let mut common = HashMap::new();
        common.insert("the".to_string(), BinPointer::new(9, 0, 5_000));
        let mut st = StringTable::new();
        st.intern("docs/blob-0");
        Mht::new(
            config,
            family,
            pointers,
            common,
            st,
            vec![("corpus".into(), "unit-test".into())],
        )
    }

    #[test]
    fn lookup_common_word_short_circuits() {
        let mht = sample_mht();
        match mht.lookup("the") {
            WordLookup::Common(p) => assert_eq!(p, BinPointer::new(9, 0, 5_000)),
            other => panic!("expected Common, got {other:?}"),
        }
    }

    #[test]
    fn lookup_sketched_word_returns_one_pointer_per_layer() {
        let mht = sample_mht();
        match mht.lookup("rare-word") {
            WordLookup::Sketched(ptrs) => {
                assert_eq!(ptrs.len(), 2);
                // Layer-major pointer tables encode the layer in `block`
                // in this fixture.
                assert_eq!(ptrs[0].block, 0);
                assert_eq!(ptrs[1].block, 1);
            }
            other => panic!("expected Sketched, got {other:?}"),
        }
    }

    #[test]
    fn header_roundtrip_preserves_lookups() {
        let mht = sample_mht();
        let header = mht.to_header();
        let restored = Mht::from_header(HeaderBlock::decode(&header.encode()).unwrap());
        for word in ["the", "alpha", "beta", "gamma-123"] {
            assert_eq!(mht.lookup(word), restored.lookup(word), "word {word}");
        }
        assert_eq!(restored.meta_value("corpus"), Some("unit-test"));
    }

    #[test]
    fn memory_footprint_is_small_for_paper_config() {
        // B = 1e5 pointers at 16 bytes each ≈ 1.6 MB — the paper's ~2 MB.
        let config = SketchConfig::new(100_000, 2);
        let bins = config.bins_per_layer();
        let family = HashFamily::generate(2, bins, 1);
        let pointers = vec![vec![BinPointer::default(); bins]; 2];
        let mht = Mht::new(
            config,
            family,
            pointers,
            HashMap::new(),
            StringTable::new(),
            Vec::new(),
        );
        let mb = mht.approx_memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 3.0, "MHT footprint {mb:.2} MB exceeds paper's ~2 MB");
    }

    #[test]
    #[should_panic(expected = "one pointer table per layer")]
    fn layer_mismatch_panics() {
        let config = SketchConfig::new(10, 2).with_common_fraction(0.0);
        let family = HashFamily::generate(2, 5, 0);
        Mht::new(
            config,
            family,
            vec![Vec::new()], // only one layer of pointers
            HashMap::new(),
            StringTable::new(),
            Vec::new(),
        );
    }
}
