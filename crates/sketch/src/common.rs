//! Exact handling of extremely common words (§IV-E).
//!
//! Merging the huge postings lists of very common words into sketch bins
//! would pollute every co-hashed word's superpost. Instead Airphant "sets
//! aside 1% of the bins to store the exact postings lists of most common
//! words": with `B = 10^5` total bins, 99,000 bins form the sketch and
//! 1,000 carry the 1,000 most document-frequent words exactly.

use crate::postings::PostingsList;
use std::collections::HashMap;

/// Exact postings storage for the most common words.
#[derive(Debug, Clone, Default)]
pub struct CommonWords {
    exact: HashMap<String, PostingsList>,
    capacity: usize,
}

impl CommonWords {
    /// An empty registry able to hold `capacity` words.
    pub fn with_capacity(capacity: usize) -> Self {
        CommonWords {
            exact: HashMap::with_capacity(capacity),
            capacity,
        }
    }

    /// Choose the `capacity` most common words from `(word, document
    /// frequency)` pairs. Ties break lexicographically so selection is
    /// deterministic.
    pub fn select(doc_freqs: impl IntoIterator<Item = (String, u64)>, capacity: usize) -> Self {
        let mut pairs: Vec<(String, u64)> = doc_freqs.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(capacity);
        CommonWords {
            exact: pairs
                .into_iter()
                .map(|(w, _)| (w, PostingsList::new()))
                .collect(),
            capacity,
        }
    }

    /// Maximum number of words this registry was sized for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of words currently registered.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Whether no words are registered.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Whether `word` is handled exactly.
    pub fn is_common(&self, word: &str) -> bool {
        self.exact.contains_key(word)
    }

    /// Union `postings` into the exact list for `word` (must be selected).
    pub fn insert(&mut self, word: &str, postings: &PostingsList) {
        if let Some(list) = self.exact.get_mut(word) {
            list.union_with(postings);
        }
    }

    /// Exact postings for `word`, if it is a common word.
    pub fn get(&self, word: &str) -> Option<&PostingsList> {
        self.exact.get(word)
    }

    /// Iterate `(word, postings)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &PostingsList)> {
        self.exact.iter()
    }

    /// Consume into the underlying map.
    pub fn into_map(self) -> HashMap<String, PostingsList> {
        self.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_takes_most_frequent() {
        let freqs = vec![
            ("the".to_string(), 1000),
            ("of".to_string(), 900),
            ("rare".to_string(), 2),
            ("error".to_string(), 500),
        ];
        let cw = CommonWords::select(freqs, 2);
        assert!(cw.is_common("the"));
        assert!(cw.is_common("of"));
        assert!(!cw.is_common("error"));
        assert!(!cw.is_common("rare"));
        assert_eq!(cw.len(), 2);
    }

    #[test]
    fn select_breaks_ties_lexicographically() {
        let freqs = vec![
            ("beta".to_string(), 10),
            ("alpha".to_string(), 10),
            ("gamma".to_string(), 10),
        ];
        let cw = CommonWords::select(freqs, 2);
        assert!(cw.is_common("alpha"));
        assert!(cw.is_common("beta"));
        assert!(!cw.is_common("gamma"));
    }

    #[test]
    fn insert_unions_postings() {
        let mut cw = CommonWords::select(vec![("the".to_string(), 5)], 1);
        cw.insert("the", &PostingsList::from_doc_ids(&[1, 2]));
        cw.insert("the", &PostingsList::from_doc_ids(&[2, 3]));
        let got = cw.get("the").unwrap();
        assert_eq!(got, &PostingsList::from_doc_ids(&[1, 2, 3]));
    }

    #[test]
    fn insert_ignores_unselected_words() {
        let mut cw = CommonWords::select(vec![("the".to_string(), 5)], 1);
        cw.insert("rare", &PostingsList::from_doc_ids(&[1]));
        assert!(cw.get("rare").is_none());
    }

    #[test]
    fn zero_capacity_is_empty() {
        let cw = CommonWords::select(vec![("the".to_string(), 5)], 0);
        assert!(cw.is_empty());
        assert!(!cw.is_common("the"));
    }
}
