//! Levenshtein automaton over a fixed pattern.
//!
//! The automaton is the classic dynamic-programming row walked character by
//! character: state `row[i]` is the minimum edit distance between the
//! characters consumed so far and the first `i` characters of the pattern,
//! clamped at `max_edits + 1` so states stay small and comparable. Walking
//! a *sorted* vocabulary with this automaton shares rows between terms with
//! a common prefix, which is what makes fuzzy expansion over the vocabulary
//! cheap (see [`crate::vocab::Vocabulary::fuzzy_matches`]).

/// A Levenshtein automaton for one pattern and edit budget.
///
/// States are DP rows ([`LevRow`]); [`LevenshteinAutomaton::step`] advances
/// a row by one consumed character. A row whose minimum exceeds the budget
/// can never recover ([`LevenshteinAutomaton::can_match`] is false), which
/// prunes whole subtrees of a sorted term walk.
#[derive(Debug, Clone)]
pub struct LevenshteinAutomaton {
    pattern: Vec<char>,
    max_edits: u32,
}

/// One automaton state: the clamped DP row (`pattern.len() + 1` entries).
pub type LevRow = Vec<u32>;

impl LevenshteinAutomaton {
    /// Build the automaton for `pattern` with the given edit budget.
    pub fn new(pattern: &str, max_edits: u32) -> Self {
        LevenshteinAutomaton {
            pattern: pattern.chars().collect(),
            max_edits,
        }
    }

    /// The edit budget this automaton accepts.
    pub fn max_edits(&self) -> u32 {
        self.max_edits
    }

    /// The initial state: zero characters consumed, so the distance to the
    /// first `i` pattern characters is `i` deletions.
    pub fn start(&self) -> LevRow {
        let cap = self.max_edits + 1;
        (0..=self.pattern.len() as u32)
            .map(|i| i.min(cap))
            .collect()
    }

    /// Advance `state` by consuming `ch`.
    pub fn step(&self, state: &[u32], ch: char) -> LevRow {
        let cap = self.max_edits + 1;
        let mut next = Vec::with_capacity(state.len());
        next.push((state[0] + 1).min(cap));
        for (i, &pc) in self.pattern.iter().enumerate() {
            let sub = state[i] + u32::from(pc != ch);
            let del = state[i + 1] + 1;
            let ins = next[i] + 1;
            next.push(sub.min(del).min(ins).min(cap));
        }
        next
    }

    /// Does the consumed string match the whole pattern within budget?
    pub fn is_match(&self, state: &[u32]) -> bool {
        state.last().is_some_and(|&d| d <= self.max_edits)
    }

    /// Can any extension of the consumed string still match? False once
    /// every row entry exceeds the budget.
    pub fn can_match(&self, state: &[u32]) -> bool {
        state.iter().any(|&d| d <= self.max_edits)
    }
}

/// Is `levenshtein(a, b) <= k`? Banded DP with early exit — the oracle-side
/// counterpart of the automaton walk.
pub fn levenshtein_within(a: &str, b: &str, k: u32) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > k as usize {
        return false;
    }
    let cap = k + 1;
    let mut row: Vec<u32> = (0..=b.len() as u32).map(|i| i.min(cap)).collect();
    for (i, &ac) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = (i as u32 + 1).min(cap);
        for (j, &bc) in b.iter().enumerate() {
            let sub = prev_diag + u32::from(ac != bc);
            prev_diag = row[j + 1];
            row[j + 1] = sub.min(prev_diag + 1).min(row[j] + 1).min(cap);
        }
        if row.iter().all(|&d| d > k) {
            return false;
        }
    }
    row[b.len()] <= k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(pattern: &str, k: u32, word: &str) -> bool {
        let aut = LevenshteinAutomaton::new(pattern, k);
        let mut row = aut.start();
        for ch in word.chars() {
            row = aut.step(&row, ch);
        }
        aut.is_match(&row)
    }

    #[test]
    fn exact_match_is_zero_edits() {
        assert!(accepts("disk", 0, "disk"));
        assert!(!accepts("disk", 0, "disc"));
        assert!(levenshtein_within("disk", "disk", 0));
    }

    #[test]
    fn single_edit_kinds() {
        // substitution, deletion, insertion
        assert!(accepts("disk", 1, "disc"));
        assert!(accepts("disk", 1, "dis"));
        assert!(accepts("disk", 1, "disks"));
        assert!(!accepts("disk", 1, "dick so"));
    }

    #[test]
    fn two_edits() {
        assert!(!accepts("kitten", 1, "sitting"));
        assert!(!levenshtein_within("kitten", "sitting", 2));
        assert!(accepts("kitten", 3, "sitting"));
        assert!(levenshtein_within("kitten", "sitting", 3));
    }

    #[test]
    fn empty_pattern_counts_length() {
        assert!(accepts("", 2, "ab"));
        assert!(!accepts("", 2, "abc"));
        assert!(levenshtein_within("", "ab", 2));
        assert!(!levenshtein_within("abc", "", 2));
    }

    #[test]
    fn can_match_prunes_dead_prefixes() {
        let aut = LevenshteinAutomaton::new("abc", 1);
        let mut row = aut.start();
        for ch in "xyz".chars() {
            row = aut.step(&row, ch);
        }
        assert!(!aut.can_match(&row), "three mismatches exceed budget 1");
    }

    #[test]
    fn automaton_agrees_with_dp_oracle() {
        let words = ["", "a", "ab", "abc", "abd", "bc", "xbc", "abcd", "zzzz"];
        for k in 0..3u32 {
            for p in words {
                for w in words {
                    assert_eq!(
                        accepts(p, k, w),
                        levenshtein_within(p, w, k),
                        "pattern={p:?} word={w:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn unicode_chars_are_single_edits() {
        assert!(accepts("caffé", 1, "caffe"));
        assert!(levenshtein_within("caffé", "caffe", 1));
    }
}
