//! Expected-false-positive analysis of the IoU Sketch (§IV-A).
//!
//! For a corpus of `n` documents where document `i` holds `|W_i|` distinct
//! words, a sketch with `B` bins split across `L` layers makes document `i`
//! a false positive for an irrelevant query word with probability
//! (Equation 1):
//!
//! ```text
//! q_i(L) = [1 − (1 − 1/(B/L))^{|W_i|}]^L  ≈  [1 − e^{−|W_i|·L/B}]^L = q̂_i(L)
//! ```
//!
//! The expected number of false positives per query (Equation 2) is
//! `F(L) = Σ_i c_i·q_i(L)` where `c_i = Σ_{w∉W_i} p_w` is the probability
//! mass of query words not in document `i`. [`FalsePositiveModel`] evaluates
//! `F`, its approximation `F̂`, the per-document minimizers of Lemma 1, and
//! the fast/slow region boundaries of Lemmas 2–3 that drive Algorithm 1
//! ([`crate::optimizer`]).

use serde::{Deserialize, Serialize};

/// One group of documents sharing the same distinct-word count.
///
/// Documents are grouped by `|W_i|` so `F(L)` evaluation costs
/// `O(#distinct sizes)` instead of `O(n)` — essential for the paper-scale
/// corpora where `n` reaches 10^8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeGroup {
    /// The shared distinct-word count `|W_i|` (> 0).
    pub size: u64,
    /// Number of documents in the group.
    pub docs: u64,
    /// Sum of the coefficients `c_i` over the group.
    pub ci_sum: f64,
}

/// The corpus statistics the analysis needs: the histogram of per-document
/// distinct-word counts and the associated `c_i` mass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusShape {
    groups: Vec<SizeGroup>,
    n_docs: u64,
    n_terms: u64,
}

impl CorpusShape {
    /// Build under the paper's default *uniform* query-word distribution
    /// (`p_w = 1/|W|`, §IV-B): `c_i = (|W| − |W_i|)/|W|`.
    ///
    /// `doc_sizes` yields each document's distinct-word count `|W_i|`;
    /// `n_terms` is the corpus vocabulary size `|W|`. Documents with zero
    /// distinct words are skipped (they can never be false positives).
    pub fn uniform(doc_sizes: impl IntoIterator<Item = u64>, n_terms: u64) -> Self {
        let mut hist = std::collections::BTreeMap::<u64, u64>::new();
        let mut n_docs = 0u64;
        for s in doc_sizes {
            if s == 0 {
                continue;
            }
            *hist.entry(s).or_insert(0) += 1;
            n_docs += 1;
        }
        let w = n_terms.max(1) as f64;
        let groups = hist
            .into_iter()
            .map(|(size, docs)| SizeGroup {
                size,
                docs,
                ci_sum: docs as f64 * ((w - size as f64).max(0.0) / w),
            })
            .collect();
        CorpusShape {
            groups,
            n_docs,
            n_terms,
        }
    }

    /// Build from explicit `(|W_i|, c_i)` pairs — for non-uniform query
    /// priors (the paper's §IV-B alternatives (a) and (b)).
    pub fn with_coefficients(pairs: impl IntoIterator<Item = (u64, f64)>, n_terms: u64) -> Self {
        let mut hist = std::collections::BTreeMap::<u64, (u64, f64)>::new();
        let mut n_docs = 0u64;
        for (s, ci) in pairs {
            if s == 0 {
                continue;
            }
            let e = hist.entry(s).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += ci;
            n_docs += 1;
        }
        let groups = hist
            .into_iter()
            .map(|(size, (docs, ci_sum))| SizeGroup { size, docs, ci_sum })
            .collect();
        CorpusShape {
            groups,
            n_docs,
            n_terms,
        }
    }

    /// Number of documents with at least one word.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Vocabulary size `|W|`.
    pub fn n_terms(&self) -> u64 {
        self.n_terms
    }

    /// The size histogram.
    pub fn groups(&self) -> &[SizeGroup] {
        &self.groups
    }

    /// Largest `|W_i|` (0 for an empty corpus).
    pub fn max_size(&self) -> u64 {
        self.groups.last().map(|g| g.size).unwrap_or(0)
    }

    /// Smallest `|W_i|` (0 for an empty corpus).
    pub fn min_size(&self) -> u64 {
        self.groups.first().map(|g| g.size).unwrap_or(0)
    }
}

/// Evaluates `F(L)` and friends for a fixed bin budget `B` over a corpus.
#[derive(Debug, Clone)]
pub struct FalsePositiveModel {
    shape: CorpusShape,
    /// Bin budget available to the sketch layers (excludes common bins).
    bins: f64,
}

impl FalsePositiveModel {
    /// Create a model with `bins` total sketch bins.
    pub fn new(shape: CorpusShape, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        FalsePositiveModel {
            shape,
            bins: bins as f64,
        }
    }

    /// The corpus shape.
    pub fn shape(&self) -> &CorpusShape {
        &self.shape
    }

    /// The bin budget `B`.
    pub fn bins(&self) -> f64 {
        self.bins
    }

    /// Exact per-document false-positive probability `q_i(L)` for a
    /// document with `size` distinct words (Equation 1, left).
    ///
    /// `L` is treated as continuous per the paper's relaxation.
    pub fn q(&self, l: f64, size: u64) -> f64 {
        let bins_per_layer = self.bins / l;
        if bins_per_layer <= 1.0 {
            return 1.0; // every word shares the single bin
        }
        // (1 - 1/(B/L))^{|Wi|} computed in log-space for stability.
        let keep = (size as f64) * (-1.0 / bins_per_layer).ln_1p();
        let collide_one_layer = -keep.exp_m1(); // 1 - e^{keep}
        collide_one_layer.max(0.0).powf(l)
    }

    /// Approximate probability `q̂_i(L) = [1 − e^{−|W_i|L/B}]^L`
    /// (Equation 1, right).
    pub fn q_hat(&self, l: f64, size: u64) -> f64 {
        let z = self.z(l, size);
        z.powf(l)
    }

    /// `z_i(L) = 1 − exp(−|W_i|·L/B)` — the substitution used in
    /// Equation 3.
    pub fn z(&self, l: f64, size: u64) -> f64 {
        -(-(size as f64) * l / self.bins).exp_m1()
    }

    /// Derivative `q̂'_i(L)` per Equation 3:
    /// `z^{L−1}[z·ln z − (1−z)·ln(1−z)]`.
    pub fn q_hat_derivative(&self, l: f64, size: u64) -> f64 {
        let z = self.z(l, size);
        if z <= 0.0 || z >= 1.0 {
            return 0.0;
        }
        z.powf(l - 1.0) * (z * z.ln() - (1.0 - z) * (1.0 - z).ln())
    }

    /// Expected false positives per query `F(L)` (Equation 2), exact form.
    pub fn expected_fp(&self, l: f64) -> f64 {
        self.shape
            .groups
            .iter()
            .map(|g| g.ci_sum * self.q(l, g.size))
            .sum()
    }

    /// Approximate expected false positives `F̂(L)`.
    pub fn expected_fp_hat(&self, l: f64) -> f64 {
        self.shape
            .groups
            .iter()
            .map(|g| g.ci_sum * self.q_hat(l, g.size))
            .sum()
    }

    /// Lemma 1 minimizer for one document: `L*_i = (B/|W_i|)·ln 2`.
    pub fn l_star(&self, size: u64) -> f64 {
        self.bins / size.max(1) as f64 * std::f64::consts::LN_2
    }

    /// `L_min = min_i L*_i` — below it `F̂` is strictly decreasing
    /// (Lemma 2: the *fast region* where binary search applies).
    pub fn l_min(&self) -> f64 {
        self.l_star(self.shape.max_size().max(1))
    }

    /// `L_max = max_i L*_i` — above it `F̂` is strictly increasing
    /// (Lemma 3), so search never needs to look past it.
    pub fn l_max(&self) -> f64 {
        self.l_star(self.shape.min_size().max(1))
    }

    /// Lemma 1 lower bound: `F̂(L) ≥ Σ_i c_i·2^{−L*_i}` — the feasibility
    /// check at the top of Algorithm 1.
    pub fn lower_bound(&self) -> f64 {
        self.shape
            .groups
            .iter()
            .map(|g| {
                let l_star = self.l_star(g.size);
                g.ci_sum * (-l_star * std::f64::consts::LN_2).exp()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_shape(sizes: &[u64], terms: u64) -> CorpusShape {
        CorpusShape::uniform(sizes.iter().copied(), terms)
    }

    #[test]
    fn shape_groups_histogram() {
        let shape = uniform_shape(&[3, 3, 5, 0, 5, 5], 100);
        assert_eq!(shape.n_docs(), 5); // zero-size doc skipped
        assert_eq!(shape.groups().len(), 2);
        assert_eq!(shape.min_size(), 3);
        assert_eq!(shape.max_size(), 5);
        let g3 = shape.groups()[0];
        assert_eq!((g3.size, g3.docs), (3, 2));
        // ci for |Wi|=3, |W|=100: 97/100 each, two docs.
        assert!((g3.ci_sum - 1.94).abs() < 1e-12);
    }

    #[test]
    fn q_exact_matches_brute_force_single_layer() {
        // For L=1, q_i = 1 - (1 - 1/B)^{|Wi|}.
        let shape = uniform_shape(&[10], 100);
        let m = FalsePositiveModel::new(shape, 50);
        let expect = 1.0 - (1.0 - 1.0 / 50.0f64).powi(10);
        assert!((m.q(1.0, 10) - expect).abs() < 1e-12);
    }

    #[test]
    fn q_hat_approximates_q() {
        let shape = uniform_shape(&[20], 1000);
        let m = FalsePositiveModel::new(shape, 500);
        for l in [1.0, 2.0, 4.0, 8.0] {
            let q = m.q(l, 20);
            let qh = m.q_hat(l, 20);
            assert!((q - qh).abs() < 0.05, "q={q} q_hat={qh} diverge at L={l}");
            // Paper remark after Lemma 1: F(L) > F̂(L), i.e. the exact
            // probability dominates the approximation (1−x < e^{−x}).
            assert!(q >= qh - 1e-12, "q should dominate q_hat");
        }
    }

    #[test]
    fn q_saturates_when_bins_per_layer_collapse() {
        let shape = uniform_shape(&[5], 100);
        let m = FalsePositiveModel::new(shape, 8);
        // L = B: one bin per layer → collision certain.
        assert_eq!(m.q(8.0, 5), 1.0);
    }

    #[test]
    fn expected_fp_decreases_then_increases() {
        // The U-shape of Figure 5: decreasing before L_min, increasing
        // after L_max.
        let sizes: Vec<u64> = (0..200).map(|i| 20 + (i % 30)).collect();
        let shape = uniform_shape(&sizes, 5_000);
        let m = FalsePositiveModel::new(shape, 2_000);
        let lmin = m.l_min();
        let lmax = m.l_max();
        assert!(lmin >= 1.0 && lmin < lmax);
        // Strictly decreasing inside the fast region.
        let f1 = m.expected_fp_hat(1.0);
        let f_mid = m.expected_fp_hat(lmin * 0.8);
        assert!(f_mid < f1);
        // Increasing past the slow region.
        let f_hi = m.expected_fp_hat(lmax + 5.0);
        let f_hi2 = m.expected_fp_hat(lmax + 15.0);
        assert!(f_hi2 > f_hi);
    }

    #[test]
    fn lemma1_minimizer_and_lower_bound() {
        let shape = uniform_shape(&[40], 10_000);
        let m = FalsePositiveModel::new(shape.clone(), 1_000);
        let l_star = m.l_star(40);
        assert!((l_star - 1_000.0 / 40.0 * std::f64::consts::LN_2).abs() < 1e-12);
        // q_hat at the minimizer equals 2^{-L*}.
        let q_min = m.q_hat(l_star, 40);
        let expect = (2.0f64).powf(-l_star);
        assert!((q_min - expect).abs() / expect < 1e-9);
        // Lower bound is below F̂ everywhere we sample.
        for l in [1.0, 5.0, 10.0, l_star, 30.0] {
            assert!(m.lower_bound() <= m.expected_fp_hat(l) + 1e-12);
        }
    }

    #[test]
    fn derivative_sign_matches_lemmas_2_and_3() {
        let shape = uniform_shape(&[25], 1_000);
        let m = FalsePositiveModel::new(shape, 1_000);
        let l_star = m.l_star(25); // ≈ 27.7
        assert!(
            m.q_hat_derivative(l_star * 0.5, 25) < 0.0,
            "decreasing before L*"
        );
        assert!(
            m.q_hat_derivative(l_star * 1.5, 25) > 0.0,
            "increasing after L*"
        );
        // Near the minimizer the derivative is ~0.
        assert!(m.q_hat_derivative(l_star, 25).abs() < 1e-6);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let shape = uniform_shape(&[15], 500);
        let m = FalsePositiveModel::new(shape, 300);
        for l in [2.0f64, 5.0, 10.0, 20.0] {
            let eps = 1e-5;
            let fd = (m.q_hat(l + eps, 15) - m.q_hat(l - eps, 15)) / (2.0 * eps);
            let an = m.q_hat_derivative(l, 15);
            assert!(
                (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                "L={l}: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn with_coefficients_supports_skewed_priors() {
        // Give one document zero query mass: it contributes nothing.
        let shape = CorpusShape::with_coefficients(vec![(10, 0.0), (10, 1.0)], 100);
        let m = FalsePositiveModel::new(shape, 100);
        let f = m.expected_fp(2.0);
        let shape_single = CorpusShape::with_coefficients(vec![(10, 1.0)], 100);
        let m_single = FalsePositiveModel::new(shape_single, 100);
        assert!((f - m_single.expected_fp(2.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_is_all_zeroes() {
        let shape = CorpusShape::uniform(std::iter::empty(), 10);
        let m = FalsePositiveModel::new(shape, 10);
        assert_eq!(m.expected_fp(2.0), 0.0);
        assert_eq!(m.lower_bound(), 0.0);
    }
}
