//! Algorithm 1 of the paper: *Number of Layers Minimization*.
//!
//! Given a bin budget `B` and an accuracy constraint `F0` (expected false
//! positives per query), find the smallest number of layers `L*` such that
//! `F(L*; B) ≤ F0` — fewer layers mean fewer superposts to fetch and
//! intersect, and less postings replication.
//!
//! `F(L)` is non-convex, but Lemmas 1–3 give the structure Algorithm 1
//! exploits:
//!
//! 1. **Feasibility** (Lemma 1): `F̂(L) ≥ Σ_i c_i·2^{−L*_i}`; if the bound
//!    exceeds `F0`, reject immediately.
//! 2. **Fast region** (Lemma 2): for `L < L_min = min_i L*_i`, `F̂` is
//!    strictly decreasing — binary search the smallest feasible `L` in
//!    `[1, L_min]`.
//! 3. **Slow region** (Lemma 3): in `[L_min, L_max]` monotonicity is not
//!    guaranteed — iterate increasing `L` until the constraint is met.
//!    Past `L_max`, `F̂` strictly increases, so searching further is
//!    pointless.

use crate::analysis::FalsePositiveModel;
use serde::{Deserialize, Serialize};

/// Why Algorithm 1 rejected a `(B, F0)` constraint pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Lemma 1's lower bound already exceeds `F0`: no `L` can satisfy it.
    LowerBoundExceeded {
        /// The computed lower bound on expected false positives.
        lower_bound: f64,
    },
    /// The iterative search exhausted `[L_min, L_max]` without success.
    SearchExhausted {
        /// The best (smallest) expected-false-positive value seen.
        best_f: f64,
        /// The `L` that attained it.
        best_l: u32,
    },
}

/// Successful optimization result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizeOutcome {
    /// The minimized number of layers `L*`.
    pub layers: u32,
    /// Expected false positives at `L*`, `F(L*)`.
    pub expected_fp: f64,
    /// Whether the fast (binary-search) region sufficed.
    pub fast_region: bool,
}

/// Run Algorithm 1: minimize layers subject to `F(L) ≤ f0`.
///
/// The continuous relaxation is searched over integer `L` (a sketch cannot
/// have fractional layers); `L` is additionally capped at the bin budget so
/// each layer keeps at least one bin.
pub fn optimize_layers(
    model: &FalsePositiveModel,
    f0: f64,
) -> Result<OptimizeOutcome, RejectReason> {
    let b = model.bins();
    let hard_cap = b.max(1.0) as u32;

    // Line 1: feasibility via the Lemma 1 lower bound.
    let lower_bound = model.lower_bound();
    if lower_bound > f0 {
        return Err(RejectReason::LowerBoundExceeded { lower_bound });
    }

    let l_min = model.l_min().min(hard_cap as f64);
    let l_max = model.l_max().min(hard_cap as f64);

    // Line 2–3: fast region. F is strictly decreasing on [1, L_min]; if the
    // region's right edge already satisfies the constraint, binary search
    // the smallest feasible integer L there.
    let l_min_int = l_min.floor().max(1.0) as u32;
    if model.expected_fp(l_min_int as f64) <= f0 {
        let (mut lo, mut hi) = (1u32, l_min_int);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if model.expected_fp(mid as f64) <= f0 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        return Ok(OptimizeOutcome {
            layers: lo,
            expected_fp: model.expected_fp(lo as f64),
            fast_region: true,
        });
    }

    // Line 4–5: slow region. Scan increasing integer L in (L_min, L_max].
    let start = l_min_int.saturating_add(1).max(1);
    let end = l_max.ceil().max(start as f64) as u32;
    let mut best_f = f64::INFINITY;
    let mut best_l = start;
    for l in start..=end.min(hard_cap) {
        let f = model.expected_fp(l as f64);
        if f < best_f {
            best_f = f;
            best_l = l;
        }
        if f <= f0 {
            return Ok(OptimizeOutcome {
                layers: l,
                expected_fp: f,
                fast_region: false,
            });
        }
    }

    // Line 6: reject.
    Err(RejectReason::SearchExhausted { best_f, best_l })
}

/// Brute-force reference: smallest integer `L ∈ [1, cap]` with
/// `F(L) ≤ f0`, or `None`. Used by tests to validate Algorithm 1.
pub fn brute_force_layers(model: &FalsePositiveModel, f0: f64, cap: u32) -> Option<u32> {
    (1..=cap).find(|&l| model.expected_fp(l as f64) <= f0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::CorpusShape;

    fn model(sizes: &[u64], terms: u64, bins: usize) -> FalsePositiveModel {
        FalsePositiveModel::new(CorpusShape::uniform(sizes.iter().copied(), terms), bins)
    }

    #[test]
    fn fast_region_matches_brute_force() {
        // Plenty of bins: the fast region covers practical F0 values.
        let m = model(&vec![30; 500], 10_000, 5_000);
        for f0 in [10.0, 1.0, 0.1, 0.01] {
            let got = optimize_layers(&m, f0).expect("feasible");
            let brute = brute_force_layers(&m, f0, 200).expect("brute feasible");
            assert_eq!(got.layers, brute, "F0={f0}");
            assert!(got.expected_fp <= f0);
            assert!(got.fast_region);
        }
    }

    #[test]
    fn tighter_f0_needs_more_layers() {
        let m = model(&vec![30; 500], 10_000, 5_000);
        let loose = optimize_layers(&m, 1.0).unwrap().layers;
        let tight = optimize_layers(&m, 1e-4).unwrap().layers;
        assert!(tight >= loose);
        // Figure 17a: L* grows only slightly as F0 drops by orders of
        // magnitude (exponential decay in L).
        assert!(
            tight <= loose + 16,
            "L* should grow slowly: {loose} -> {tight}"
        );
    }

    #[test]
    fn infeasible_constraint_rejected_by_lower_bound() {
        // Tiny bin budget, large documents: even the best L cannot reach
        // an absurdly small F0.
        let m = model(&vec![50; 100], 1_000, 60);
        match optimize_layers(&m, 1e-12) {
            Err(RejectReason::LowerBoundExceeded { lower_bound }) => {
                assert!(lower_bound > 1e-12);
            }
            other => panic!("expected lower-bound rejection, got {other:?}"),
        }
    }

    #[test]
    fn slow_region_search_can_succeed() {
        // Construct a case where F(L_min) > F0 but some L in the slow
        // region works: heterogeneous doc sizes spread L*_i apart.
        let mut sizes = vec![200u64; 50];
        sizes.extend(vec![5u64; 1000]);
        let m = model(&sizes, 20_000, 800);
        let lmin = m.l_min();
        let f_at_lmin = m.expected_fp(lmin.floor().max(1.0));
        // Choose F0 between the overall minimum and F(L_min).
        let brute = brute_force_layers(&m, f_at_lmin * 0.5, 800);
        if let Some(expect) = brute {
            let got = optimize_layers(&m, f_at_lmin * 0.5).expect("feasible");
            assert_eq!(got.layers, expect);
        }
    }

    #[test]
    fn optimizer_agrees_with_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n_docs = rng.gen_range(20..200);
            let sizes: Vec<u64> = (0..n_docs).map(|_| rng.gen_range(1..80)).collect();
            let bins = rng.gen_range(100..3_000);
            let m = model(&sizes, 5_000, bins);
            let f0 = 10f64.powf(rng.gen_range(-4.0..1.0));
            let brute = brute_force_layers(&m, f0, bins as u32);
            match (optimize_layers(&m, f0), brute) {
                (Ok(got), Some(expect)) => {
                    // Algorithm 1 may be conservative in the slow region
                    // (scans integers), but must match exactly when the
                    // brute-force optimum lies in either searched region.
                    assert_eq!(got.layers, expect, "trial {trial}");
                }
                (Err(_), None) => {}
                (Ok(got), None) => panic!(
                    "trial {trial}: optimizer found L={} but brute force found none",
                    got.layers
                ),
                (Err(e), Some(expect)) => {
                    // The lower bound uses F̂ < F; rejection with a feasible
                    // brute-force answer would be a bug.
                    panic!("trial {trial}: rejected ({e:?}) but L={expect} works");
                }
            }
        }
    }

    #[test]
    fn layer_cap_respects_bin_budget() {
        let m = model(&[3, 3, 3], 100, 8);
        if let Ok(got) = optimize_layers(&m, 1e-9) {
            assert!(got.layers <= 8);
        }
    }

    #[test]
    fn paper_accuracy_sweep_shape() {
        // Figure 17a: with B = 1e5-ish budgets, F0 ∈ {1, 0.01, 1e-4}
        // produces L* that increases only slightly (1 → ~2 → ~3).
        let sizes: Vec<u64> = (0..2_000).map(|i| 10 + (i % 40)).collect();
        let m = model(&sizes, 100_000, 100_000);
        let l1 = optimize_layers(&m, 1.0).unwrap().layers;
        let l2 = optimize_layers(&m, 0.01).unwrap().layers;
        let l3 = optimize_layers(&m, 0.0001).unwrap().layers;
        assert!(l1 <= l2 && l2 <= l3);
        assert!(l3 <= l1 + 4, "L* grows slowly: {l1}, {l2}, {l3}");
    }
}
