//! Superpost compaction encoding (§IV-C).
//!
//! The paper concatenates all superposts into a single blob (or a few
//! blocks), serialized compactly, with a *header block* holding bin
//! pointers, hash seeds, a string-compression table, and metadata. The
//! header is the one piece the Searcher downloads at initialization; every
//! superpost is then reachable in a single ranged read via its
//! `(block, offset, length)` pointer.
//!
//! The paper serializes with Protocol Buffers; protobuf is not on the
//! offline crate allowlist, so we implement an equivalent compact binary
//! format (see DESIGN.md §4): LEB128 varints, delta-encoded sorted
//! postings, and interned blob names ("Airphant compresses repeated strings
//! within postings into integer keys").

use crate::error::SketchError;
use crate::hash::LayerSeed;
use crate::postings::{Posting, PostingsList};
use crate::sketch::SketchConfig;
use crate::Result;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Varint primitives (LEB128, unsigned)
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// A decoding cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current byte offset from the start of the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, what: &str) -> SketchError {
        SketchError::Corrupt {
            detail: format!("{what} at byte {}", self.pos),
        }
    }

    /// Read one LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        // Fast path: single-byte values dominate posting streams (small
        // deltas and lengths), and the bounds check is already paid.
        if let Some(&byte) = self.data.get(self.pos) {
            if byte & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(byte));
            }
        }
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| self.corrupt("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(self.corrupt("varint overflow"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt("truncated bytes"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string as a borrowed slice — the
    /// zero-copy twin of [`Cursor::string`]. UTF-8 is validated in place;
    /// no intermediate buffer is allocated.
    pub fn str_ref(&mut self) -> Result<&'a str> {
        let len = self.varint()? as usize;
        let raw = self.bytes(len)?;
        std::str::from_utf8(raw).map_err(|_| self.corrupt("invalid utf-8"))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        self.str_ref().map(str::to_owned)
    }

    /// Read a u32 stored as raw little-endian bits.
    pub fn u32_le(&mut self) -> Result<u32> {
        let raw = self.bytes(4)?;
        Ok(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Read a u64 stored as raw little-endian bits.
    pub fn u64_le(&mut self) -> Result<u64> {
        let raw = self.bytes(8)?;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Read an f64 stored as raw little-endian bits.
    pub fn f64(&mut self) -> Result<f64> {
        let raw = self.bytes(8)?;
        Ok(f64::from_le_bytes(raw.try_into().unwrap()))
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Append an f64 as raw little-endian bits.
pub fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// String-compression table
// ---------------------------------------------------------------------------

/// Interns blob names to `u32` ids (§IV-C's string compression).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StringTable {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl StringTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Resolve an id back to a name.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Look up an already-interned name.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        put_varint(buf, self.names.len() as u64);
        for n in &self.names {
            put_string(buf, n);
        }
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self> {
        let count = cur.varint()? as usize;
        // Every entry costs at least one length byte; an implausible count
        // (from a bit flip) must not drive a huge pre-allocation.
        if count > cur.remaining() {
            return Err(SketchError::Corrupt {
                detail: format!("string table count {count} exceeds remaining bytes"),
            });
        }
        let mut table = StringTable::new();
        for _ in 0..count {
            let name = cur.str_ref()?;
            table.intern(name);
        }
        Ok(table)
    }
}

// ---------------------------------------------------------------------------
// Superpost codec
// ---------------------------------------------------------------------------

/// Encode a superpost: varint count, then delta-encoded `(blob, offset,
/// len)` triples exploiting the sorted order.
pub fn encode_superpost(list: &PostingsList) -> Bytes {
    let mut buf = BytesMut::with_capacity(list.approx_bytes());
    put_varint(&mut buf, list.len() as u64);
    let mut prev_blob = 0u32;
    let mut prev_offset = 0u64;
    for (i, p) in list.iter().enumerate() {
        let blob_delta = if i == 0 { p.blob } else { p.blob - prev_blob };
        put_varint(&mut buf, blob_delta as u64);
        let off = if i > 0 && blob_delta == 0 {
            p.offset - prev_offset
        } else {
            p.offset
        };
        put_varint(&mut buf, off);
        put_varint(&mut buf, p.len as u64);
        prev_blob = p.blob;
        prev_offset = p.offset;
    }
    buf.freeze()
}

/// Decode one delta-encoded posting. `prev` is `(blob, offset)` of the
/// previous posting, or `(0, 0)` before the first one — the two cases
/// coincide because the first posting's blob delta is taken from zero and
/// its offset delta only applies when the blob delta is zero.
fn read_posting(cur: &mut Cursor<'_>, prev: (u32, u64)) -> Result<Posting> {
    let blob_delta = cur.varint()?;
    let blob = u32::try_from(blob_delta)
        .ok()
        .and_then(|d| prev.0.checked_add(d))
        .ok_or_else(|| SketchError::Corrupt {
            detail: "blob id overflow".into(),
        })?;
    let raw_off = cur.varint()?;
    let offset = if blob_delta == 0 {
        prev.1
            .checked_add(raw_off)
            .ok_or_else(|| SketchError::Corrupt {
                detail: "posting offset overflow".into(),
            })?
    } else {
        raw_off
    };
    let len = u32::try_from(cur.varint()?).map_err(|_| SketchError::Corrupt {
        detail: "posting length overflow".into(),
    })?;
    Ok(Posting::new(blob, offset, len))
}

/// Validate a superpost count against the bytes that must back it: each
/// posting costs at least three varint bytes.
fn check_superpost_count(count: usize, remaining: usize) -> Result<()> {
    if count > remaining / 3 {
        return Err(SketchError::Corrupt {
            detail: format!("superpost count {count} exceeds {remaining} payload bytes"),
        });
    }
    Ok(())
}

/// Decode a superpost produced by [`encode_superpost`].
pub fn decode_superpost(data: &[u8]) -> Result<PostingsList> {
    let mut cur = Cursor::new(data);
    let list = decode_superpost_from(&mut cur)?;
    if !cur.is_exhausted() {
        return Err(SketchError::Corrupt {
            detail: format!("{} trailing bytes after superpost", cur.remaining()),
        });
    }
    Ok(list)
}

/// Decode a superpost from a cursor (for concatenated blocks).
pub fn decode_superpost_from(cur: &mut Cursor<'_>) -> Result<PostingsList> {
    let count = cur.varint()? as usize;
    check_superpost_count(count, cur.remaining())?;
    let mut postings = Vec::with_capacity(count);
    let mut prev = (0u32, 0u64);
    for i in 0..count {
        let p = read_posting(cur, prev)?;
        if i > 0 && p <= *postings.last().expect("nonempty after first") {
            return Err(SketchError::Corrupt {
                detail: "postings out of order".into(),
            });
        }
        prev = (p.blob, p.offset);
        postings.push(p);
    }
    Ok(PostingsList::from_sorted_unique(postings))
}

// ---------------------------------------------------------------------------
// Bin pointers and the header block
// ---------------------------------------------------------------------------

/// Pointer to one superpost inside the compacted superpost blocks:
/// "each bin pointer need\[s\] to represent block ID, offset, and byte length
/// to retrieve the superpost's bytes in a single round-trip" (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinPointer {
    /// Superpost block id (blob index).
    pub block: u32,
    /// Byte offset within the block.
    pub offset: u64,
    /// Byte length of the serialized superpost.
    pub len: u32,
}

impl BinPointer {
    /// Construct a pointer.
    pub fn new(block: u32, offset: u64, len: u32) -> Self {
        BinPointer { block, offset, len }
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        put_varint(buf, self.block as u64);
        put_varint(buf, self.offset);
        put_varint(buf, self.len as u64);
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self> {
        Ok(BinPointer {
            block: cur.varint()? as u32,
            offset: cur.varint()?,
            len: cur.varint()? as u32,
        })
    }
}

/// The persistent header block: everything the Searcher needs to
/// reconstruct the MHT — structure, hash seeds, bin pointers, the exact
/// common-word dictionary, the string table, and free-form metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderBlock {
    /// Sketch structure.
    pub config: SketchConfig,
    /// Per-layer hash seeds.
    pub seeds: Vec<LayerSeed>,
    /// Blob-name interning table.
    pub string_table: StringTable,
    /// Bin pointers, layer-major: `pointers[layer][bin]`.
    pub pointers: Vec<Vec<BinPointer>>,
    /// Exact common-word dictionary: word → pointer to its postings list.
    pub common: Vec<(String, BinPointer)>,
    /// Free-form metadata (e.g. accuracy constraint, corpus name).
    pub meta: Vec<(String, String)>,
    /// Sorted vocabulary + suffix array for prefix/fuzzy expansion.
    /// Serialized only by format v2 (an optional Index-class section);
    /// v1 headers drop it on encode and decode to `None`.
    pub vocab: Option<crate::vocab::Vocabulary>,
}

const MAGIC: &[u8; 4] = b"AIRP";
const VERSION: u64 = 1;
const VERSION_V2: u64 = 2;

impl HeaderBlock {
    /// Serialize the header to bytes in format v1 (varint stream).
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(64 + self.pointers.iter().map(|l| l.len() * 6).sum::<usize>());
        buf.put_slice(MAGIC);
        put_varint(&mut buf, VERSION);
        put_varint(&mut buf, self.config.total_bins as u64);
        put_varint(&mut buf, self.config.layers as u64);
        put_f64(&mut buf, self.config.common_fraction);
        put_varint(&mut buf, self.seeds.len() as u64);
        for s in &self.seeds {
            put_varint(&mut buf, s.a);
            put_varint(&mut buf, s.b);
        }
        self.string_table.encode_into(&mut buf);
        put_varint(&mut buf, self.pointers.len() as u64);
        for layer in &self.pointers {
            put_varint(&mut buf, layer.len() as u64);
            for p in layer {
                p.encode_into(&mut buf);
            }
        }
        put_varint(&mut buf, self.common.len() as u64);
        for (word, ptr) in &self.common {
            put_string(&mut buf, word);
            ptr.encode_into(&mut buf);
        }
        put_varint(&mut buf, self.meta.len() as u64);
        for (k, v) in &self.meta {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }
        buf.freeze()
    }

    /// Deserialize a header in either format version. Prefer
    /// [`HeaderBlock::decode_any`] when the caller also needs to know which
    /// version it got (and, for v2, the layer directory).
    pub fn decode(data: &[u8]) -> Result<Self> {
        Self::decode_any(data).map(|(header, _)| header)
    }

    /// Deserialize a header in either format version, returning the decoded
    /// header together with a [`SegmentFormat`] describing what was on the
    /// wire (version, and the layer directory for v2).
    pub fn decode_any(data: &[u8]) -> Result<(Self, SegmentFormat)> {
        let version = peek_version(data)?;
        match version {
            VERSION => {
                let header = Self::decode_v1(data)?;
                Ok((header, SegmentFormat::v1()))
            }
            VERSION_V2 => {
                let view = HeaderView::parse(Bytes::from(data.to_vec()))?;
                let format = SegmentFormat {
                    version: 2,
                    directory: Some(view.directory().clone()),
                };
                Ok((view.to_header_block()?, format))
            }
            other => Err(SketchError::Corrupt {
                detail: format!("unsupported header version {other}"),
            }),
        }
    }

    fn decode_v1(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(data);
        let magic = cur.bytes(4)?;
        if magic != MAGIC {
            return Err(SketchError::Corrupt {
                detail: "bad magic".into(),
            });
        }
        let version = cur.varint()?;
        if version != VERSION {
            return Err(SketchError::Corrupt {
                detail: format!("unsupported header version {version}"),
            });
        }
        let total_bins = cur.varint()? as usize;
        let layers = cur.varint()? as usize;
        let common_fraction = cur.f64()?;
        let config = SketchConfig {
            total_bins,
            layers,
            common_fraction,
        };
        let n_seeds = cur.varint()? as usize;
        if n_seeds != layers {
            return Err(SketchError::Corrupt {
                detail: format!("{n_seeds} seeds for {layers} layers"),
            });
        }
        if n_seeds > cur.remaining() / 2 {
            return Err(SketchError::Corrupt {
                detail: format!("seed count {n_seeds} exceeds remaining bytes"),
            });
        }
        let mut seeds = Vec::with_capacity(n_seeds);
        for _ in 0..n_seeds {
            seeds.push(LayerSeed {
                a: cur.varint()?,
                b: cur.varint()?,
            });
        }
        let string_table = StringTable::decode_from(&mut cur)?;
        let n_layers = cur.varint()? as usize;
        if n_layers != layers {
            return Err(SketchError::Corrupt {
                detail: format!("{n_layers} pointer layers for {layers} layers"),
            });
        }
        let mut pointers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let n_bins = cur.varint()? as usize;
            if n_bins > cur.remaining() / 3 {
                return Err(SketchError::Corrupt {
                    detail: format!("bin count {n_bins} exceeds remaining bytes"),
                });
            }
            let mut layer = Vec::with_capacity(n_bins);
            for _ in 0..n_bins {
                layer.push(BinPointer::decode_from(&mut cur)?);
            }
            pointers.push(layer);
        }
        let n_common = cur.varint()? as usize;
        if n_common > cur.remaining() / 4 {
            return Err(SketchError::Corrupt {
                detail: format!("common-word count {n_common} exceeds remaining bytes"),
            });
        }
        let mut common = Vec::with_capacity(n_common);
        for _ in 0..n_common {
            let word = cur.string()?;
            let ptr = BinPointer::decode_from(&mut cur)?;
            common.push((word, ptr));
        }
        let n_meta = cur.varint()? as usize;
        if n_meta > cur.remaining() / 2 {
            return Err(SketchError::Corrupt {
                detail: format!("meta count {n_meta} exceeds remaining bytes"),
            });
        }
        let mut meta = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = cur.string()?;
            let v = cur.string()?;
            meta.push((k, v));
        }
        if !cur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after header", cur.remaining()),
            });
        }
        Ok(HeaderBlock {
            config,
            seeds,
            string_table,
            pointers,
            common,
            meta,
            vocab: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Format v2: section-table header, layer directory, zero-copy views
// ---------------------------------------------------------------------------

/// Which cache tier a byte range belongs to (§ ablation_cache): **Index**
/// bytes are the small, high-fanout structures every query touches (header,
/// MHT, superpost directory, string table); **Data** bytes are the bulky
/// payloads (posting bytes, documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ByteClass {
    /// Hot index structures — worth pinning resident.
    Index,
    /// Bulk payload bytes — plain LRU traffic.
    #[default]
    Data,
}

/// Which on-wire segment format the writer produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FormatVersion {
    /// The original varint-stream header.
    V1,
    /// Section-table header with a layer directory and zero-copy views.
    #[default]
    V2,
}

impl FormatVersion {
    /// Numeric on-wire version.
    pub fn number(self) -> u32 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
        }
    }
}

impl std::fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.number())
    }
}

impl std::str::FromStr for FormatVersion {
    type Err = SketchError;
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "v1" | "1" => Ok(FormatVersion::V1),
            "v2" | "2" => Ok(FormatVersion::V2),
            other => Err(SketchError::InvalidConfig {
                reason: format!("unknown format version {other:?} (expected v1 or v2)"),
            }),
        }
    }
}

/// Section kinds in the v2 header's section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Sketch structure (fixed-width).
    Config,
    /// Per-layer hash seeds (fixed-width).
    Seeds,
    /// Blob-name interning table.
    Strings,
    /// Fixed-width bin pointers, layer-major.
    Pointers,
    /// Exact common-word dictionary.
    Common,
    /// Byte sizes of the external superpost blocks (the Data side of the
    /// layer directory).
    Blocks,
    /// Free-form metadata.
    Meta,
    /// Sorted vocabulary + suffix array (optional; absent in segments
    /// written before prefix/fuzzy support).
    Vocab,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => SectionKind::Config,
            2 => SectionKind::Seeds,
            3 => SectionKind::Strings,
            4 => SectionKind::Pointers,
            5 => SectionKind::Common,
            6 => SectionKind::Blocks,
            7 => SectionKind::Meta,
            8 => SectionKind::Vocab,
            _ => return None,
        })
    }

    fn to_u32(self) -> u32 {
        match self {
            SectionKind::Config => 1,
            SectionKind::Seeds => 2,
            SectionKind::Strings => 3,
            SectionKind::Pointers => 4,
            SectionKind::Common => 5,
            SectionKind::Blocks => 6,
            SectionKind::Meta => 7,
            SectionKind::Vocab => 8,
        }
    }

    /// Human-readable section name (CLI byte breakdown).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Config => "config",
            SectionKind::Seeds => "seeds",
            SectionKind::Strings => "strings",
            SectionKind::Pointers => "pointers",
            SectionKind::Common => "common",
            SectionKind::Blocks => "blocks",
            SectionKind::Meta => "meta",
            SectionKind::Vocab => "vocab",
        }
    }
}

/// One entry of the v2 layer directory: a classified byte range of the
/// header blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// What the section holds.
    pub kind: SectionKind,
    /// Cache tier the bytes belong to.
    pub class: ByteClass,
    /// Byte offset within the header blob (8-aligned).
    pub offset: u64,
    /// Byte length of the section body.
    pub len: u64,
}

/// The v2 layer directory: every byte range of the segment classified as
/// Index or Data. Header sections are enumerated explicitly; the external
/// superpost blocks (Data class) are described by their byte sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDirectory {
    /// Classified byte ranges of the header blob.
    pub sections: Vec<SectionInfo>,
    /// Byte size of superpost block `i` (blob `{prefix}/superposts/{i:05}`).
    pub data_blocks: Vec<u64>,
}

impl LayerDirectory {
    /// Total Index-class bytes (the header sections).
    pub fn index_bytes(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.class == ByteClass::Index)
            .map(|s| s.len)
            .sum()
    }

    /// Total Data-class bytes (the superpost blocks).
    pub fn data_bytes(&self) -> u64 {
        self.data_blocks.iter().sum()
    }
}

/// What was on the wire when a header was decoded: the format version and,
/// for v2, the layer directory.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentFormat {
    /// On-wire version (1 or 2).
    pub version: u32,
    /// Layer directory (v2 only).
    pub directory: Option<LayerDirectory>,
}

impl SegmentFormat {
    /// Format descriptor for a v1 segment (no layer directory).
    pub fn v1() -> Self {
        SegmentFormat {
            version: 1,
            directory: None,
        }
    }
}

/// Read the format version of a serialized header without decoding it.
pub fn peek_version(data: &[u8]) -> Result<u64> {
    let mut cur = Cursor::new(data);
    let magic = cur.bytes(4)?;
    if magic != MAGIC {
        return Err(SketchError::Corrupt {
            detail: "bad magic".into(),
        });
    }
    cur.varint()
}

const V2_PREAMBLE: usize = 16; // magic(4) + version(1) + pad(3) + count(4) + reserved(4)
const V2_TABLE_ENTRY: usize = 24; // kind(4) + class(4) + offset(8) + len(8)
const V2_POINTER_ENTRY: usize = 16; // block(4) + len(4) + offset(8)

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

impl HeaderBlock {
    /// Serialize the header in the requested format. `data_blocks` are the
    /// byte sizes of the superpost blocks (ignored by v1, recorded in the
    /// v2 layer directory).
    pub fn encode_with(&self, format: FormatVersion, data_blocks: &[u64]) -> Bytes {
        match format {
            FormatVersion::V1 => self.encode(),
            FormatVersion::V2 => self.encode_v2(data_blocks),
        }
    }

    /// Serialize the header in format v2: an 8-aligned section table whose
    /// entries classify every byte range (the layer directory), fixed-width
    /// seeds and bin pointers readable in place, and a BLOCKS section
    /// recording the byte size of each external superpost block.
    pub fn encode_v2(&self, data_blocks: &[u64]) -> Bytes {
        let mut bodies: Vec<(SectionKind, Bytes)> = Vec::with_capacity(7);

        let mut config = BytesMut::with_capacity(24);
        config.put_u64_le(self.config.total_bins as u64);
        config.put_u64_le(self.config.layers as u64);
        config.put_slice(&self.config.common_fraction.to_le_bytes());
        bodies.push((SectionKind::Config, config.freeze()));

        let mut seeds = BytesMut::with_capacity(self.seeds.len() * 16);
        for s in &self.seeds {
            seeds.put_u64_le(s.a);
            seeds.put_u64_le(s.b);
        }
        bodies.push((SectionKind::Seeds, seeds.freeze()));

        let mut strings = BytesMut::new();
        self.string_table.encode_into(&mut strings);
        bodies.push((SectionKind::Strings, strings.freeze()));

        let entries: usize = self.pointers.iter().map(|l| l.len()).sum();
        let mut pointers =
            BytesMut::with_capacity(8 + 8 * self.pointers.len() + V2_POINTER_ENTRY * entries);
        pointers.put_u64_le(self.pointers.len() as u64);
        for layer in &self.pointers {
            pointers.put_u64_le(layer.len() as u64);
        }
        for layer in &self.pointers {
            for p in layer {
                pointers.put_u32_le(p.block);
                pointers.put_u32_le(p.len);
                pointers.put_u64_le(p.offset);
            }
        }
        bodies.push((SectionKind::Pointers, pointers.freeze()));

        let mut common = BytesMut::new();
        put_varint(&mut common, self.common.len() as u64);
        for (word, ptr) in &self.common {
            put_string(&mut common, word);
            ptr.encode_into(&mut common);
        }
        bodies.push((SectionKind::Common, common.freeze()));

        let mut blocks = BytesMut::with_capacity(8 + 8 * data_blocks.len());
        blocks.put_u64_le(data_blocks.len() as u64);
        for &size in data_blocks {
            blocks.put_u64_le(size);
        }
        bodies.push((SectionKind::Blocks, blocks.freeze()));

        let mut meta = BytesMut::new();
        put_varint(&mut meta, self.meta.len() as u64);
        for (k, v) in &self.meta {
            put_string(&mut meta, k);
            put_string(&mut meta, v);
        }
        bodies.push((SectionKind::Meta, meta.freeze()));

        if let Some(v) = &self.vocab {
            let mut vocab = BytesMut::new();
            v.encode_into(&mut vocab);
            bodies.push((SectionKind::Vocab, vocab.freeze()));
        }

        let table_bytes = V2_TABLE_ENTRY * bodies.len();
        let mut offset = V2_PREAMBLE + table_bytes; // already 8-aligned
        let mut placed: Vec<(SectionKind, usize, usize)> = Vec::with_capacity(bodies.len());
        for (kind, body) in &bodies {
            placed.push((*kind, offset, body.len()));
            offset = align8(offset + body.len());
        }

        let mut buf = BytesMut::with_capacity(offset);
        buf.put_slice(MAGIC);
        put_varint(&mut buf, VERSION_V2);
        buf.put_slice(&[0u8; 3]);
        buf.put_u32_le(bodies.len() as u32);
        buf.put_u32_le(0);
        for (kind, off, len) in &placed {
            buf.put_u32_le(kind.to_u32());
            // All header sections are Index class; the Data class lives in
            // the external blocks the BLOCKS section describes.
            buf.put_u32_le(0);
            buf.put_u64_le(*off as u64);
            buf.put_u64_le(*len as u64);
        }
        for ((_, body), (_, off, _)) in bodies.iter().zip(&placed) {
            while buf.len() < *off {
                buf.put_u8(0);
            }
            buf.put_slice(body);
        }
        buf.freeze()
    }

    /// Like [`HeaderBlock::decode_any`], but borrowing the caller's
    /// [`Bytes`] so a v2 header is decoded without copying the blob.
    pub fn decode_any_bytes(data: &Bytes) -> Result<(Self, SegmentFormat)> {
        match peek_version(data)? {
            VERSION => Self::decode_v1(data).map(|h| (h, SegmentFormat::v1())),
            VERSION_V2 => {
                let view = HeaderView::parse(data.clone())?;
                let format = SegmentFormat {
                    version: 2,
                    directory: Some(view.directory().clone()),
                };
                Ok((view.to_header_block()?, format))
            }
            other => Err(SketchError::Corrupt {
                detail: format!("unsupported header version {other}"),
            }),
        }
    }
}

/// A validated, zero-copy view of a v2 header blob. Parsing checks the
/// section table and fixed-width sections once; afterwards bin pointers and
/// seeds are read in place from the borrowed [`Bytes`] with no allocation.
#[derive(Debug, Clone)]
pub struct HeaderView {
    data: Bytes,
    directory: LayerDirectory,
    config: SketchConfig,
    seeds_offset: usize,
    layer_counts: Vec<usize>,
    layer_starts: Vec<usize>,
    strings: (usize, usize),
    common: (usize, usize),
    meta: (usize, usize),
    vocab: Option<(usize, usize)>,
}

impl HeaderView {
    /// Validate a v2 header blob and build the view.
    pub fn parse(data: Bytes) -> Result<Self> {
        let corrupt = |detail: String| SketchError::Corrupt { detail };
        let mut cur = Cursor::new(&data);
        let magic = cur.bytes(4)?;
        if magic != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = cur.varint()?;
        if version != VERSION_V2 {
            return Err(corrupt(format!("unsupported header version {version}")));
        }
        if cur.position() != 5 {
            return Err(corrupt("overlong version varint".into()));
        }
        cur.bytes(3)?; // padding
        let section_count = cur.u32_le()? as usize;
        let _reserved = cur.u32_le()?;
        if section_count > data.len() / V2_TABLE_ENTRY {
            return Err(corrupt(format!(
                "section count {section_count} exceeds blob size"
            )));
        }
        let mut sections = Vec::with_capacity(section_count);
        let mut max_end = V2_PREAMBLE + V2_TABLE_ENTRY * section_count;
        for _ in 0..section_count {
            let kind_raw = cur.u32_le()?;
            let class_raw = cur.u32_le()?;
            let offset = cur.u64_le()?;
            let len = cur.u64_le()?;
            let kind = SectionKind::from_u32(kind_raw)
                .ok_or_else(|| corrupt(format!("unknown section kind {kind_raw}")))?;
            let class = match class_raw {
                0 => ByteClass::Index,
                1 => ByteClass::Data,
                other => return Err(corrupt(format!("unknown byte class {other}"))),
            };
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= data.len() as u64)
                .ok_or_else(|| corrupt("section range out of bounds".into()))?;
            if offset % 8 != 0 || (offset as usize) < V2_PREAMBLE + V2_TABLE_ENTRY * section_count {
                return Err(corrupt("misaligned section offset".into()));
            }
            max_end = max_end.max(end as usize);
            sections.push(SectionInfo {
                kind,
                class,
                offset,
                len,
            });
        }
        if max_end != data.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after header sections",
                data.len() - max_end
            )));
        }

        let find_optional = |kind: SectionKind| -> Result<Option<(usize, usize)>> {
            let mut found = None;
            for s in &sections {
                if s.kind == kind {
                    if found.is_some() {
                        return Err(SketchError::Corrupt {
                            detail: format!("duplicate {} section", kind.name()),
                        });
                    }
                    found = Some((s.offset as usize, s.len as usize));
                }
            }
            Ok(found)
        };
        let find = |kind: SectionKind| -> Result<(usize, usize)> {
            find_optional(kind)?.ok_or_else(|| SketchError::Corrupt {
                detail: format!("missing {} section", kind.name()),
            })
        };

        let (config_off, config_len) = find(SectionKind::Config)?;
        if config_len != 24 {
            return Err(corrupt(format!("config section has {config_len} bytes")));
        }
        let mut ccur = Cursor::new(&data[config_off..config_off + config_len]);
        let total_bins = ccur.u64_le()? as usize;
        let layers = ccur.u64_le()? as usize;
        let common_fraction = ccur.f64()?;
        let config = SketchConfig {
            total_bins,
            layers,
            common_fraction,
        };

        let (seeds_offset, seeds_len) = find(SectionKind::Seeds)?;
        if Some(seeds_len) != 16usize.checked_mul(layers) {
            return Err(corrupt(format!(
                "{seeds_len} seed bytes for {layers} layers"
            )));
        }

        let (ptr_off, ptr_len) = find(SectionKind::Pointers)?;
        let mut pcur = Cursor::new(&data[ptr_off..ptr_off + ptr_len]);
        let n_layers = pcur.u64_le()? as usize;
        if n_layers != layers {
            return Err(corrupt(format!(
                "{n_layers} pointer layers for {layers} layers"
            )));
        }
        if ptr_len < 8 + 8 * n_layers {
            return Err(corrupt("pointer section truncated".into()));
        }
        let mut layer_counts = Vec::with_capacity(n_layers);
        let mut total_entries = 0usize;
        for _ in 0..n_layers {
            let n = pcur.u64_le()? as usize;
            total_entries = total_entries
                .checked_add(n)
                .ok_or_else(|| corrupt("pointer count overflow".into()))?;
            layer_counts.push(n);
        }
        let expect = 8
            + 8 * n_layers
            + total_entries
                .checked_mul(V2_POINTER_ENTRY)
                .ok_or_else(|| corrupt("pointer count overflow".into()))?;
        if expect != ptr_len {
            return Err(corrupt(format!(
                "pointer section is {ptr_len} bytes, expected {expect}"
            )));
        }
        let mut layer_starts = Vec::with_capacity(n_layers);
        let mut start = ptr_off + 8 + 8 * n_layers;
        for &n in &layer_counts {
            layer_starts.push(start);
            start += n * V2_POINTER_ENTRY;
        }

        let (blocks_off, blocks_len) = find(SectionKind::Blocks)?;
        let mut bcur = Cursor::new(&data[blocks_off..blocks_off + blocks_len]);
        let n_blocks = bcur.u64_le()? as usize;
        if Some(blocks_len) != 8usize.checked_mul(n_blocks).and_then(|b| b.checked_add(8)) {
            return Err(corrupt(format!(
                "blocks section is {blocks_len} bytes for {n_blocks} blocks"
            )));
        }
        let mut data_blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            data_blocks.push(bcur.u64_le()?);
        }

        let strings = find(SectionKind::Strings)?;
        let common = find(SectionKind::Common)?;
        let meta = find(SectionKind::Meta)?;
        let vocab = find_optional(SectionKind::Vocab)?;

        Ok(HeaderView {
            directory: LayerDirectory {
                sections,
                data_blocks,
            },
            config,
            seeds_offset,
            layer_counts,
            layer_starts,
            strings,
            common,
            meta,
            vocab,
            data,
        })
    }

    /// The layer directory (classified byte ranges).
    pub fn directory(&self) -> &LayerDirectory {
        &self.directory
    }

    /// Sketch structure.
    pub fn config(&self) -> SketchConfig {
        self.config.clone()
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layer_counts.len()
    }

    /// Number of bins in `layer`.
    pub fn bins_in_layer(&self, layer: usize) -> usize {
        self.layer_counts.get(layer).copied().unwrap_or(0)
    }

    /// Read the hash seed of `layer` in place.
    pub fn seed(&self, layer: usize) -> Option<LayerSeed> {
        if layer >= self.layer_counts.len() {
            return None;
        }
        let off = self.seeds_offset + 16 * layer;
        let a = u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap());
        let b = u64::from_le_bytes(self.data[off + 8..off + 16].try_into().unwrap());
        Some(LayerSeed { a, b })
    }

    /// Read bin pointer `(layer, bin)` in place — no decode, no allocation.
    pub fn pointer(&self, layer: usize, bin: usize) -> Option<BinPointer> {
        if bin >= *self.layer_counts.get(layer)? {
            return None;
        }
        let off = self.layer_starts[layer] + bin * V2_POINTER_ENTRY;
        let block = u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap());
        let len = u32::from_le_bytes(self.data[off + 4..off + 8].try_into().unwrap());
        let offset = u64::from_le_bytes(self.data[off + 8..off + 16].try_into().unwrap());
        Some(BinPointer { block, offset, len })
    }

    /// Materialize the full [`HeaderBlock`] (variable-width sections are
    /// decoded here; fixed-width sections were validated by `parse`).
    pub fn to_header_block(&self) -> Result<HeaderBlock> {
        let section = |&(off, len): &(usize, usize)| &self.data[off..off + len];

        let mut scur = Cursor::new(section(&self.strings));
        let string_table = StringTable::decode_from(&mut scur)?;
        if !scur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after strings", scur.remaining()),
            });
        }

        let mut seeds = Vec::with_capacity(self.n_layers());
        let mut pointers = Vec::with_capacity(self.n_layers());
        for layer in 0..self.n_layers() {
            seeds.push(self.seed(layer).expect("validated layer"));
            let mut bins = Vec::with_capacity(self.layer_counts[layer]);
            for bin in 0..self.layer_counts[layer] {
                bins.push(self.pointer(layer, bin).expect("validated bin"));
            }
            pointers.push(bins);
        }

        let mut ccur = Cursor::new(section(&self.common));
        let n_common = ccur.varint()? as usize;
        if n_common > ccur.remaining() / 4 {
            return Err(SketchError::Corrupt {
                detail: format!("common-word count {n_common} exceeds remaining bytes"),
            });
        }
        let mut common = Vec::with_capacity(n_common);
        for _ in 0..n_common {
            let word = ccur.string()?;
            let ptr = BinPointer::decode_from(&mut ccur)?;
            common.push((word, ptr));
        }
        if !ccur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after common words", ccur.remaining()),
            });
        }

        let mut mcur = Cursor::new(section(&self.meta));
        let n_meta = mcur.varint()? as usize;
        if n_meta > mcur.remaining() / 2 {
            return Err(SketchError::Corrupt {
                detail: format!("meta count {n_meta} exceeds remaining bytes"),
            });
        }
        let mut meta = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = mcur.string()?;
            let v = mcur.string()?;
            meta.push((k, v));
        }
        if !mcur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after meta", mcur.remaining()),
            });
        }

        let vocab = match &self.vocab {
            Some(range) => {
                let mut vcur = Cursor::new(section(range));
                let v = crate::vocab::Vocabulary::decode_from(&mut vcur)?;
                if !vcur.is_exhausted() {
                    return Err(SketchError::Corrupt {
                        detail: format!("{} trailing bytes after vocab", vcur.remaining()),
                    });
                }
                Some(v)
            }
            None => None,
        };

        Ok(HeaderBlock {
            config: self.config.clone(),
            seeds,
            string_table,
            pointers,
            common,
            meta,
            vocab,
        })
    }
}

// ---------------------------------------------------------------------------
// Zero-copy superpost views
// ---------------------------------------------------------------------------

/// A validated, zero-copy view over one serialized superpost. `parse`
/// walks the payload once — bounds, overflow, and strict sorted order are
/// all checked up front — so iteration afterwards is infallible and
/// allocation-free: postings are decoded lazily straight out of the
/// borrowed [`Bytes`].
#[derive(Debug, Clone)]
pub struct SuperpostView {
    data: Bytes,
    count: usize,
    payload_start: usize,
}

impl SuperpostView {
    /// Validate `data` (exactly one encoded superpost) and build the view.
    pub fn parse(data: Bytes) -> Result<Self> {
        let mut cur = Cursor::new(&data);
        let count = cur.varint()? as usize;
        check_superpost_count(count, cur.remaining())?;
        let payload_start = cur.position();
        let mut prev = (0u32, 0u64);
        let mut prev_posting: Option<Posting> = None;
        for _ in 0..count {
            let p = read_posting(&mut cur, prev)?;
            if let Some(pp) = prev_posting {
                if p <= pp {
                    return Err(SketchError::Corrupt {
                        detail: "postings out of order".into(),
                    });
                }
            }
            prev = (p.blob, p.offset);
            prev_posting = Some(p);
        }
        if !cur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after superpost", cur.remaining()),
            });
        }
        Ok(SuperpostView {
            data,
            count,
            payload_start,
        })
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the superpost is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Lazily iterate the postings, decoding in place.
    pub fn iter(&self) -> SuperpostIter<'_> {
        SuperpostIter {
            cur: Cursor::new(&self.data[self.payload_start..]),
            left: self.count,
            prev: (0, 0),
        }
    }

    /// Materialize the full [`PostingsList`] (one allocation).
    pub fn to_postings_list(&self) -> PostingsList {
        let mut postings = Vec::with_capacity(self.count);
        postings.extend(self.iter());
        PostingsList::from_sorted_unique(postings)
    }
}

impl<'a> IntoIterator for &'a SuperpostView {
    type Item = Posting;
    type IntoIter = SuperpostIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Lazy posting iterator over a validated [`SuperpostView`].
#[derive(Debug)]
pub struct SuperpostIter<'a> {
    cur: Cursor<'a>,
    left: usize,
    prev: (u32, u64),
}

impl Iterator for SuperpostIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        // The view was fully validated at parse time, so decoding cannot
        // fail here; `.ok()` keeps even a misuse panic-free.
        let p = read_posting(&mut self.cur, self.prev).ok()?;
        self.prev = (p.blob, p.offset);
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left, Some(self.left))
    }
}

impl ExactSizeIterator for SuperpostIter<'_> {}

/// K-way streaming intersection over superpost views: the `query(word)`
/// aggregation without materializing any input list. Only the result is
/// allocated — each input is decoded lazily, in lockstep, straight from its
/// fetched bytes.
pub fn intersect_views(views: &[&SuperpostView]) -> PostingsList {
    match views.len() {
        0 => PostingsList::new(),
        1 => views[0].to_postings_list(),
        _ => {
            let mut iters: Vec<SuperpostIter<'_>> = views.iter().map(|v| v.iter()).collect();
            let mut heads: Vec<Option<Posting>> = iters.iter_mut().map(|it| it.next()).collect();
            // Grow on demand: intersections are usually far smaller than
            // the smallest input, and reserving input-sized capacity
            // would reintroduce an input-proportional allocation.
            let mut out = Vec::new();
            'outer: while let Some(first) = heads[0] {
                let mut max = first;
                for h in &heads[1..] {
                    match *h {
                        None => break 'outer,
                        Some(p) => {
                            if p > max {
                                max = p;
                            }
                        }
                    }
                }
                let mut all_equal = true;
                for (head, it) in heads.iter_mut().zip(iters.iter_mut()) {
                    while matches!(head, Some(p) if *p < max) {
                        *head = it.next();
                    }
                    match head {
                        None => break 'outer,
                        Some(p) if *p == max => {}
                        _ => all_equal = false,
                    }
                }
                if all_equal {
                    out.push(max);
                    for (head, it) in heads.iter_mut().zip(iters.iter_mut()) {
                        *head = it.next();
                    }
                }
            }
            PostingsList::from_sorted_unique(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            assert!(cur.is_exhausted());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1_000_000);
        let mut cur = Cursor::new(&buf[..1]);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn varint_overlong_errors() {
        let overlong = [0x80u8; 11];
        let mut cur = Cursor::new(&overlong);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "héllo wörld");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.string().unwrap(), "héllo wörld");
    }

    #[test]
    fn string_invalid_utf8_errors() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(&buf);
        assert!(cur.string().is_err());
    }

    #[test]
    fn string_table_interning() {
        let mut t = StringTable::new();
        let a = t.intern("logs/part-0");
        let b = t.intern("logs/part-1");
        let a2 = t.intern("logs/part-0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), Some("logs/part-0"));
        assert_eq!(t.id_of("logs/part-1"), Some(b));
        assert_eq!(t.name(99), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn superpost_roundtrip_multi_blob() {
        let list = PostingsList::from_postings(vec![
            Posting::new(0, 0, 120),
            Posting::new(0, 120, 80),
            Posting::new(0, 200, 4_000),
            Posting::new(2, 64, 128),
            Posting::new(2, 1 << 40, 17),
        ]);
        let enc = encode_superpost(&list);
        let dec = decode_superpost(&enc).unwrap();
        assert_eq!(dec, list);
    }

    #[test]
    fn superpost_empty_roundtrip() {
        let enc = encode_superpost(&PostingsList::new());
        assert_eq!(enc.len(), 1); // just the zero count
        assert_eq!(decode_superpost(&enc).unwrap(), PostingsList::new());
    }

    #[test]
    fn superpost_delta_encoding_is_compact() {
        // Consecutive documents in one blob should cost ~3 bytes each, far
        // below the 13+ bytes of a raw (u32, u64, u32) encoding.
        let postings: Vec<Posting> = (0..1_000).map(|i| Posting::new(0, i * 100, 100)).collect();
        let list = PostingsList::from_sorted_unique(postings);
        let enc = encode_superpost(&list);
        assert!(
            enc.len() < 1_000 * 5,
            "encoding too large: {} bytes for 1000 postings",
            enc.len()
        );
    }

    #[test]
    fn superpost_trailing_garbage_errors() {
        let list = PostingsList::from_doc_ids(&[1, 2, 3]);
        let mut enc = BytesMut::from(&encode_superpost(&list)[..]);
        enc.put_u8(0x00);
        assert!(decode_superpost(&enc).is_err());
    }

    #[test]
    fn superpost_truncated_errors() {
        let list = PostingsList::from_doc_ids(&[1, 2, 3]);
        let enc = encode_superpost(&list);
        assert!(decode_superpost(&enc[..enc.len() - 1]).is_err());
    }

    fn sample_header() -> HeaderBlock {
        let mut st = StringTable::new();
        st.intern("corpus/blob-0");
        st.intern("corpus/blob-1");
        HeaderBlock {
            config: SketchConfig {
                total_bins: 100,
                layers: 2,
                common_fraction: 0.01,
            },
            seeds: vec![LayerSeed { a: 7, b: 13 }, LayerSeed { a: 99, b: 0 }],
            string_table: st,
            pointers: vec![
                (0..49).map(|i| BinPointer::new(0, i * 10, 10)).collect(),
                (0..49).map(|i| BinPointer::new(1, i * 20, 20)).collect(),
            ],
            common: vec![("the".into(), BinPointer::new(0, 490, 1_000))],
            meta: vec![
                ("f0".into(), "1.0".into()),
                ("corpus".into(), "test".into()),
            ],
            vocab: None,
        }
    }

    fn sample_vocab() -> crate::vocab::Vocabulary {
        crate::vocab::Vocabulary::build(vec![
            "alpha".into(),
            "beta".into(),
            "gamma".into(),
            "the".into(),
        ])
        .unwrap()
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let enc = h.encode();
        let dec = HeaderBlock::decode(&enc).unwrap();
        assert_eq!(dec, h);
    }

    #[test]
    fn header_bad_magic_errors() {
        let h = sample_header();
        let mut enc = h.encode().to_vec();
        enc[0] = b'X';
        assert!(matches!(
            HeaderBlock::decode(&enc),
            Err(SketchError::Corrupt { .. })
        ));
    }

    #[test]
    fn header_truncation_errors() {
        let enc = sample_header().encode();
        for cut in [3, 10, enc.len() / 2, enc.len() - 1] {
            assert!(
                HeaderBlock::decode(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn header_seed_layer_mismatch_errors() {
        let mut h = sample_header();
        h.seeds.pop();
        let enc = h.encode();
        assert!(HeaderBlock::decode(&enc).is_err());
    }

    #[test]
    fn header_size_is_small_for_paper_config() {
        // §V-A0c: B = 1e5 bins → "runtime size about 2 MB". Each pointer
        // costs ≲ 12 varint bytes; the full header must stay in the
        // low-megabyte range.
        let pointers: Vec<Vec<BinPointer>> = vec![(0..99_000u64)
            .map(|i| BinPointer::new(0, i * 50, 50))
            .collect()];
        let h = HeaderBlock {
            config: SketchConfig {
                total_bins: 100_000,
                layers: 1,
                common_fraction: 0.01,
            },
            seeds: vec![LayerSeed { a: 1, b: 2 }],
            string_table: StringTable::new(),
            pointers,
            common: Vec::new(),
            meta: Vec::new(),
            vocab: None,
        };
        let enc = h.encode();
        assert!(
            enc.len() < 2 * 1024 * 1024,
            "header is {} bytes, expected < 2MB",
            enc.len()
        );
    }

    // -- format v2 ----------------------------------------------------------

    #[test]
    fn v2_header_roundtrip() {
        let h = sample_header();
        let enc = h.encode_v2(&[1024, 2048]);
        let (dec, format) = HeaderBlock::decode_any(&enc).unwrap();
        assert_eq!(dec, h);
        assert_eq!(format.version, 2);
        let dir = format.directory.unwrap();
        assert_eq!(dir.data_blocks, vec![1024, 2048]);
        assert_eq!(dir.data_bytes(), 3072);
        assert!(dir.index_bytes() > 0);
        assert!(dir
            .sections
            .iter()
            .all(|s| s.class == ByteClass::Index && s.offset % 8 == 0));
    }

    #[test]
    fn v2_decode_through_plain_decode() {
        let h = sample_header();
        let enc = h.encode_v2(&[]);
        assert_eq!(HeaderBlock::decode(&enc).unwrap(), h);
    }

    #[test]
    fn v2_vocab_section_roundtrips() {
        let mut h = sample_header();
        h.vocab = Some(sample_vocab());
        let enc = h.encode_v2(&[512]);
        let (dec, format) = HeaderBlock::decode_any(&enc).unwrap();
        assert_eq!(dec, h);
        let dir = format.directory.unwrap();
        let vocab_section = dir
            .sections
            .iter()
            .find(|s| s.kind == SectionKind::Vocab)
            .expect("vocab section listed in directory");
        assert_eq!(
            vocab_section.class,
            ByteClass::Index,
            "vocab is pinned with the index tier"
        );
        let (_, bare) = HeaderBlock::decode_any(&sample_header().encode_v2(&[512])).unwrap();
        assert!(
            dir.index_bytes() > bare.directory.unwrap().index_bytes(),
            "the vocab section adds Index-class bytes"
        );
    }

    #[test]
    fn v1_encode_drops_vocab() {
        let mut h = sample_header();
        h.vocab = Some(sample_vocab());
        let dec = HeaderBlock::decode(&h.encode()).unwrap();
        assert_eq!(dec.vocab, None, "v1 wire format has no vocab section");
        h.vocab = None;
        assert_eq!(dec, h);
    }

    #[test]
    fn vocab_less_v2_still_decodes() {
        // Segments written before prefix/fuzzy support simply lack the
        // section — decoding must keep working, with `vocab: None`.
        let h = sample_header();
        let (dec, _) = HeaderBlock::decode_any(&h.encode_v2(&[64])).unwrap();
        assert_eq!(dec.vocab, None);
    }

    #[test]
    fn v1_decode_any_reports_version_1() {
        let h = sample_header();
        let (dec, format) = HeaderBlock::decode_any(&h.encode()).unwrap();
        assert_eq!(dec, h);
        assert_eq!(format.version, 1);
        assert!(format.directory.is_none());
    }

    #[test]
    fn peek_version_distinguishes_formats() {
        let h = sample_header();
        assert_eq!(peek_version(&h.encode()).unwrap(), 1);
        assert_eq!(peek_version(&h.encode_v2(&[])).unwrap(), 2);
        assert!(peek_version(b"XIRP").is_err());
    }

    #[test]
    fn v2_header_view_reads_pointers_in_place() {
        let h = sample_header();
        let enc = h.encode_v2(&[512]);
        let view = HeaderView::parse(enc).unwrap();
        assert_eq!(view.n_layers(), 2);
        assert_eq!(view.bins_in_layer(0), 49);
        assert_eq!(view.bins_in_layer(1), 49);
        for layer in 0..2 {
            for bin in 0..49 {
                assert_eq!(view.pointer(layer, bin), Some(h.pointers[layer][bin]));
            }
            assert_eq!(view.seed(layer), Some(h.seeds[layer]));
        }
        assert_eq!(view.pointer(0, 49), None);
        assert_eq!(view.pointer(2, 0), None);
        assert_eq!(view.config(), h.config);
    }

    #[test]
    fn v2_truncation_errors_at_every_cut() {
        let enc = sample_header().encode_v2(&[100, 200]);
        for cut in 0..enc.len() {
            assert!(
                HeaderBlock::decode(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unsupported_version_errors() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        put_varint(&mut buf, 9);
        let err = HeaderBlock::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("unsupported header version 9"));
    }

    #[test]
    fn format_version_parsing() {
        use std::str::FromStr;
        assert_eq!(FormatVersion::from_str("v1").unwrap(), FormatVersion::V1);
        assert_eq!(FormatVersion::from_str("2").unwrap(), FormatVersion::V2);
        assert!(FormatVersion::from_str("v3").is_err());
        assert_eq!(FormatVersion::default(), FormatVersion::V2);
        assert_eq!(FormatVersion::V2.to_string(), "v2");
    }

    // -- superpost views ----------------------------------------------------

    fn sample_list() -> PostingsList {
        PostingsList::from_postings(vec![
            Posting::new(0, 0, 120),
            Posting::new(0, 120, 80),
            Posting::new(0, 200, 4_000),
            Posting::new(2, 64, 128),
            Posting::new(2, 1 << 40, 17),
        ])
    }

    #[test]
    fn superpost_view_matches_eager_decode() {
        let list = sample_list();
        let enc = encode_superpost(&list);
        let view = SuperpostView::parse(enc.clone()).unwrap();
        assert_eq!(view.len(), list.len());
        let lazy: Vec<Posting> = view.iter().collect();
        assert_eq!(lazy, list.as_slice());
        assert_eq!(view.to_postings_list(), list);
        assert_eq!(decode_superpost(&enc).unwrap(), list);
    }

    #[test]
    fn superpost_view_rejects_what_decode_rejects() {
        let list = sample_list();
        let enc = encode_superpost(&list);
        for cut in 0..enc.len() {
            let truncated = enc.slice(0..cut);
            assert_eq!(
                SuperpostView::parse(truncated.clone()).is_err(),
                decode_superpost(&truncated).is_err(),
                "view/decode disagree at cut {cut}"
            );
        }
    }

    #[test]
    fn superpost_view_rejects_unsorted() {
        // Same blob, zero offset delta, same len → duplicate posting, which
        // a valid encoder can never emit.
        let mut dup = BytesMut::new();
        put_varint(&mut dup, 2);
        put_varint(&mut dup, 1);
        put_varint(&mut dup, 5);
        put_varint(&mut dup, 1);
        put_varint(&mut dup, 0); // same blob
        put_varint(&mut dup, 0); // same offset
        put_varint(&mut dup, 1); // same len → duplicate posting
        assert!(SuperpostView::parse(dup.clone().freeze()).is_err());
        assert!(decode_superpost(&dup).is_err());
    }

    #[test]
    fn superpost_count_larger_than_payload_errors() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u32::MAX as u64); // absurd count, no payload
        assert!(decode_superpost(&buf).is_err());
        assert!(SuperpostView::parse(buf.freeze()).is_err());
    }

    #[test]
    fn intersect_views_matches_intersect_all() {
        let a = PostingsList::from_doc_ids(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = PostingsList::from_doc_ids(&[2, 4, 6, 8, 10]);
        let c = PostingsList::from_doc_ids(&[4, 8, 12]);
        let views: Vec<SuperpostView> = [&a, &b, &c]
            .iter()
            .map(|l| SuperpostView::parse(encode_superpost(l)).unwrap())
            .collect();
        let refs: Vec<&SuperpostView> = views.iter().collect();
        assert_eq!(
            intersect_views(&refs),
            PostingsList::intersect_all(&[&a, &b, &c])
        );
        assert_eq!(intersect_views(&refs[..1]), a);
        assert_eq!(intersect_views(&[]), PostingsList::new());
    }

    #[test]
    fn intersect_views_disjoint_and_empty() {
        let a = PostingsList::from_doc_ids(&[1, 3, 5]);
        let b = PostingsList::from_doc_ids(&[2, 4, 6]);
        let empty = PostingsList::new();
        let va = SuperpostView::parse(encode_superpost(&a)).unwrap();
        let vb = SuperpostView::parse(encode_superpost(&b)).unwrap();
        let ve = SuperpostView::parse(encode_superpost(&empty)).unwrap();
        assert!(intersect_views(&[&va, &vb]).is_empty());
        assert!(intersect_views(&[&va, &ve]).is_empty());
        assert!(ve.is_empty());
    }

    #[test]
    fn cursor_str_ref_borrows() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "borrowed");
        let mut cur = Cursor::new(&buf);
        let s: &str = cur.str_ref().unwrap();
        assert_eq!(s, "borrowed");
        assert!(cur.is_exhausted());
    }
}
