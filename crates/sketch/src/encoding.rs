//! Superpost compaction encoding (§IV-C).
//!
//! The paper concatenates all superposts into a single blob (or a few
//! blocks), serialized compactly, with a *header block* holding bin
//! pointers, hash seeds, a string-compression table, and metadata. The
//! header is the one piece the Searcher downloads at initialization; every
//! superpost is then reachable in a single ranged read via its
//! `(block, offset, length)` pointer.
//!
//! The paper serializes with Protocol Buffers; protobuf is not on the
//! offline crate allowlist, so we implement an equivalent compact binary
//! format (see DESIGN.md §4): LEB128 varints, delta-encoded sorted
//! postings, and interned blob names ("Airphant compresses repeated strings
//! within postings into integer keys").

use crate::error::SketchError;
use crate::hash::LayerSeed;
use crate::postings::{Posting, PostingsList};
use crate::sketch::SketchConfig;
use crate::Result;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Varint primitives (LEB128, unsigned)
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// A decoding cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, what: &str) -> SketchError {
        SketchError::Corrupt {
            detail: format!("{what} at byte {}", self.pos),
        }
    }

    /// Read one LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| self.corrupt("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(self.corrupt("varint overflow"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt("truncated bytes"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.corrupt("invalid utf-8"))
    }

    /// Read an f64 stored as raw little-endian bits.
    pub fn f64(&mut self) -> Result<f64> {
        let raw = self.bytes(8)?;
        Ok(f64::from_le_bytes(raw.try_into().unwrap()))
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Append an f64 as raw little-endian bits.
pub fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// String-compression table
// ---------------------------------------------------------------------------

/// Interns blob names to `u32` ids (§IV-C's string compression).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StringTable {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl StringTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Resolve an id back to a name.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Look up an already-interned name.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        put_varint(buf, self.names.len() as u64);
        for n in &self.names {
            put_string(buf, n);
        }
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self> {
        let count = cur.varint()? as usize;
        let mut table = StringTable::new();
        for _ in 0..count {
            let name = cur.string()?;
            table.intern(&name);
        }
        Ok(table)
    }
}

// ---------------------------------------------------------------------------
// Superpost codec
// ---------------------------------------------------------------------------

/// Encode a superpost: varint count, then delta-encoded `(blob, offset,
/// len)` triples exploiting the sorted order.
pub fn encode_superpost(list: &PostingsList) -> Bytes {
    let mut buf = BytesMut::with_capacity(list.approx_bytes());
    put_varint(&mut buf, list.len() as u64);
    let mut prev_blob = 0u32;
    let mut prev_offset = 0u64;
    for (i, p) in list.iter().enumerate() {
        let blob_delta = if i == 0 { p.blob } else { p.blob - prev_blob };
        put_varint(&mut buf, blob_delta as u64);
        let off = if i > 0 && blob_delta == 0 {
            p.offset - prev_offset
        } else {
            p.offset
        };
        put_varint(&mut buf, off);
        put_varint(&mut buf, p.len as u64);
        prev_blob = p.blob;
        prev_offset = p.offset;
    }
    buf.freeze()
}

/// Decode a superpost produced by [`encode_superpost`].
pub fn decode_superpost(data: &[u8]) -> Result<PostingsList> {
    let mut cur = Cursor::new(data);
    let list = decode_superpost_from(&mut cur)?;
    if !cur.is_exhausted() {
        return Err(SketchError::Corrupt {
            detail: format!("{} trailing bytes after superpost", cur.remaining()),
        });
    }
    Ok(list)
}

/// Decode a superpost from a cursor (for concatenated blocks).
pub fn decode_superpost_from(cur: &mut Cursor<'_>) -> Result<PostingsList> {
    let count = cur.varint()? as usize;
    let mut postings = Vec::with_capacity(count);
    let mut prev_blob = 0u32;
    let mut prev_offset = 0u64;
    for i in 0..count {
        let blob_delta = cur.varint()?;
        let blob = if i == 0 {
            blob_delta as u32
        } else {
            prev_blob
                .checked_add(blob_delta as u32)
                .ok_or_else(|| SketchError::Corrupt {
                    detail: "blob id overflow".into(),
                })?
        };
        let raw_off = cur.varint()?;
        let offset = if i > 0 && blob_delta == 0 {
            prev_offset + raw_off
        } else {
            raw_off
        };
        let len = cur.varint()? as u32;
        postings.push(Posting::new(blob, offset, len));
        prev_blob = blob;
        prev_offset = offset;
    }
    Ok(PostingsList::from_sorted_unique(postings))
}

// ---------------------------------------------------------------------------
// Bin pointers and the header block
// ---------------------------------------------------------------------------

/// Pointer to one superpost inside the compacted superpost blocks:
/// "each bin pointer need\[s\] to represent block ID, offset, and byte length
/// to retrieve the superpost's bytes in a single round-trip" (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinPointer {
    /// Superpost block id (blob index).
    pub block: u32,
    /// Byte offset within the block.
    pub offset: u64,
    /// Byte length of the serialized superpost.
    pub len: u32,
}

impl BinPointer {
    /// Construct a pointer.
    pub fn new(block: u32, offset: u64, len: u32) -> Self {
        BinPointer { block, offset, len }
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        put_varint(buf, self.block as u64);
        put_varint(buf, self.offset);
        put_varint(buf, self.len as u64);
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Self> {
        Ok(BinPointer {
            block: cur.varint()? as u32,
            offset: cur.varint()?,
            len: cur.varint()? as u32,
        })
    }
}

/// The persistent header block: everything the Searcher needs to
/// reconstruct the MHT — structure, hash seeds, bin pointers, the exact
/// common-word dictionary, the string table, and free-form metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderBlock {
    /// Sketch structure.
    pub config: SketchConfig,
    /// Per-layer hash seeds.
    pub seeds: Vec<LayerSeed>,
    /// Blob-name interning table.
    pub string_table: StringTable,
    /// Bin pointers, layer-major: `pointers[layer][bin]`.
    pub pointers: Vec<Vec<BinPointer>>,
    /// Exact common-word dictionary: word → pointer to its postings list.
    pub common: Vec<(String, BinPointer)>,
    /// Free-form metadata (e.g. accuracy constraint, corpus name).
    pub meta: Vec<(String, String)>,
}

const MAGIC: &[u8; 4] = b"AIRP";
const VERSION: u64 = 1;

impl HeaderBlock {
    /// Serialize the header to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(64 + self.pointers.iter().map(|l| l.len() * 6).sum::<usize>());
        buf.put_slice(MAGIC);
        put_varint(&mut buf, VERSION);
        put_varint(&mut buf, self.config.total_bins as u64);
        put_varint(&mut buf, self.config.layers as u64);
        put_f64(&mut buf, self.config.common_fraction);
        put_varint(&mut buf, self.seeds.len() as u64);
        for s in &self.seeds {
            put_varint(&mut buf, s.a);
            put_varint(&mut buf, s.b);
        }
        self.string_table.encode_into(&mut buf);
        put_varint(&mut buf, self.pointers.len() as u64);
        for layer in &self.pointers {
            put_varint(&mut buf, layer.len() as u64);
            for p in layer {
                p.encode_into(&mut buf);
            }
        }
        put_varint(&mut buf, self.common.len() as u64);
        for (word, ptr) in &self.common {
            put_string(&mut buf, word);
            ptr.encode_into(&mut buf);
        }
        put_varint(&mut buf, self.meta.len() as u64);
        for (k, v) in &self.meta {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }
        buf.freeze()
    }

    /// Deserialize a header produced by [`HeaderBlock::encode`].
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(data);
        let magic = cur.bytes(4)?;
        if magic != MAGIC {
            return Err(SketchError::Corrupt {
                detail: "bad magic".into(),
            });
        }
        let version = cur.varint()?;
        if version != VERSION {
            return Err(SketchError::Corrupt {
                detail: format!("unsupported header version {version}"),
            });
        }
        let total_bins = cur.varint()? as usize;
        let layers = cur.varint()? as usize;
        let common_fraction = cur.f64()?;
        let config = SketchConfig {
            total_bins,
            layers,
            common_fraction,
        };
        let n_seeds = cur.varint()? as usize;
        if n_seeds != layers {
            return Err(SketchError::Corrupt {
                detail: format!("{n_seeds} seeds for {layers} layers"),
            });
        }
        let mut seeds = Vec::with_capacity(n_seeds);
        for _ in 0..n_seeds {
            seeds.push(LayerSeed {
                a: cur.varint()?,
                b: cur.varint()?,
            });
        }
        let string_table = StringTable::decode_from(&mut cur)?;
        let n_layers = cur.varint()? as usize;
        if n_layers != layers {
            return Err(SketchError::Corrupt {
                detail: format!("{n_layers} pointer layers for {layers} layers"),
            });
        }
        let mut pointers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let n_bins = cur.varint()? as usize;
            let mut layer = Vec::with_capacity(n_bins);
            for _ in 0..n_bins {
                layer.push(BinPointer::decode_from(&mut cur)?);
            }
            pointers.push(layer);
        }
        let n_common = cur.varint()? as usize;
        let mut common = Vec::with_capacity(n_common);
        for _ in 0..n_common {
            let word = cur.string()?;
            let ptr = BinPointer::decode_from(&mut cur)?;
            common.push((word, ptr));
        }
        let n_meta = cur.varint()? as usize;
        let mut meta = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            let k = cur.string()?;
            let v = cur.string()?;
            meta.push((k, v));
        }
        if !cur.is_exhausted() {
            return Err(SketchError::Corrupt {
                detail: format!("{} trailing bytes after header", cur.remaining()),
            });
        }
        Ok(HeaderBlock {
            config,
            seeds,
            string_table,
            pointers,
            common,
            meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            assert!(cur.is_exhausted());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1_000_000);
        let mut cur = Cursor::new(&buf[..1]);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn varint_overlong_errors() {
        let overlong = [0x80u8; 11];
        let mut cur = Cursor::new(&overlong);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "héllo wörld");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.string().unwrap(), "héllo wörld");
    }

    #[test]
    fn string_invalid_utf8_errors() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(&buf);
        assert!(cur.string().is_err());
    }

    #[test]
    fn string_table_interning() {
        let mut t = StringTable::new();
        let a = t.intern("logs/part-0");
        let b = t.intern("logs/part-1");
        let a2 = t.intern("logs/part-0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), Some("logs/part-0"));
        assert_eq!(t.id_of("logs/part-1"), Some(b));
        assert_eq!(t.name(99), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn superpost_roundtrip_multi_blob() {
        let list = PostingsList::from_postings(vec![
            Posting::new(0, 0, 120),
            Posting::new(0, 120, 80),
            Posting::new(0, 200, 4_000),
            Posting::new(2, 64, 128),
            Posting::new(2, 1 << 40, 17),
        ]);
        let enc = encode_superpost(&list);
        let dec = decode_superpost(&enc).unwrap();
        assert_eq!(dec, list);
    }

    #[test]
    fn superpost_empty_roundtrip() {
        let enc = encode_superpost(&PostingsList::new());
        assert_eq!(enc.len(), 1); // just the zero count
        assert_eq!(decode_superpost(&enc).unwrap(), PostingsList::new());
    }

    #[test]
    fn superpost_delta_encoding_is_compact() {
        // Consecutive documents in one blob should cost ~3 bytes each, far
        // below the 13+ bytes of a raw (u32, u64, u32) encoding.
        let postings: Vec<Posting> = (0..1_000).map(|i| Posting::new(0, i * 100, 100)).collect();
        let list = PostingsList::from_sorted_unique(postings);
        let enc = encode_superpost(&list);
        assert!(
            enc.len() < 1_000 * 5,
            "encoding too large: {} bytes for 1000 postings",
            enc.len()
        );
    }

    #[test]
    fn superpost_trailing_garbage_errors() {
        let list = PostingsList::from_doc_ids(&[1, 2, 3]);
        let mut enc = BytesMut::from(&encode_superpost(&list)[..]);
        enc.put_u8(0x00);
        assert!(decode_superpost(&enc).is_err());
    }

    #[test]
    fn superpost_truncated_errors() {
        let list = PostingsList::from_doc_ids(&[1, 2, 3]);
        let enc = encode_superpost(&list);
        assert!(decode_superpost(&enc[..enc.len() - 1]).is_err());
    }

    fn sample_header() -> HeaderBlock {
        let mut st = StringTable::new();
        st.intern("corpus/blob-0");
        st.intern("corpus/blob-1");
        HeaderBlock {
            config: SketchConfig {
                total_bins: 100,
                layers: 2,
                common_fraction: 0.01,
            },
            seeds: vec![LayerSeed { a: 7, b: 13 }, LayerSeed { a: 99, b: 0 }],
            string_table: st,
            pointers: vec![
                (0..49).map(|i| BinPointer::new(0, i * 10, 10)).collect(),
                (0..49).map(|i| BinPointer::new(1, i * 20, 20)).collect(),
            ],
            common: vec![("the".into(), BinPointer::new(0, 490, 1_000))],
            meta: vec![
                ("f0".into(), "1.0".into()),
                ("corpus".into(), "test".into()),
            ],
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let enc = h.encode();
        let dec = HeaderBlock::decode(&enc).unwrap();
        assert_eq!(dec, h);
    }

    #[test]
    fn header_bad_magic_errors() {
        let h = sample_header();
        let mut enc = h.encode().to_vec();
        enc[0] = b'X';
        assert!(matches!(
            HeaderBlock::decode(&enc),
            Err(SketchError::Corrupt { .. })
        ));
    }

    #[test]
    fn header_truncation_errors() {
        let enc = sample_header().encode();
        for cut in [3, 10, enc.len() / 2, enc.len() - 1] {
            assert!(
                HeaderBlock::decode(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn header_seed_layer_mismatch_errors() {
        let mut h = sample_header();
        h.seeds.pop();
        let enc = h.encode();
        assert!(HeaderBlock::decode(&enc).is_err());
    }

    #[test]
    fn header_size_is_small_for_paper_config() {
        // §V-A0c: B = 1e5 bins → "runtime size about 2 MB". Each pointer
        // costs ≲ 12 varint bytes; the full header must stay in the
        // low-megabyte range.
        let pointers: Vec<Vec<BinPointer>> = vec![(0..99_000u64)
            .map(|i| BinPointer::new(0, i * 50, 50))
            .collect()];
        let h = HeaderBlock {
            config: SketchConfig {
                total_bins: 100_000,
                layers: 1,
                common_fraction: 0.01,
            },
            seeds: vec![LayerSeed { a: 1, b: 2 }],
            string_table: StringTable::new(),
            pointers,
            common: Vec::new(),
            meta: Vec::new(),
        };
        let enc = h.encode();
        assert!(
            enc.len() < 2 * 1024 * 1024,
            "header is {} bytes, expected < 2MB",
            enc.len()
        );
    }
}
