//! # iou-sketch
//!
//! The **IoU Sketch** (Intersection-of-Unions Sketch) — the statistical
//! inverted index at the core of Airphant (ICDE 2022, §IV).
//!
//! An IoU Sketch is an `L`-layer hash table with `L` independent hash
//! functions over a budget of `B` bins total. Inserting a word unions its
//! postings list into one bin per layer; that bin's content is a *super
//! postings list* (superpost). Querying a word fetches its `L` superposts —
//! **in a single batch of concurrent requests** when the superposts live in
//! cloud storage — and intersects them. Every relevant posting survives the
//! intersection (no false negatives); irrelevant postings survive only if
//! they collide in *all* `L` layers, so false positives decay exponentially
//! with `L` (Equation 1 of the paper).
//!
//! This crate provides:
//!
//! * [`Posting`], [`PostingsList`] — `(blob, offset, len)` document
//!   references with sorted-set union/intersection ([`postings`]).
//! * [`HashFamily`] — seeded pairwise-independent hashing ([`hash`]).
//! * [`SketchBuilder`] / [`InMemorySketch`] — construction and in-memory
//!   querying ([`sketch`]).
//! * [`Mht`] + [`HeaderBlock`] — the multilayer hash table of bin pointers
//!   and its persistent header encoding ([`mht`], [`encoding`]).
//! * [`analysis`] — expected-false-positive formulas `q_i(L)`, `F(L)` and
//!   their approximations (Equations 1–3, Lemmas 1–3).
//! * [`optimizer`] — Algorithm 1: minimize the number of layers subject to
//!   a bin budget `B` and accuracy constraint `F0`.
//! * [`topk`] — the top-K sampling bound `R_K` (Equation 6).
//! * [`hoeffding`] — the concentration bound on observed false positives
//!   (Equation 5) and the corpus coefficient `σ_X` of Table II.
//! * [`common`] — exact postings for the most common words (§IV-E).
//!
//! ## Example
//!
//! ```
//! use iou_sketch::{SketchBuilder, SketchConfig, PostingsList, Posting};
//!
//! // 3 layers over 64 bins, no common-word bins.
//! let config = SketchConfig::new(64, 3).with_common_fraction(0.0);
//! let mut builder = SketchBuilder::new(config, 42);
//! builder.insert("hello", &PostingsList::from_doc_ids(&[1, 2]));
//! builder.insert("world", &PostingsList::from_doc_ids(&[1]));
//! builder.insert("airphant", &PostingsList::from_doc_ids(&[2, 3]));
//! let sketch = builder.freeze();
//!
//! let result = sketch.query("airphant");
//! // No false negatives, ever:
//! assert!(result.contains(&Posting::from_doc_id(2)));
//! assert!(result.contains(&Posting::from_doc_id(3)));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod common;
pub mod encoding;
pub mod error;
pub mod hash;
pub mod hoeffding;
pub mod levenshtein;
pub mod mht;
pub mod optimizer;
pub mod postings;
pub mod sketch;
pub mod topk;
pub mod vocab;

pub use analysis::{CorpusShape, FalsePositiveModel};
pub use common::CommonWords;
pub use encoding::{
    intersect_views, BinPointer, ByteClass, FormatVersion, HeaderBlock, HeaderView, LayerDirectory,
    SectionInfo, SectionKind, SegmentFormat, SuperpostView,
};
pub use error::SketchError;
pub use hash::{HashFamily, LayerSeed};
pub use levenshtein::{levenshtein_within, LevenshteinAutomaton};
pub use mht::Mht;
pub use optimizer::{optimize_layers, OptimizeOutcome, RejectReason};
pub use postings::{Posting, PostingsList};
pub use sketch::{InMemorySketch, SketchBuilder, SketchConfig};
pub use topk::sample_size_for_top_k;
pub use vocab::Vocabulary;

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, SketchError>;
