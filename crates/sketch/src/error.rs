//! Error type for sketch construction, encoding, and optimization.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// Configuration is structurally invalid (e.g. zero bins or layers).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A serialized structure failed to decode.
    Corrupt {
        /// What failed and where.
        detail: String,
    },
    /// Algorithm 1 rejected the `(B, F0)` constraint pair as infeasible.
    Infeasible {
        /// The lower bound on achievable expected false positives.
        lower_bound: f64,
        /// The requested constraint.
        requested: f64,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SketchError::Corrupt { detail } => write!(f, "corrupt encoding: {detail}"),
            SketchError::Infeasible {
                lower_bound,
                requested,
            } => write!(
                f,
                "infeasible constraint: requested F0={requested} but the lower bound is {lower_bound}"
            ),
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SketchError::InvalidConfig {
            reason: "B=0".into()
        }
        .to_string()
        .contains("B=0"));
        assert!(SketchError::Corrupt {
            detail: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
        let e = SketchError::Infeasible {
            lower_bound: 2.5,
            requested: 0.1,
        };
        assert!(e.to_string().contains("2.5"));
    }
}
