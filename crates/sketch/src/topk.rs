//! Top-K query sampling (§IV-D, Equation 6).
//!
//! Instead of retrieving every document referenced by the final postings
//! list, the Searcher may fetch a sampled subset guaranteed (with
//! probability ≥ 1 − δ) to contain at least `K` relevant documents. With a
//! superpost of `R` postings of which at most `F0` are false positives in
//! expectation, each posting is relevant with probability
//! `p = 1 − F0/R`; Hoeffding's inequality then yields the required sample
//! size `R_K` of Equation 6.

/// Compute the sample size `R_K` of Equation 6.
///
/// * `k` — number of relevant documents required.
/// * `r` — size of the final postings list (superpost intersection).
/// * `f0` — expected number of false positives in the list.
/// * `delta` — acceptable failure probability.
///
/// Returns the number of postings to fetch (≤ `r`). If `k ≥ r − f0` the
/// whole list must be fetched.
pub fn sample_size_for_top_k(k: usize, r: usize, f0: f64, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if r == 0 {
        return 0;
    }
    let (kf, rf) = (k as f64, r as f64);
    if kf >= rf - f0 {
        return r; // fetch everything
    }
    let p = 1.0 - f0 / rf;
    if p <= 0.0 {
        return r;
    }
    let half_log = 0.5 * (1.0 / delta).ln();
    let a = 2.0 * p * kf + half_log;
    let disc = (a * a - 4.0 * p * p * kf * kf).max(0.0);
    let rk = ((a + disc.sqrt()) / (2.0 * p * p)).ceil() as usize;
    rk.clamp(k, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_23_samples_for_top_10() {
        // §V-A0c: with δ = 1e-6 and K = 10 the "conservative setting …
        // selects about 23 samples to answer top-10 query".
        // (p ≈ 1 with F0 = 1 and a large R.)
        let rk = sample_size_for_top_k(10, 10_000, 1.0, 1e-6);
        assert!((21..=25).contains(&rk), "expected ≈23 samples, got {rk}");
    }

    #[test]
    fn fetch_all_when_k_close_to_r() {
        // K ≥ R − F0 → fetch all R.
        assert_eq!(sample_size_for_top_k(10, 10, 1.0, 1e-6), 10);
        assert_eq!(sample_size_for_top_k(9, 10, 1.0, 1e-6), 10);
        assert_eq!(sample_size_for_top_k(100, 50, 0.0, 1e-6), 50);
    }

    #[test]
    fn sample_never_below_k_nor_above_r() {
        for k in [1usize, 5, 20] {
            for r in [30usize, 100, 100_000] {
                for f0 in [0.0, 1.0, 10.0] {
                    let rk = sample_size_for_top_k(k, r, f0, 1e-6);
                    assert!(rk >= k.min(r), "k={k} r={r} f0={f0} rk={rk}");
                    assert!(rk <= r, "k={k} r={r} f0={f0} rk={rk}");
                }
            }
        }
    }

    #[test]
    fn smaller_delta_needs_more_samples() {
        let loose = sample_size_for_top_k(10, 100_000, 1.0, 1e-2);
        let tight = sample_size_for_top_k(10, 100_000, 1.0, 1e-9);
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn more_false_positives_need_more_samples() {
        let clean = sample_size_for_top_k(10, 1_000, 0.5, 1e-6);
        let dirty = sample_size_for_top_k(10, 1_000, 200.0, 1e-6);
        assert!(dirty > clean, "dirty={dirty} clean={clean}");
    }

    #[test]
    fn zero_r_is_zero() {
        assert_eq!(sample_size_for_top_k(10, 0, 1.0, 1e-6), 0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        sample_size_for_top_k(10, 100, 1.0, 0.0);
    }
}
