//! The index vocabulary and its suffix array.
//!
//! The IoU sketch never stores the words it hashed, so exact-term lookups
//! are all it can answer. A [`Vocabulary`] closes that gap: the sorted,
//! deduplicated term list is serialized alongside the header (an
//! Index-class v2 section, so the tiered cache pins it), plus a suffix
//! array over the `\0`-joined term text. Three lookups come out of it:
//!
//! * **prefix** — binary search over the sorted terms, `O(m log V)`;
//! * **infix** — binary search over the suffix array, `O(m log N)` with
//!   `N` the total vocabulary bytes (the short-substring fallback);
//! * **fuzzy** — a Levenshtein-automaton walk over the sorted terms that
//!   shares DP rows between terms with a common prefix and prunes dead
//!   subtrees.
//!
//! Construction is deterministic and seed-independent: sorting and
//! prefix-doubling only, no hashing.

use crate::encoding::{put_varint, Cursor};
use crate::error::SketchError;
use crate::levenshtein::LevenshteinAutomaton;
use crate::Result;
use bytes::BytesMut;

/// Separator byte between terms in the concatenated suffix-array text.
const SEP: u8 = 0;

/// The sorted vocabulary of one segment plus its suffix array.
#[derive(Debug, Clone, PartialEq)]
pub struct Vocabulary {
    /// Sorted, strictly-deduplicated terms.
    terms: Vec<String>,
    /// Terms joined with `\0` (no trailing separator).
    text: Vec<u8>,
    /// Byte offset in `text` where each term starts.
    starts: Vec<u32>,
    /// Suffix array over `text`: byte positions sorted by suffix.
    sa: Vec<u32>,
}

impl Vocabulary {
    /// Build a vocabulary from sorted, strictly-ascending terms.
    pub fn build(terms: Vec<String>) -> Result<Self> {
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SketchError::InvalidConfig {
                reason: "vocabulary terms must be sorted and distinct".into(),
            });
        }
        let (text, starts) = join_terms(&terms);
        let sa = build_suffix_array(&text);
        Ok(Vocabulary {
            terms,
            text,
            starts,
            sa,
        })
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The sorted terms.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// All terms starting with `prefix` — the contiguous run of the sorted
    /// term list found by binary search, `O(m log V)`.
    pub fn prefix_matches(&self, prefix: &str) -> &[String] {
        let lo = self.terms.partition_point(|t| t.as_str() < prefix);
        let hi = lo + self.terms[lo..].partition_point(|t| t.starts_with(prefix));
        &self.terms[lo..hi]
    }

    /// All terms containing `pattern` as a substring, in sorted order.
    /// Candidate positions come from one suffix-array range query,
    /// `O(m log N)`; each candidate is verified against its term so
    /// matches spanning a term separator never leak through.
    pub fn containing(&self, pattern: &str) -> Vec<&str> {
        if pattern.is_empty() {
            return self.terms.iter().map(String::as_str).collect();
        }
        let pat = pattern.as_bytes();
        let lo = self.sa.partition_point(|&p| &self.text[p as usize..] < pat);
        let hi = lo + self.sa[lo..].partition_point(|&p| self.text[p as usize..].starts_with(pat));
        let mut idxs: Vec<usize> = self.sa[lo..hi]
            .iter()
            .map(|&p| self.term_of_position(p as usize))
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        idxs.into_iter()
            .map(|i| self.terms[i].as_str())
            .filter(|t| t.contains(pattern))
            .collect()
    }

    /// All terms within `max_edits` Levenshtein distance of `target`, in
    /// sorted order: an automaton walk over the sorted terms sharing DP
    /// rows across common prefixes.
    pub fn fuzzy_matches(&self, target: &str, max_edits: u32) -> Vec<&str> {
        let aut = LevenshteinAutomaton::new(target, max_edits);
        let mut out = Vec::new();
        let mut rows = vec![aut.start()];
        let mut prev: Vec<char> = Vec::new();
        for term in &self.terms {
            let chars: Vec<char> = term.chars().collect();
            let shared = prev.iter().zip(&chars).take_while(|(a, b)| a == b).count();
            rows.truncate(shared + 1);
            prev = chars;
            // Fewer live rows than the shared prefix means the shared part
            // already exhausted the budget — every extension is dead too.
            let live = rows.len() - 1;
            if live < shared {
                continue;
            }
            let mut dead = false;
            for &c in &prev[live..] {
                let next = aut.step(rows.last().expect("rows nonempty"), c);
                if !aut.can_match(&next) {
                    dead = true;
                    break;
                }
                rows.push(next);
            }
            if !dead && rows.len() == prev.len() + 1 && aut.is_match(rows.last().expect("rows")) {
                out.push(term.as_str());
            }
        }
        out
    }

    /// Rough resident size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.terms.iter().map(|t| t.len() + 24).sum::<usize>()
            + self.text.len()
            + 4 * (self.starts.len() + self.sa.len())
    }

    /// Serialize: term list then the suffix array, all varints.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        put_varint(buf, self.terms.len() as u64);
        for t in &self.terms {
            put_varint(buf, t.len() as u64);
            buf.extend_from_slice(t.as_bytes());
        }
        put_varint(buf, self.sa.len() as u64);
        for &p in &self.sa {
            put_varint(buf, p as u64);
        }
    }

    /// Deserialize and validate. The term list must be sorted and
    /// distinct; the suffix array must be a permutation of the rebuilt
    /// text's positions. Any violation is a typed [`SketchError::Corrupt`]
    /// — lookups on a decoded vocabulary are bounds-safe by construction.
    pub fn decode_from(cur: &mut Cursor<'_>) -> Result<Self> {
        let corrupt = |detail: String| SketchError::Corrupt { detail };
        let n_terms = cur.varint()? as usize;
        if n_terms > cur.remaining() {
            return Err(corrupt(format!(
                "vocab term count {n_terms} exceeds remaining bytes"
            )));
        }
        let mut terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let len = cur.varint()? as usize;
            let bytes = cur.bytes(len)?;
            let term = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("vocab term is not valid UTF-8".into()))?
                .to_owned();
            if let Some(last) = terms.last() {
                if *last >= term {
                    return Err(corrupt("vocab terms not sorted/distinct".into()));
                }
            }
            terms.push(term);
        }
        let (text, starts) = join_terms(&terms);
        let sa_len = cur.varint()? as usize;
        if sa_len != text.len() {
            return Err(corrupt(format!(
                "suffix array has {sa_len} entries for {} text bytes",
                text.len()
            )));
        }
        let mut seen = vec![false; text.len()];
        let mut sa = Vec::with_capacity(sa_len);
        for _ in 0..sa_len {
            let p = cur.varint()? as usize;
            if p >= text.len() || seen[p] {
                return Err(corrupt("suffix array is not a permutation".into()));
            }
            seen[p] = true;
            sa.push(p as u32);
        }
        Ok(Vocabulary {
            terms,
            text,
            starts,
            sa,
        })
    }

    /// Index of the term whose bytes contain text position `pos`.
    fn term_of_position(&self, pos: usize) -> usize {
        self.starts.partition_point(|&s| s as usize <= pos) - 1
    }
}

/// Join terms with the separator; return the text and per-term starts.
fn join_terms(terms: &[String]) -> (Vec<u8>, Vec<u32>) {
    let total: usize = terms.iter().map(|t| t.len() + 1).sum();
    let mut text = Vec::with_capacity(total.saturating_sub(1));
    let mut starts = Vec::with_capacity(terms.len());
    for (i, t) in terms.iter().enumerate() {
        if i > 0 {
            text.push(SEP);
        }
        starts.push(text.len() as u32);
        text.extend_from_slice(t.as_bytes());
    }
    (text, starts)
}

/// Deterministic suffix array by prefix doubling, `O(N log^2 N)`.
fn build_suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    if n <= 1 {
        return sa;
    }
    let mut rank: Vec<i64> = text.iter().map(|&b| b as i64).collect();
    let mut tmp = vec![0i64; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (i64, i64) {
            let i = i as usize;
            (rank[i], if i + k < n { rank[i + k] } else { -1 })
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let bump = i64::from(key(sa[w]) != key(sa[w - 1]));
            tmp[sa[w] as usize] = tmp[sa[w - 1] as usize] + bump;
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            return sa;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab(words: &[&str]) -> Vocabulary {
        let mut terms: Vec<String> = words.iter().map(|w| (*w).to_owned()).collect();
        terms.sort();
        terms.dedup();
        Vocabulary::build(terms).unwrap()
    }

    #[test]
    fn build_rejects_unsorted_and_duplicates() {
        assert!(Vocabulary::build(vec!["b".into(), "a".into()]).is_err());
        assert!(Vocabulary::build(vec!["a".into(), "a".into()]).is_err());
        assert!(Vocabulary::build(vec![]).unwrap().is_empty());
    }

    #[test]
    fn suffix_array_is_sorted_suffix_order() {
        let v = vocab(&["banana", "band", "can"]);
        for w in v.sa.windows(2) {
            assert!(v.text[w[0] as usize..] < v.text[w[1] as usize..]);
        }
        assert_eq!(v.sa.len(), v.text.len());
    }

    #[test]
    fn prefix_matches_are_the_sorted_run() {
        let v = vocab(&["type", "typo", "typeahead", "tyre", "ulcer"]);
        let m: Vec<&str> = v.prefix_matches("typ").iter().map(String::as_str).collect();
        assert_eq!(m, vec!["type", "typeahead", "typo"]);
        assert!(v.prefix_matches("zz").is_empty());
        assert_eq!(
            v.prefix_matches("").len(),
            5,
            "empty prefix matches everything"
        );
    }

    #[test]
    fn containing_finds_infixes_and_never_spans_terms() {
        let v = vocab(&["abxy", "xyab", "zab"]);
        assert_eq!(v.containing("ab"), vec!["abxy", "xyab", "zab"]);
        assert_eq!(v.containing("xy"), vec!["abxy", "xyab"]);
        // "yz" occurs only across the \0 joint between terms.
        assert!(v.containing("yz").is_empty());
        assert!(v.containing("nope").is_empty());
        assert_eq!(v.containing("").len(), 3);
    }

    #[test]
    fn containing_agrees_with_linear_scan() {
        let words: Vec<String> = (0..60).map(|i| format!("w{}x{}", i % 7, i)).collect();
        let mut sorted = words.clone();
        sorted.sort();
        sorted.dedup();
        let v = Vocabulary::build(sorted.clone()).unwrap();
        for pat in ["w1", "x3", "1x", "w", "x59", "zz"] {
            let expect: Vec<&str> = sorted
                .iter()
                .filter(|t| t.contains(pat))
                .map(String::as_str)
                .collect();
            assert_eq!(v.containing(pat), expect, "pattern {pat:?}");
        }
    }

    #[test]
    fn fuzzy_matches_agree_with_pairwise_distance() {
        use crate::levenshtein::levenshtein_within;
        let words = [
            "disk", "disc", "dusk", "desk", "risk", "daisy", "disks", "network",
        ];
        let v = vocab(&words);
        for target in ["disk", "dis", "network", "nope", ""] {
            for k in 0..3u32 {
                let expect: Vec<&str> = v
                    .terms()
                    .iter()
                    .filter(|t| levenshtein_within(target, t, k))
                    .map(String::as_str)
                    .collect();
                assert_eq!(v.fuzzy_matches(target, k), expect, "{target:?} k={k}");
            }
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let v = vocab(&["alpha", "beta", "gamma", "delta"]);
        let mut buf = BytesMut::new();
        v.encode_into(&mut buf);
        let mut cur = Cursor::new(&buf);
        let back = Vocabulary::decode_from(&mut cur).unwrap();
        assert!(cur.is_exhausted());
        assert_eq!(back, v);
    }

    #[test]
    fn decode_rejects_corruption() {
        let v = vocab(&["aa", "bb", "cc"]);
        let mut buf = BytesMut::new();
        v.encode_into(&mut buf);
        let blob = buf.freeze();
        // Every truncation is a typed error.
        for cut in 0..blob.len() {
            let mut cur = Cursor::new(&blob[..cut]);
            let r = Vocabulary::decode_from(&mut cur).and_then(|_| {
                if cur.is_exhausted() {
                    Ok(())
                } else {
                    Err(SketchError::Corrupt {
                        detail: "trailing".into(),
                    })
                }
            });
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
        // Unsorted terms are rejected.
        let mut bad = BytesMut::new();
        put_varint(&mut bad, 2);
        put_varint(&mut bad, 1);
        bad.extend_from_slice(b"b");
        put_varint(&mut bad, 1);
        bad.extend_from_slice(b"a");
        put_varint(&mut bad, 3);
        for p in [0u64, 1, 2] {
            put_varint(&mut bad, p);
        }
        assert!(Vocabulary::decode_from(&mut Cursor::new(&bad)).is_err());
    }

    #[test]
    fn empty_vocab_roundtrips_and_answers() {
        let v = Vocabulary::build(vec![]).unwrap();
        assert!(v.prefix_matches("x").is_empty());
        assert!(v.containing("x").is_empty());
        assert!(v.fuzzy_matches("x", 2).is_empty());
        let mut buf = BytesMut::new();
        v.encode_into(&mut buf);
        let back = Vocabulary::decode_from(&mut Cursor::new(&buf)).unwrap();
        assert!(back.is_empty());
    }
}
