//! Postings and postings lists.
//!
//! "In each posting, Airphant records (blob name, offset, length) as part of
//! a document identifier" (§III-A). Blob names are interned into `u32` ids by
//! the string-compression table (§IV-C, [`crate::encoding`]); a posting is
//! therefore the triple `(blob, offset, len)`, which is enough to fetch the
//! document body with one ranged read.
//!
//! A [`PostingsList`] is a sorted, deduplicated set of postings. Superposts
//! are postings lists produced by unions; queries intersect `L` of them.

use serde::{Deserialize, Serialize};

/// A reference to one document: which blob it lives in and the byte range
/// of its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Posting {
    /// Interned blob id (index into the header's string table).
    pub blob: u32,
    /// Byte offset of the document inside the blob.
    pub offset: u64,
    /// Length of the document in bytes.
    pub len: u32,
}

impl Posting {
    /// Construct a posting.
    pub fn new(blob: u32, offset: u64, len: u32) -> Self {
        Posting { blob, offset, len }
    }

    /// A synthetic posting that stands for a bare document id — used by unit
    /// tests and the analytical experiments where byte ranges don't matter.
    pub fn from_doc_id(doc: u64) -> Self {
        Posting {
            blob: 0,
            offset: doc,
            len: 1,
        }
    }
}

/// A sorted, deduplicated list of [`Posting`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PostingsList {
    postings: Vec<Posting>,
}

impl PostingsList {
    /// The empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary postings: sorts and deduplicates.
    pub fn from_postings(mut postings: Vec<Posting>) -> Self {
        postings.sort_unstable();
        postings.dedup();
        PostingsList { postings }
    }

    /// Build from postings already sorted and unique (checked in debug).
    pub fn from_sorted_unique(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0] < w[1]));
        PostingsList { postings }
    }

    /// Build a synthetic list from bare document ids (test helper).
    pub fn from_doc_ids(ids: &[u64]) -> Self {
        Self::from_postings(ids.iter().map(|&d| Posting::from_doc_id(d)).collect())
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Slice of the underlying sorted postings.
    pub fn as_slice(&self) -> &[Posting] {
        &self.postings
    }

    /// Iterate over postings in order.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.postings.iter()
    }

    /// Membership test (binary search).
    pub fn contains(&self, p: &Posting) -> bool {
        self.postings.binary_search(p).is_ok()
    }

    /// Insert a single posting, keeping order and uniqueness.
    pub fn insert(&mut self, p: Posting) {
        if let Err(idx) = self.postings.binary_search(&p) {
            self.postings.insert(idx, p);
        }
    }

    /// In-place union with another list (sorted merge). This is the
    /// `insert(word, postings)` aggregation step of the sketch: a bin's
    /// superpost is the union of the postings lists of all words mapped to
    /// that bin.
    pub fn union_with(&mut self, other: &PostingsList) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.postings = other.postings.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.postings.len() + other.postings.len());
        let (a, b) = (&self.postings, &other.postings);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.postings = merged;
    }

    /// Union of two lists.
    pub fn union(&self, other: &PostingsList) -> PostingsList {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection of two sorted lists, galloping when the sizes are very
    /// lopsided (common when intersecting a rare word's superpost with a
    /// crowded bin).
    pub fn intersect(&self, other: &PostingsList) -> PostingsList {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return PostingsList::new();
        }
        // Galloping pays off when one side is much smaller.
        if large.len() / small.len().max(1) >= 16 {
            let mut out = Vec::with_capacity(small.len());
            let mut lo = 0usize;
            for p in &small.postings {
                match large.postings[lo..].binary_search(p) {
                    Ok(idx) => {
                        out.push(*p);
                        lo += idx + 1;
                    }
                    Err(idx) => lo += idx,
                }
                if lo >= large.postings.len() {
                    break;
                }
            }
            return PostingsList::from_sorted_unique(out);
        }
        let mut out = Vec::with_capacity(small.len());
        let (a, b) = (&small.postings, &large.postings);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PostingsList::from_sorted_unique(out)
    }

    /// K-way intersection: the `query(word)` aggregation of the sketch.
    /// Intersects smallest-first so intermediate results shrink fastest.
    pub fn intersect_all(lists: &[&PostingsList]) -> PostingsList {
        match lists.len() {
            0 => PostingsList::new(),
            1 => lists[0].clone(),
            _ => {
                let mut order: Vec<&PostingsList> = lists.to_vec();
                order.sort_by_key(|l| l.len());
                let mut acc = order[0].intersect(order[1]);
                for l in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(l);
                }
                acc
            }
        }
    }

    /// Serialized byte size estimate before encoding (used by compaction
    /// planning); actual sizes come from [`crate::encoding`].
    pub fn approx_bytes(&self) -> usize {
        // Worst-case varint widths: 5 + 10 + 5 bytes per posting.
        4 + self.len() * 20
    }
}

impl FromIterator<Posting> for PostingsList {
    fn from_iter<T: IntoIterator<Item = Posting>>(iter: T) -> Self {
        Self::from_postings(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a PostingsList {
    type Item = &'a Posting;
    type IntoIter = std::slice::Iter<'a, Posting>;
    fn into_iter(self) -> Self::IntoIter {
        self.postings.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(ids: &[u64]) -> PostingsList {
        PostingsList::from_doc_ids(ids)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let list = pl(&[5, 1, 3, 1, 5]);
        let ids: Vec<u64> = list.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn ordering_is_blob_then_offset() {
        let a = Posting::new(0, 100, 1);
        let b = Posting::new(1, 0, 1);
        assert!(a < b, "blob id dominates ordering");
    }

    #[test]
    fn union_merges_sorted() {
        let a = pl(&[1, 3, 5]);
        let b = pl(&[2, 3, 6]);
        let u = a.union(&b);
        let ids: Vec<u64> = u.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = pl(&[1, 2]);
        assert_eq!(a.union(&PostingsList::new()), a);
        assert_eq!(PostingsList::new().union(&a), a);
    }

    #[test]
    fn intersect_basic() {
        let a = pl(&[1, 2, 3, 4]);
        let b = pl(&[2, 4, 6]);
        let i = a.intersect(&b);
        let ids: Vec<u64> = i.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        assert!(pl(&[1, 3]).intersect(&pl(&[2, 4])).is_empty());
        assert!(pl(&[]).intersect(&pl(&[1])).is_empty());
    }

    #[test]
    fn galloping_matches_merge() {
        // One tiny list against one large list exercises the galloping path.
        let small = pl(&[100, 5_000, 99_999]);
        let large = pl(&(0..100_000).step_by(5).collect::<Vec<u64>>());
        let got = small.intersect(&large);
        let ids: Vec<u64> = got.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![100, 5_000]); // 99_999 % 5 != 0
    }

    #[test]
    fn intersect_all_smallest_first() {
        let a = pl(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = pl(&[2, 4, 6, 8]);
        let c = pl(&[4, 8]);
        let r = PostingsList::intersect_all(&[&a, &b, &c]);
        let ids: Vec<u64> = r.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![4, 8]);
    }

    #[test]
    fn intersect_all_edge_cases() {
        assert!(PostingsList::intersect_all(&[]).is_empty());
        let a = pl(&[1, 2]);
        assert_eq!(PostingsList::intersect_all(&[&a]), a);
    }

    #[test]
    fn figure4_worked_example() {
        // Figure 4 of the paper: querying w2 over the three superposts
        // yields {d2,d3,d4} ∩ {d2,d3,d4,d5} ∩ {d1,d2,d3,d4} = {d2,d3,d4},
        // containing the false positive d4.
        let sp1 = pl(&[2, 3, 4]);
        let sp2 = pl(&[2, 3, 4, 5]);
        let sp3 = pl(&[1, 2, 3, 4]);
        let q = PostingsList::intersect_all(&[&sp1, &sp2, &sp3]);
        assert_eq!(q, pl(&[2, 3, 4]));
        // w2's true postings list is {d2, d3}: d4 is a false positive, but
        // both true postings are present (no false negatives).
        assert!(q.contains(&Posting::from_doc_id(2)));
        assert!(q.contains(&Posting::from_doc_id(3)));
        assert!(q.contains(&Posting::from_doc_id(4)));
    }

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut l = pl(&[5]);
        l.insert(Posting::from_doc_id(1));
        l.insert(Posting::from_doc_id(5)); // duplicate
        l.insert(Posting::from_doc_id(9));
        let ids: Vec<u64> = l.iter().map(|p| p.offset).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn contains_uses_binary_search() {
        let l = pl(&[10, 20, 30]);
        assert!(l.contains(&Posting::from_doc_id(20)));
        assert!(!l.contains(&Posting::from_doc_id(25)));
    }
}
