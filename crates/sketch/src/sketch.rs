//! In-memory IoU Sketch: configuration, construction, querying.
//!
//! [`SketchBuilder`] implements the `insert(word, postings)` operation of
//! §IV-A: hash the word to one bin per layer and union its postings list
//! into each bin's superpost. [`InMemorySketch`] implements `query(word)`:
//! retrieve the `L` superposts and intersect them. The cloud-resident
//! variant (superposts on object storage, pointers in an [`crate::Mht`])
//! lives in the `airphant` crate; this in-memory form powers index
//! construction and the statistical experiments (Figures 5, 10a, 16a).

use crate::common::CommonWords;
use crate::error::SketchError;
use crate::hash::HashFamily;
use crate::postings::PostingsList;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Structural configuration of an IoU Sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Total bin budget `B` across all layers (including common-word bins).
    pub total_bins: usize,
    /// Number of layers `L`.
    pub layers: usize,
    /// Fraction of `B` set aside for exact common-word postings (§IV-E).
    /// The paper uses 1%.
    pub common_fraction: f64,
}

impl SketchConfig {
    /// Config with the paper's default 1% common-word allocation.
    pub fn new(total_bins: usize, layers: usize) -> Self {
        SketchConfig {
            total_bins,
            layers,
            common_fraction: 0.01,
        }
    }

    /// Override the common-word fraction (0 disables exact bins).
    pub fn with_common_fraction(mut self, fraction: f64) -> Self {
        self.common_fraction = fraction;
        self
    }

    /// Number of bins reserved for common words.
    pub fn common_bins(&self) -> usize {
        (self.total_bins as f64 * self.common_fraction).floor() as usize
    }

    /// Number of bins available to the sketch layers
    /// (`B − common_bins`, the paper's 99,000 of 100,000).
    pub fn sketch_bins(&self) -> usize {
        self.total_bins - self.common_bins()
    }

    /// Bins per layer (`sketch_bins / L`, at least 1).
    pub fn bins_per_layer(&self) -> usize {
        (self.sketch_bins() / self.layers).max(1)
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.layers == 0 {
            return Err(SketchError::InvalidConfig {
                reason: "layers must be >= 1".into(),
            });
        }
        if self.total_bins == 0 {
            return Err(SketchError::InvalidConfig {
                reason: "total_bins must be >= 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.common_fraction) {
            return Err(SketchError::InvalidConfig {
                reason: format!("common_fraction {} not in [0, 1)", self.common_fraction),
            });
        }
        if self.sketch_bins() < self.layers {
            return Err(SketchError::InvalidConfig {
                reason: format!(
                    "sketch bins ({}) fewer than layers ({})",
                    self.sketch_bins(),
                    self.layers
                ),
            });
        }
        Ok(())
    }
}

/// Accumulates insertions into layer bins, then freezes into a sketch.
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    config: SketchConfig,
    family: HashFamily,
    /// `bins[layer][bin]` is the superpost under construction.
    bins: Vec<Vec<PostingsList>>,
    common: CommonWords,
    words_inserted: u64,
}

impl SketchBuilder {
    /// Start building with the given structure; hash seeds derive from
    /// `seed` deterministically.
    pub fn new(config: SketchConfig, seed: u64) -> Self {
        config.validate().expect("invalid sketch config");
        let family = HashFamily::generate(config.layers, config.bins_per_layer(), seed);
        let bins = vec![vec![PostingsList::new(); config.bins_per_layer()]; config.layers];
        SketchBuilder {
            common: CommonWords::with_capacity(config.common_bins()),
            config,
            family,
            bins,
            words_inserted: 0,
        }
    }

    /// Designate the common-word set (selected from profiled document
    /// frequencies) before inserting. Words in this set bypass the sketch
    /// and keep exact postings.
    pub fn set_common_words(&mut self, common: CommonWords) {
        self.common = common;
    }

    /// The structural configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The hash family (e.g. to persist its seeds).
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// `insert(word, postings)` of §IV-A: for each layer, hash the word to
    /// its bin and union the postings into that bin's superpost. Common
    /// words go to exact storage instead.
    pub fn insert(&mut self, word: &str, postings: &PostingsList) {
        self.words_inserted += 1;
        if self.common.is_common(word) {
            self.common.insert(word, postings);
            return;
        }
        for layer in 0..self.config.layers {
            let bin = self.family.bin(layer, word);
            self.bins[layer][bin].union_with(postings);
        }
    }

    /// Insert with explicit bin choices, one per layer — the advanced API
    /// used by tests to reproduce worked examples (Figure 4) and by
    /// simulation studies exploring adversarial mappings.
    pub fn insert_at_bins(&mut self, bins: &[usize], postings: &PostingsList) {
        assert_eq!(bins.len(), self.config.layers, "one bin per layer");
        for (layer, &bin) in bins.iter().enumerate() {
            self.bins[layer][bin].union_with(postings);
        }
    }

    /// Number of `insert` calls so far.
    pub fn words_inserted(&self) -> u64 {
        self.words_inserted
    }

    /// Finish construction.
    pub fn freeze(self) -> InMemorySketch {
        InMemorySketch {
            config: self.config,
            family: self.family,
            bins: self.bins,
            common: self.common,
        }
    }
}

/// A frozen, queryable in-memory IoU Sketch.
#[derive(Debug, Clone)]
pub struct InMemorySketch {
    config: SketchConfig,
    family: HashFamily,
    bins: Vec<Vec<PostingsList>>,
    common: CommonWords,
}

impl InMemorySketch {
    /// The structural configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The hash family.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// The common-word registry.
    pub fn common(&self) -> &CommonWords {
        &self.common
    }

    /// The superpost stored at `(layer, bin)`.
    pub fn superpost(&self, layer: usize, bin: usize) -> &PostingsList {
        &self.bins[layer][bin]
    }

    /// All superposts of `word`, one per layer, in layer order.
    pub fn superposts_of(&self, word: &str) -> Vec<&PostingsList> {
        (0..self.config.layers)
            .map(|l| &self.bins[l][self.family.bin(l, word)])
            .collect()
    }

    /// `query(word)` of §IV-A: intersect the word's `L` superposts. Common
    /// words return their exact postings list.
    pub fn query(&self, word: &str) -> PostingsList {
        if let Some(exact) = self.common.get(word) {
            return exact.clone();
        }
        let sps = self.superposts_of(word);
        PostingsList::intersect_all(&sps)
    }

    /// Count of false positives a query for `word` would return, given the
    /// word's true postings list — the measurement behind Figures 5a, 10a,
    /// and 16a.
    pub fn false_positives(&self, word: &str, truth: &PostingsList) -> usize {
        let got = self.query(word);
        got.iter().filter(|p| !truth.contains(p)).count()
    }

    /// Decompose into `(config, family, layer bins, common words)` — used
    /// by the Airphant Builder to persist superposts and the MHT.
    pub fn into_parts(
        self,
    ) -> (
        SketchConfig,
        HashFamily,
        Vec<Vec<PostingsList>>,
        CommonWords,
    ) {
        (self.config, self.family, self.bins, self.common)
    }

    /// Total postings stored across all superposts (storage-size studies;
    /// each inserted posting appears in up to `L` bins, Figure 16d).
    pub fn stored_postings(&self) -> u64 {
        self.bins
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|sp| sp.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::Posting;

    #[test]
    fn config_bin_accounting_matches_paper_example() {
        // §IV-E: B = 1e5 → 99,000 sketch bins + 1,000 common-word bins.
        let c = SketchConfig::new(100_000, 2);
        assert_eq!(c.common_bins(), 1_000);
        assert_eq!(c.sketch_bins(), 99_000);
        assert_eq!(c.bins_per_layer(), 49_500);
    }

    #[test]
    fn config_validation_rejects_degenerate() {
        assert!(SketchConfig::new(0, 1).validate().is_err());
        assert!(SketchConfig::new(10, 0).validate().is_err());
        assert!(SketchConfig::new(4, 8).validate().is_err());
        let mut c = SketchConfig::new(100, 2);
        c.common_fraction = 1.5;
        assert!(c.validate().is_err());
        assert!(SketchConfig::new(100, 2).validate().is_ok());
    }

    #[test]
    fn no_false_negatives_ever() {
        let config = SketchConfig::new(32, 3).with_common_fraction(0.0);
        let mut b = SketchBuilder::new(config, 1);
        // Insert 200 words over 50 docs into a tiny sketch: collisions
        // guaranteed, but recall must stay perfect.
        let mut truths = Vec::new();
        for w in 0..200u64 {
            let docs: Vec<u64> = (0..5).map(|k| (w * 7 + k * 13) % 50).collect();
            let list = PostingsList::from_doc_ids(&docs);
            b.insert(&format!("word-{w}"), &list);
            truths.push(list);
        }
        let sketch = b.freeze();
        for (w, truth) in truths.iter().enumerate() {
            let got = sketch.query(&format!("word-{w}"));
            for p in truth.iter() {
                assert!(got.contains(p), "missing posting for word-{w}");
            }
        }
    }

    #[test]
    fn more_layers_reduce_false_positives() {
        // Fixed B, growing L: false positives should drop rapidly at first
        // (Figure 5 trend). We average over many query words.
        let n_words = 500u64;
        let n_docs = 200u64;
        let total_bins = 400;
        let mut fp_by_layers = Vec::new();
        for layers in [1usize, 2, 4] {
            let config = SketchConfig::new(total_bins, layers).with_common_fraction(0.0);
            let mut b = SketchBuilder::new(config, 42);
            let mut truths = Vec::new();
            for w in 0..n_words {
                let docs: Vec<u64> = (0..3).map(|k| (w * 11 + k * 29) % n_docs).collect();
                let list = PostingsList::from_doc_ids(&docs);
                b.insert(&format!("w{w}"), &list);
                truths.push(list);
            }
            let sketch = b.freeze();
            let total_fp: usize = (0..n_words)
                .map(|w| sketch.false_positives(&format!("w{w}"), &truths[w as usize]))
                .sum();
            fp_by_layers.push(total_fp as f64 / n_words as f64);
        }
        assert!(
            fp_by_layers[1] < fp_by_layers[0] / 2.0,
            "L=2 ({}) should more than halve L=1 ({})",
            fp_by_layers[1],
            fp_by_layers[0]
        );
        assert!(fp_by_layers[2] <= fp_by_layers[1]);
    }

    #[test]
    fn figure4_example_reproduced_with_explicit_bins() {
        // The paper's Figure 4: 4 words, 5 documents, 3 layers, bins per
        // layer: layer1 {w1}, {w2,w3}, {w4}; layer2 {w2,w4}, {w1,w3};
        // layer3 {w1,w2,w3}, {w4}.
        let config = SketchConfig {
            total_bins: 9,
            layers: 3,
            common_fraction: 0.0,
        };
        let mut b = SketchBuilder::new(config, 0);
        let w1 = PostingsList::from_doc_ids(&[1]);
        let w2 = PostingsList::from_doc_ids(&[2, 3]);
        let w3 = PostingsList::from_doc_ids(&[2, 3, 4]);
        let w4 = PostingsList::from_doc_ids(&[2, 3, 4, 5]);
        b.insert_at_bins(&[0, 1, 0], &w1);
        b.insert_at_bins(&[1, 0, 0], &w2);
        b.insert_at_bins(&[1, 1, 0], &w3);
        b.insert_at_bins(&[2, 0, 1], &w4);
        let s = b.freeze();
        // Querying w2's bins: layer1 bin1 = w2∪w3 = {2,3,4};
        // layer2 bin0 = w2∪w4 = {2,3,4,5}; layer3 bin0 = w1∪w2∪w3 = {1,2,3,4}.
        let sp_l1 = s.superpost(0, 1);
        let sp_l2 = s.superpost(1, 0);
        let sp_l3 = s.superpost(2, 0);
        assert_eq!(sp_l1, &PostingsList::from_doc_ids(&[2, 3, 4]));
        assert_eq!(sp_l2, &PostingsList::from_doc_ids(&[2, 3, 4, 5]));
        assert_eq!(sp_l3, &PostingsList::from_doc_ids(&[1, 2, 3, 4]));
        let q = PostingsList::intersect_all(&[sp_l1, sp_l2, sp_l3]);
        // {2,3,4}: one false positive (d4) relative to w2's truth {2,3}.
        assert_eq!(q, PostingsList::from_doc_ids(&[2, 3, 4]));
        // Querying w1's bins: layer1 bin0 = {1}; intersection = {1}, exact.
        let q1 =
            PostingsList::intersect_all(&[s.superpost(0, 0), s.superpost(1, 1), s.superpost(2, 0)]);
        assert_eq!(q1, PostingsList::from_doc_ids(&[1]));
    }

    #[test]
    fn common_words_bypass_sketch() {
        let config = SketchConfig::new(100, 2).with_common_fraction(0.05);
        let mut b = SketchBuilder::new(config, 9);
        b.set_common_words(CommonWords::select(vec![("the".to_string(), 1_000_000)], 5));
        let the_docs = PostingsList::from_doc_ids(&(0..500).collect::<Vec<u64>>());
        b.insert("the", &the_docs);
        b.insert("rare", &PostingsList::from_doc_ids(&[3]));
        let s = b.freeze();
        // Exact retrieval for "the".
        assert_eq!(s.query("the"), the_docs);
        // "the"'s 500 postings never polluted the sketch bins.
        assert!(s.stored_postings() <= 2, "sketch holds only 'rare'");
        // And "rare" still resolves.
        assert!(s.query("rare").contains(&Posting::from_doc_id(3)));
    }

    #[test]
    fn stored_postings_grow_with_layers() {
        // Each posting is replicated into L layers (Figure 16d's near-linear
        // storage growth).
        let count_for = |layers: usize| {
            let config = SketchConfig::new(1000, layers).with_common_fraction(0.0);
            let mut b = SketchBuilder::new(config, 5);
            // Disjoint doc ids per word: bin unions then never deduplicate,
            // so the stored count is exactly (postings x layers) regardless
            // of which words collide in a bin.
            for w in 0..100u64 {
                b.insert(
                    &format!("w{w}"),
                    &PostingsList::from_doc_ids(&[2 * w, 2 * w + 1]),
                );
            }
            b.freeze().stored_postings()
        };
        let one = count_for(1);
        let four = count_for(4);
        assert!(four > 3 * one, "4 layers should store ~4x the postings");
        assert!(four <= 4 * one, "cannot exceed exact replication");
    }

    #[test]
    fn query_unknown_word_returns_plausible_bin_intersection() {
        let config = SketchConfig::new(16, 2).with_common_fraction(0.0);
        let mut b = SketchBuilder::new(config, 3);
        b.insert("known", &PostingsList::from_doc_ids(&[1, 2, 3]));
        let s = b.freeze();
        // An un-inserted word maps to bins anyway; result may contain false
        // positives but must be a subset of each layer's superpost.
        let q = s.query("unknown");
        for p in q.iter() {
            for sp in s.superposts_of("unknown") {
                assert!(sp.contains(p));
            }
        }
    }

    #[test]
    fn builder_word_count_tracks_inserts() {
        let mut b = SketchBuilder::new(SketchConfig::new(64, 2), 1);
        b.insert("a", &PostingsList::from_doc_ids(&[1]));
        b.insert("b", &PostingsList::from_doc_ids(&[2]));
        assert_eq!(b.words_inserted(), 2);
    }
}
