//! Corrupt-input robustness sweep: decoding systematically damaged v1 and
//! v2 encodings — truncated at every byte offset, and with every single bit
//! flipped — must either succeed or return a typed [`SketchError`]. It must
//! never panic, overflow, or read out of bounds, in debug or release.

use bytes::Bytes;
use iou_sketch::encoding::{decode_superpost, encode_superpost};
use iou_sketch::{HeaderBlock, HeaderView, Posting, PostingsList, SuperpostView};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn sample_header() -> HeaderBlock {
    use iou_sketch::{BinPointer, SketchConfig};
    let mut st = iou_sketch::encoding::StringTable::new();
    st.intern("corpus/blob-0");
    st.intern("corpus/blob-1");
    HeaderBlock {
        config: SketchConfig {
            total_bins: 64,
            layers: 3,
            common_fraction: 0.01,
        },
        seeds: (0..3)
            .map(|i| iou_sketch::LayerSeed {
                a: 7 + i,
                b: 13 * i,
            })
            .collect(),
        string_table: st,
        pointers: (0..3)
            .map(|layer| {
                (0..21u64)
                    .map(|i| BinPointer::new(layer, i * 10, 10))
                    .collect()
            })
            .collect(),
        common: vec![
            ("the".into(), BinPointer::new(0, 210, 1_000)),
            ("a".into(), BinPointer::new(1, 210, 500)),
        ],
        meta: vec![
            ("f0".into(), "1.0".into()),
            ("corpus".into(), "sweep".into()),
        ],
        vocab: None,
    }
}

/// The same header carrying a vocabulary + suffix-array section.
fn sample_header_with_vocab() -> HeaderBlock {
    let mut h = sample_header();
    h.vocab = Some(
        iou_sketch::Vocabulary::build(vec![
            "a".into(),
            "alpha".into(),
            "beta".into(),
            "gamma".into(),
            "the".into(),
        ])
        .unwrap(),
    );
    h
}

fn sample_superpost() -> Bytes {
    encode_superpost(&PostingsList::from_postings(vec![
        Posting::new(0, 0, 120),
        Posting::new(0, 120, 80),
        Posting::new(0, 200, 4_000),
        Posting::new(2, 64, 128),
        Posting::new(2, 1 << 40, 17),
        Posting::new(7, 5, 1),
    ]))
}

/// Run `f` over the blob and require a non-panicking outcome.
fn must_not_panic(what: &str, blob: &[u8], f: impl Fn(&[u8]) -> bool) {
    let ok = catch_unwind(AssertUnwindSafe(|| f(blob)));
    assert!(ok.is_ok(), "{what}: decoder panicked");
}

/// Every truncation must fail (typed), every bit flip must not panic.
fn sweep(name: &str, blob: &[u8], decode: impl Fn(&[u8]) -> bool + Copy) {
    for cut in 0..blob.len() {
        let truncated = &blob[..cut];
        let outcome = catch_unwind(AssertUnwindSafe(|| decode(truncated)));
        match outcome {
            Ok(decoded) => assert!(!decoded, "{name}: truncation at {cut} decoded successfully"),
            Err(_) => panic!("{name}: truncation at {cut} panicked"),
        }
    }
    let mut flipped = blob.to_vec();
    for byte in 0..blob.len() {
        for bit in 0..8 {
            flipped[byte] ^= 1 << bit;
            must_not_panic(&format!("{name}: flip {byte}.{bit}"), &flipped, decode);
            flipped[byte] ^= 1 << bit;
        }
    }
}

#[test]
fn v1_header_sweep() {
    let blob = sample_header().encode();
    sweep("v1 header", &blob, |b| HeaderBlock::decode(b).is_ok());
}

#[test]
fn v2_header_sweep() {
    let blob = sample_header().encode_v2(&[64, 128, 256]);
    sweep("v2 header", &blob, |b| HeaderBlock::decode(b).is_ok());
}

#[test]
fn v2_header_view_sweep() {
    let blob = sample_header().encode_v2(&[64, 128]);
    sweep("v2 header view", &blob, |b| {
        match HeaderView::parse(Bytes::from(b.to_vec())) {
            // Materializing exercises the variable-width sections too.
            Ok(view) => view.to_header_block().is_ok(),
            Err(_) => false,
        }
    });
}

#[test]
fn v2_header_vocab_sweep() {
    let blob = sample_header_with_vocab().encode_v2(&[64, 128, 256]);
    sweep("v2 header + vocab", &blob, |b| {
        HeaderBlock::decode(b).is_ok()
    });
}

#[test]
fn v2_header_view_vocab_sweep() {
    let blob = sample_header_with_vocab().encode_v2(&[64]);
    sweep(
        "v2 header view + vocab",
        &blob,
        |b| match HeaderView::parse(Bytes::from(b.to_vec())) {
            Ok(view) => view.to_header_block().is_ok(),
            Err(_) => false,
        },
    );
}

/// Flips that survive vocab decoding must still produce a vocabulary whose
/// lookups are bounds-safe: prefix/infix/fuzzy probes never panic.
#[test]
fn surviving_vocab_flips_answer_safely() {
    let blob = sample_header_with_vocab().encode_v2(&[64]);
    let mut flipped = blob.to_vec();
    for byte in 0..blob.len() {
        for bit in 0..8 {
            flipped[byte] ^= 1 << bit;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Ok(h) = HeaderBlock::decode(&flipped) {
                    if let Some(v) = &h.vocab {
                        let _ = v.prefix_matches("al");
                        let _ = v.containing("et");
                        let _ = v.fuzzy_matches("beta", 1);
                    }
                }
            }));
            assert!(outcome.is_ok(), "flip {byte}.{bit}: vocab lookup panicked");
            flipped[byte] ^= 1 << bit;
        }
    }
}

#[test]
fn superpost_decode_sweep() {
    let blob = sample_superpost();
    sweep("superpost decode", &blob, |b| decode_superpost(b).is_ok());
}

#[test]
fn superpost_view_sweep() {
    let blob = sample_superpost();
    sweep("superpost view", &blob, |b| {
        match SuperpostView::parse(Bytes::from(b.to_vec())) {
            Ok(view) => {
                // Iterating a validated view must also be panic-free and
                // agree with the validated count.
                view.iter().count() == view.len()
            }
            Err(_) => false,
        }
    });
}

/// Flips that survive decoding must still produce structurally sound
/// output: decoded postings lists are sorted and unique.
#[test]
fn surviving_superpost_flips_decode_sorted() {
    let blob = sample_superpost();
    let mut flipped = blob.to_vec();
    for byte in 0..blob.len() {
        for bit in 0..8 {
            flipped[byte] ^= 1 << bit;
            if let Ok(list) = decode_superpost(&flipped) {
                let s = list.as_slice();
                assert!(
                    s.windows(2).all(|w| w[0] < w[1]),
                    "flip {byte}.{bit} decoded an unsorted list"
                );
            }
            flipped[byte] ^= 1 << bit;
        }
    }
}
