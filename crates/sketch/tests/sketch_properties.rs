//! Property tests for the IoU Sketch analysis and optimizer: probability
//! bounds, monotonicities, and constraint satisfaction over randomized
//! corpora and structures.

use iou_sketch::analysis::CorpusShape;
use iou_sketch::optimizer::brute_force_layers;
use iou_sketch::{optimize_layers, sample_size_for_top_k, FalsePositiveModel};
use proptest::prelude::*;

fn shape(sizes: &[u64], terms: u64) -> CorpusShape {
    CorpusShape::uniform(sizes.iter().copied(), terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// q and q̂ are probabilities, and the exact form dominates the
    /// approximation (the paper's F > F̂ remark).
    #[test]
    fn q_is_a_probability_and_dominates_qhat(
        size in 1u64..500,
        bins in 2usize..10_000,
        l in 1u32..64,
    ) {
        let m = FalsePositiveModel::new(shape(&[size], 1_000), bins);
        let l = l as f64;
        let q = m.q(l, size);
        let qh = m.q_hat(l, size);
        prop_assert!((0.0..=1.0).contains(&q), "q = {q}");
        prop_assert!((0.0..=1.0).contains(&qh), "q_hat = {qh}");
        prop_assert!(q >= qh - 1e-12, "q {q} must dominate q_hat {qh}");
    }

    /// More bins never hurt: F(L) is non-increasing in B.
    #[test]
    fn expected_fp_non_increasing_in_bins(
        sizes in prop::collection::vec(1u64..100, 1..50),
        small_bins in 2usize..1_000,
        extra in 1usize..1_000,
        l in 1u32..16,
    ) {
        let s = shape(&sizes, 10_000);
        let small = FalsePositiveModel::new(s.clone(), small_bins);
        let large = FalsePositiveModel::new(s, small_bins + extra);
        prop_assert!(
            large.expected_fp(l as f64) <= small.expected_fp(l as f64) + 1e-9
        );
    }

    /// Whatever Algorithm 1 returns satisfies the constraint, and no
    /// smaller layer count does.
    #[test]
    fn optimizer_result_is_minimal_and_feasible(
        sizes in prop::collection::vec(1u64..60, 1..80),
        bins in 50usize..3_000,
        f0_exp in -4.0f64..1.0,
    ) {
        let m = FalsePositiveModel::new(shape(&sizes, 5_000), bins);
        let f0 = 10f64.powf(f0_exp);
        if let Ok(outcome) = optimize_layers(&m, f0) {
            prop_assert!(outcome.expected_fp <= f0);
            prop_assert!(m.expected_fp(outcome.layers as f64) <= f0);
            if outcome.layers > 1 {
                // Minimality: L* − 1 must violate the constraint whenever
                // brute force agrees the optimum is L*.
                if let Some(brute) = brute_force_layers(&m, f0, bins as u32) {
                    prop_assert_eq!(outcome.layers, brute);
                    prop_assert!(m.expected_fp((brute - 1) as f64) > f0);
                }
            }
        }
    }

    /// Lemma boundaries: L_min ≤ L_max, and the lower bound is below F̂ at
    /// every sampled L.
    #[test]
    fn lemma_boundaries_hold(
        sizes in prop::collection::vec(1u64..200, 1..60),
        bins in 10usize..5_000,
        l in 1u32..32,
    ) {
        let m = FalsePositiveModel::new(shape(&sizes, 10_000), bins);
        prop_assert!(m.l_min() <= m.l_max() + 1e-12);
        prop_assert!(m.lower_bound() <= m.expected_fp_hat(l as f64) + 1e-9);
    }

    /// R_K bounds: K ≤ R_K ≤ R; tightening δ or adding false positives
    /// never shrinks the sample.
    #[test]
    fn topk_sample_bounds_and_monotonicity(
        k in 1usize..50,
        r in 1usize..100_000,
        f0 in 0.0f64..50.0,
        delta_exp in -9.0f64..-1.0,
    ) {
        let delta = 10f64.powf(delta_exp);
        let rk = sample_size_for_top_k(k, r, f0, delta);
        prop_assert!(rk <= r);
        prop_assert!(rk >= k.min(r));
        let tighter = sample_size_for_top_k(k, r, f0, delta / 10.0);
        prop_assert!(tighter >= rk);
        let dirtier = sample_size_for_top_k(k, r, f0 + 5.0, delta);
        prop_assert!(dirtier >= rk);
    }
}
