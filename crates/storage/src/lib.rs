//! # airphant-storage
//!
//! Object-storage substrate for the Airphant reproduction.
//!
//! The paper (Airphant: Cloud-oriented Document Indexing, ICDE 2022) persists
//! every byte — documents, super postings lists, and the index header — in
//! cloud object storage (GCP Cloud Storage in the paper's experiments) and
//! reads them over the network. This crate provides:
//!
//! * [`ObjectStore`] — the blob-store abstraction the rest of the system is
//!   written against: named blobs, whole-object and ranged reads, and a
//!   *batched* ranged read ([`ObjectStore::get_ranges`]) that models a single
//!   round of concurrent requests (the heart of the IoU Sketch's
//!   "single batch of concurrent communications").
//! * [`InMemoryStore`] and [`LocalFsStore`] — plain backends with zero
//!   simulated latency, used for unit tests and offline index building.
//! * [`SimulatedCloudStore`] — a backend wrapper that attaches a *simulated
//!   cloud latency* to every operation, calibrated to the affine
//!   latency-vs-size relationship of the paper's Figure 2 (≈50 ms to first
//!   byte, linear beyond ~2 MB), with optional long-tail behaviour and
//!   cross-region multipliers (Figures 7, 12, 13).
//! * [`QueryTrace`] — wait-time vs download-time instrumentation that stands
//!   in for the paper's tcpdump-based latency breakdown (Figures 8 and 11).
//!
//! ## Virtual clock
//!
//! Latencies are **data, not sleeps**: every read returns the simulated
//! duration it would have taken on a real cloud link. A batch of `k`
//! concurrent requests completes at `max(first_byte_i) + total_bytes /
//! bandwidth` — parallel requests overlap their round-trip latency but share
//! link bandwidth, exactly the trade-off §II-C of the paper describes. This
//! keeps experiments fast and deterministic under a seed. A real-sleep mode
//! ([`SimulatedCloudStore::with_real_sleep`]) exists for live demos.

#![warn(missing_docs)]

mod cache;
mod error;
mod flaky;
mod latency;
mod localfs;
mod memory;
mod object_store;
mod replicated;
mod scheduler;
mod sim;
mod tail;
mod trace;

pub use cache::{CacheStats, CachedStore};
pub use error::StorageError;
pub use flaky::{FlakyStore, RetryingStore};
pub use latency::{LatencyModel, LatencyModelBuilder, LatencySample, RegionProfile, SimDuration};
pub use localfs::LocalFsStore;
pub use memory::InMemoryStore;
pub use object_store::{BatchFetch, Fetched, ObjectStore, RangeClass, RangeRequest, Version};
pub use replicated::{ReplicatedStore, ReplicationStats};
pub use scheduler::{CoalescingStore, SchedulerConfig, SchedulerStats};
pub use sim::{IoStatsSnapshot, SimulatedCloudStore, SpikeProfile};
pub use tail::TailStore;
pub use trace::{PhaseKind, PhaseTrace, QueryTrace};

/// Convenient `Result` alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
