//! Multi-region replica placement: one [`ObjectStore`] per region, reads
//! routed to the nearest healthy replica, writes fanned out from a fixed
//! primary.
//!
//! The paper's cross-region measurements (Figures 7, 12, 13) show
//! first-byte latency scaling ~3× transatlantic and ~7× transpacific —
//! exactly the spread [`RegionProfile`] models. [`ReplicatedStore`] turns
//! that model into a placement policy:
//!
//! * **Reads** go to the nearest region (smallest `first_byte_mult`).
//!   A transient fault ([`StorageError::Timeout`] / [`StorageError::Io`])
//!   *demotes* the replica for a burst of requests ("skip credits"), so
//!   traffic reroutes to the next-nearest region instead of erroring; once
//!   the credits drain, the next read probes the replica again, which
//!   auto-heals a recovered region without wall-clock timers (the whole
//!   stack runs on a simulated clock).
//! * **Writes** (`put`, `delete`) must succeed on the fixed *primary*
//!   (the nearest region at construction) and are mirrored best-effort to
//!   the other regions; a lagging mirror only costs a rerouted read later
//!   (`BlobNotFound` on a replica falls through to the next region, never
//!   demotes). Conditional writes ([`ObjectStore::put_if_version`]) CAS
//!   **only against the primary** — one linearization point — then mirror
//!   the committed bytes unconditionally.
//!
//! All blobs Airphant serves are immutable once published (manifests are
//! replaced, never edited in place), so any replica's bytes are
//! byte-identical to the primary's — which is what makes cross-region
//! hedged reads ([`ReplicatedStore::hedge_target`]) safe.

use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest, Version};
use crate::{RegionProfile, Result, StorageError};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many reads route around a faulted replica before it is probed
/// again. With ~100-query test streams this keeps a flaky region cold for
/// a meaningful stretch while still converging quickly after a heal.
const DEMOTION_CREDITS: u64 = 64;

/// One region's replica: its latency profile, its store, and its health.
struct Replica {
    profile: RegionProfile,
    store: Arc<dyn ObjectStore>,
    /// 0 = healthy; otherwise the number of further reads that will skip
    /// this replica before the next probe.
    skip_credits: AtomicU64,
    /// Reads served by this replica.
    reads: AtomicU64,
}

impl Replica {
    fn is_healthy(&self) -> bool {
        self.skip_credits.load(Ordering::SeqCst) == 0
    }
}

/// Read/write routing counters of a [`ReplicatedStore`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicationStats {
    /// Reads served per region, in nearness order.
    pub reads_by_region: Vec<(String, u64)>,
    /// Reads served by a region other than the nearest (demotion reroutes
    /// plus `BlobNotFound` fall-throughs on lagging mirrors).
    pub rerouted_reads: u64,
    /// Healthy→demoted transitions (a transient fault tripped a replica).
    pub demotions: u64,
    /// Demoted→healthy transitions (skip credits drained; the replica is
    /// probed again and back in rotation).
    pub recoveries: u64,
    /// Best-effort mirror writes that failed (the primary write still
    /// succeeded; the mirror serves the blob after its next successful
    /// write or a read falls through past it).
    pub mirror_failures: u64,
}

/// An [`ObjectStore`] that places one replica of every blob in each of a
/// set of simulated regions. See the module docs for the routing policy.
pub struct ReplicatedStore {
    /// Sorted by `first_byte_mult` ascending; `replicas[0]` is the
    /// primary (writes) and the preferred read target.
    replicas: Vec<Replica>,
    rerouted_reads: AtomicU64,
    demotions: AtomicU64,
    recoveries: AtomicU64,
    mirror_failures: AtomicU64,
}

impl ReplicatedStore {
    /// Build from `(region, store)` pairs. Replicas are ordered by the
    /// region's `first_byte_mult` (nearest first); the nearest region is
    /// the primary. Panics if `regions` is empty.
    pub fn new(regions: Vec<(RegionProfile, Arc<dyn ObjectStore>)>) -> Self {
        assert!(!regions.is_empty(), "ReplicatedStore needs >= 1 region");
        let mut regions = regions;
        regions.sort_by(|a, b| {
            a.0.first_byte_mult
                .partial_cmp(&b.0.first_byte_mult)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.name.cmp(&b.0.name))
        });
        ReplicatedStore {
            replicas: regions
                .into_iter()
                .map(|(profile, store)| Replica {
                    profile,
                    store,
                    skip_credits: AtomicU64::new(0),
                    reads: AtomicU64::new(0),
                })
                .collect(),
            rerouted_reads: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            mirror_failures: AtomicU64::new(0),
        }
    }

    /// Region names in nearness order (primary first).
    pub fn regions(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|r| r.profile.name.clone())
            .collect()
    }

    /// The primary region's name.
    pub fn primary_region(&self) -> &str {
        &self.replicas[0].profile.name
    }

    /// Whether the named region is currently demoted (routed around).
    pub fn is_demoted(&self, region: &str) -> bool {
        self.replicas
            .iter()
            .any(|r| r.profile.name == region && !r.is_healthy())
    }

    /// Routing counters snapshot.
    pub fn stats(&self) -> ReplicationStats {
        ReplicationStats {
            reads_by_region: self
                .replicas
                .iter()
                .map(|r| (r.profile.name.clone(), r.reads.load(Ordering::Relaxed)))
                .collect(),
            rerouted_reads: self.rerouted_reads.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            mirror_failures: self.mirror_failures.load(Ordering::Relaxed),
        }
    }

    /// The next-nearest *healthy* region after the current preferred read
    /// target — where a region-aware hedge re-dispatches a slow batch.
    /// `None` when fewer than two regions are healthy (hedging against a
    /// known-flaky replica would burn budget on likely failures).
    pub fn hedge_target(&self) -> Option<(String, Arc<dyn ObjectStore>)> {
        let mut healthy = self.replicas.iter().filter(|r| r.is_healthy());
        let _nearest = healthy.next()?;
        let second = healthy.next()?;
        Some((second.profile.name.clone(), second.store.clone()))
    }

    /// Consume one skip credit of a demoted replica; counts the recovery
    /// when the credits drain to zero.
    fn consume_credit(&self, replica: &Replica) {
        let prev = replica
            .skip_credits
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
            .unwrap_or(0);
        if prev == 1 {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Demote a replica after a transient fault (idempotent under races:
    /// only the healthy→demoted edge counts).
    fn demote(&self, replica: &Replica) {
        let was = replica
            .skip_credits
            .swap(DEMOTION_CREDITS, Ordering::SeqCst);
        if was == 0 {
            self.demotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run a read against the nearest healthy replica, failing over on
    /// transient faults (which demote) and missing blobs (which do not).
    fn route_read<T>(&self, op: impl Fn(&Arc<dyn ObjectStore>) -> Result<T>) -> Result<T> {
        // Healthy replicas in nearness order, then demoted ones as a last
        // resort (an all-regions outage should still try, not give up).
        let mut order: Vec<usize> = Vec::with_capacity(self.replicas.len());
        let mut demoted: Vec<usize> = Vec::new();
        for (i, r) in self.replicas.iter().enumerate() {
            if r.is_healthy() {
                order.push(i);
            } else {
                self.consume_credit(r);
                demoted.push(i);
            }
        }
        order.extend(demoted);

        let mut last_err = None;
        for &i in &order {
            let replica = &self.replicas[i];
            match op(&replica.store) {
                Ok(v) => {
                    replica.reads.fetch_add(1, Ordering::Relaxed);
                    if i != 0 {
                        self.rerouted_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Err(e @ (StorageError::Timeout { .. } | StorageError::Io(_))) => {
                    self.demote(replica);
                    last_err = Some(e);
                }
                Err(e @ StorageError::BlobNotFound { .. }) => {
                    // A lagging mirror, not a region fault: fall through.
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("order is never empty"))
    }

    /// Mirror a committed primary write to the other regions, best-effort.
    fn mirror_put(&self, name: &str, data: &Bytes) {
        for replica in &self.replicas[1..] {
            if replica.store.put(name, data.clone()).is_err() {
                self.mirror_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl ObjectStore for ReplicatedStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.replicas[0].store.put(name, data.clone())?;
        self.mirror_put(name, &data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        self.route_read(|s| s.get(name))
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        self.route_read(|s| s.get_range(name, offset, len))
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        self.route_read(|s| s.get_ranges(requests))
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        // Version tokens feed CAS decisions, so they must come from the
        // linearization point — the primary — never a lagging mirror.
        self.replicas[0].store.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        let next = self.replicas[0]
            .store
            .put_if_version(name, data.clone(), expected)?;
        self.mirror_put(name, &data);
        Ok(next)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.route_read(|s| s.size_of(name))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.replicas[0].store.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.replicas[0].store.delete(name)?;
        for replica in &self.replicas[1..] {
            if replica.store.delete(name).is_err() {
                self.mirror_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn usage(&self, prefix: &str) -> Result<u64> {
        self.replicas[0].store.usage(prefix)
    }
}

// One ReplicatedStore is shared by every worker of a server; all routing
// state is atomics.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReplicatedStore>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlakyStore, InMemoryStore, LatencyModel, SimulatedCloudStore};

    /// Three regions over one shared backing store (replicas of the same
    /// immutable bytes), each behind its own flaky wrapper so a region
    /// can be taken down independently.
    fn three_regions() -> (ReplicatedStore, Vec<Arc<FlakyStore<Arc<InMemoryStore>>>>) {
        let backing = Arc::new(InMemoryStore::new());
        backing.put("blob", Bytes::from(vec![7u8; 4096])).unwrap();
        let mut flakies = Vec::new();
        let mut regions: Vec<(RegionProfile, Arc<dyn ObjectStore>)> = Vec::new();
        for (i, profile) in RegionProfile::paper_spread().into_iter().enumerate() {
            let flaky = Arc::new(FlakyStore::new(backing.clone(), 0.0, i as u64 + 1));
            flakies.push(flaky.clone());
            regions.push((profile, flaky as Arc<dyn ObjectStore>));
        }
        (ReplicatedStore::new(regions), flakies)
    }

    #[test]
    fn reads_prefer_the_nearest_region() {
        let (store, _) = three_regions();
        assert_eq!(store.primary_region(), "us-central1-c");
        for _ in 0..10 {
            store.get_range("blob", 0, 64).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.reads_by_region[0].1, 10);
        assert_eq!(stats.reads_by_region[1].1, 0);
        assert_eq!(stats.reads_by_region[2].1, 0);
        assert_eq!(stats.rerouted_reads, 0);
    }

    #[test]
    fn nearness_ordering_ignores_construction_order() {
        let backing = Arc::new(InMemoryStore::new());
        let store = ReplicatedStore::new(vec![
            (
                RegionProfile::singapore(),
                backing.clone() as Arc<dyn ObjectStore>,
            ),
            (
                RegionProfile::same_region(),
                backing.clone() as Arc<dyn ObjectStore>,
            ),
            (RegionProfile::london(), backing as Arc<dyn ObjectStore>),
        ]);
        assert_eq!(
            store.regions(),
            vec!["us-central1-c", "europe-west2-c", "asia-southeast1-b"]
        );
    }

    #[test]
    fn transient_fault_demotes_and_reroutes_until_probe_heals() {
        let (store, flakies) = three_regions();
        flakies[0].set_failure_probability(1.0);
        // First read faults on the primary, demotes it, serves from the
        // next region — no error surfaces.
        let f = store.get_range("blob", 0, 64).unwrap();
        assert_eq!(f.bytes.len(), 64);
        assert!(store.is_demoted("us-central1-c"));
        let stats = store.stats();
        assert_eq!(stats.demotions, 1);
        assert_eq!(stats.rerouted_reads, 1);
        // While demoted, reads skip the primary without touching it.
        let injected_before = flakies[0].injected_failures();
        for _ in 0..10 {
            store.get_range("blob", 0, 64).unwrap();
        }
        assert_eq!(flakies[0].injected_failures(), injected_before);
        // Heal the region; drain the credits; traffic converges home.
        flakies[0].set_failure_probability(0.0);
        for _ in 0..(DEMOTION_CREDITS + 8) {
            store.get_range("blob", 0, 64).unwrap();
        }
        assert!(!store.is_demoted("us-central1-c"));
        let stats = store.stats();
        assert_eq!(stats.recoveries, 1);
        let home_reads = stats.reads_by_region[0].1;
        assert!(home_reads > 0, "healed primary serves again");
    }

    #[test]
    fn all_regions_down_still_surfaces_a_typed_error() {
        let (store, flakies) = three_regions();
        for f in &flakies {
            f.set_failure_probability(1.0);
        }
        match store.get_range("blob", 0, 64) {
            Err(StorageError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        // Every region took the fault and was demoted.
        assert_eq!(store.stats().demotions, 3);
    }

    #[test]
    fn missing_blob_falls_through_without_demoting() {
        let backing_near = Arc::new(InMemoryStore::new());
        let backing_far = Arc::new(InMemoryStore::new());
        backing_far
            .put("only-far", Bytes::from_static(b"x"))
            .unwrap();
        let store = ReplicatedStore::new(vec![
            (
                RegionProfile::same_region(),
                backing_near as Arc<dyn ObjectStore>,
            ),
            (RegionProfile::london(), backing_far as Arc<dyn ObjectStore>),
        ]);
        let f = store.get("only-far").unwrap();
        assert_eq!(&f.bytes[..], b"x");
        let stats = store.stats();
        assert_eq!(stats.demotions, 0, "lag is not a fault");
        assert_eq!(stats.rerouted_reads, 1);
        // Missing everywhere stays BlobNotFound.
        assert!(matches!(
            store.get("nowhere"),
            Err(StorageError::BlobNotFound { .. })
        ));
    }

    #[test]
    fn writes_fan_out_and_cas_hits_only_the_primary() {
        let near = Arc::new(InMemoryStore::new());
        let far = Arc::new(InMemoryStore::new());
        let store = ReplicatedStore::new(vec![
            (
                RegionProfile::same_region(),
                near.clone() as Arc<dyn ObjectStore>,
            ),
            (RegionProfile::london(), far.clone() as Arc<dyn ObjectStore>),
        ]);
        store.put("m", Bytes::from_static(b"gen1")).unwrap();
        assert!(near.exists("m") && far.exists("m"));
        // Make the far mirror stale; CAS must consult only the primary.
        far.put("m", Bytes::from_static(b"divergent")).unwrap();
        let v = store.version_of("m").unwrap();
        assert_eq!(v, Version::of_bytes(b"gen1"));
        store
            .put_if_version("m", Bytes::from_static(b"gen2"), v)
            .unwrap();
        // The committed bytes were mirrored over the divergence.
        assert_eq!(&near.get("m").unwrap().bytes[..], b"gen2");
        assert_eq!(&far.get("m").unwrap().bytes[..], b"gen2");
        // A stale CAS loses against the primary, not the mirror.
        assert!(matches!(
            store.put_if_version("m", Bytes::from_static(b"gen3"), v),
            Err(StorageError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn mirror_write_failures_are_counted_not_fatal() {
        let near = Arc::new(InMemoryStore::new());
        let far = Arc::new(FlakyStore::new(InMemoryStore::new(), 0.0, 9));
        far.fail_puts_after(0);
        let store = ReplicatedStore::new(vec![
            (
                RegionProfile::same_region(),
                near.clone() as Arc<dyn ObjectStore>,
            ),
            (RegionProfile::london(), far as Arc<dyn ObjectStore>),
        ]);
        store.put("m", Bytes::from_static(b"gen1")).unwrap();
        assert!(near.exists("m"));
        assert_eq!(store.stats().mirror_failures, 1);
    }

    #[test]
    fn hedge_target_is_next_nearest_healthy() {
        let (store, flakies) = three_regions();
        let (region, _) = store.hedge_target().unwrap();
        assert_eq!(region, "europe-west2-c");
        // Demote the primary: reads prefer London, hedges go to Singapore.
        flakies[0].set_failure_probability(1.0);
        store.get_range("blob", 0, 64).unwrap();
        assert!(store.is_demoted("us-central1-c"));
        let (region, _) = store.hedge_target().unwrap();
        assert_eq!(region, "asia-southeast1-b");
        // Take London down too: the next read trips it, leaving a single
        // healthy region — nothing left to hedge to.
        flakies[1].set_failure_probability(1.0);
        store.get_range("blob", 0, 64).unwrap();
        assert!(store.is_demoted("europe-west2-c"));
        assert!(store.hedge_target().is_none());
    }

    #[test]
    fn batched_reads_route_and_failover_like_single_reads() {
        let (store, flakies) = three_regions();
        flakies[0].set_failure_probability(1.0);
        let reqs = vec![
            RangeRequest::superpost("blob", 0, 64),
            RangeRequest::new("blob", 64, 64),
        ];
        let b = store.get_ranges(&reqs).unwrap();
        assert_eq!(b.parts.len(), 2);
        assert_eq!(b.total_bytes(), 128);
        assert!(store.is_demoted("us-central1-c"));
    }

    #[test]
    fn concurrent_outage_never_errors_and_counters_stay_sane() {
        let backing = Arc::new(InMemoryStore::new());
        backing.put("blob", Bytes::from(vec![3u8; 4096])).unwrap();
        let mut flakies = Vec::new();
        let mut regions: Vec<(RegionProfile, Arc<dyn ObjectStore>)> = Vec::new();
        for (i, profile) in RegionProfile::paper_spread().into_iter().enumerate() {
            let sim = SimulatedCloudStore::new(
                backing.clone(),
                LatencyModel::gcs_like().with_region(profile.clone()),
                100 + i as u64,
            );
            let flaky = Arc::new(FlakyStore::new(sim, 0.0, 200 + i as u64));
            flakies.push(flaky.clone());
            regions.push((profile, flaky as Arc<dyn ObjectStore>));
        }
        let store = Arc::new(ReplicatedStore::new(regions));
        flakies[0].set_failure_probability(1.0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        let offset = ((t * 100 + i) * 13) % 4032;
                        let f = store.get_range("blob", offset, 64).unwrap();
                        assert_eq!(f.bytes.len(), 64);
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.demotions >= 1);
        let total: u64 = stats.reads_by_region.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 800, "every read served exactly once");
        assert!(stats.reads_by_region[1].1 > 0, "rerouted to next-nearest");
    }
}
