//! Client-side read cache.
//!
//! The paper notes that "node caching may reduce communications, [but]
//! allocating a large enough cache to store the entire index is
//! prohibitively expensive" (§I), and its scalability study (Appendix B-B)
//! points at "a more aggressive caching policy" as future work for small
//! corpora. [`CachedStore`] is that extension: a byte-budgeted LRU over
//! ranged reads. Cache hits cost zero simulated latency — they never leave
//! the client.
//!
//! The cache is safe to share across query threads (one budget serving a
//! whole worker pool), and concurrent fetches of the *same* range are
//! single-flighted: one thread performs the network read while the others
//! wait for the cached bytes, so a popular range is charged its cold
//! latency exactly once and the store underneath sees one request.

use crate::latency::{LatencySample, SimDuration};
use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeClass, RangeRequest, Version};
use crate::Result;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Cache key: one exact ranged read.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RangeKey {
    name: String,
    offset: u64,
    len: u64,
}

/// One cache tier: entries tagged with their last-use tick.
#[derive(Debug, Default)]
struct Tier {
    entries: HashMap<RangeKey, (Bytes, u64)>,
    bytes: usize,
}

impl Tier {
    fn get(&mut self, key: &RangeKey, tick: u64) -> Option<Bytes> {
        self.entries.get_mut(key).map(|(data, used)| {
            *used = tick;
            data.clone()
        })
    }

    fn insert(&mut self, key: RangeKey, data: Bytes, tick: u64, budget: usize) {
        if data.len() > budget {
            return; // larger than the whole tier: don't thrash
        }
        self.bytes += data.len();
        self.entries.insert(key, (data, tick));
        while self.bytes > budget {
            // Evict the least recently used entry of THIS tier only.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over budget");
            if let Some((data, _)) = self.entries.remove(&victim) {
                self.bytes -= data.len();
            }
        }
    }

    fn evict_blob(&mut self, name: &str) {
        let victims: Vec<RangeKey> = self
            .entries
            .keys()
            .filter(|k| k.name == name)
            .cloned()
            .collect();
        for k in victims {
            if let Some((data, _)) = self.entries.remove(&k) {
                self.bytes -= data.len();
            }
        }
    }
}

/// Tiered LRU state: a small Index tier that bulky Data traffic can never
/// evict, the Data tier with the main budget, a shared monotone use
/// counter, and a per-blob invalidation epoch (bumped by every write or
/// delete of the blob) that in-flight fetches check before admitting bytes.
#[derive(Debug, Default)]
struct LruState {
    index: Tier,
    data: Tier,
    tick: u64,
    epochs: HashMap<String, u64>,
}

impl LruState {
    fn get(&mut self, key: &RangeKey) -> Option<Bytes> {
        self.tick += 1;
        let tick = self.tick;
        self.index
            .get(key, tick)
            .or_else(|| self.data.get(key, tick))
    }

    /// Admit by class: Index-class ranges go to the pinned index tier
    /// (falling back to the data tier when they cannot fit there at all,
    /// so tiering is never worse than the flat cache); Data-class ranges
    /// only ever touch the data tier.
    fn insert(
        &mut self,
        key: RangeKey,
        data: Bytes,
        class: RangeClass,
        data_budget: usize,
        index_budget: usize,
    ) {
        self.tick += 1;
        let tick = self.tick;
        match class {
            RangeClass::Index if data.len() <= index_budget => {
                self.index.insert(key, data, tick, index_budget);
            }
            _ => self.data.insert(key, data, tick, data_budget),
        }
    }
}

/// One in-flight fetch of a range: followers block on the condvar until
/// the leader publishes (or abandons) the bytes.
struct Flight {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

/// Outcome of registering interest in a missing range.
enum Claim<'a, S: ObjectStore> {
    /// This thread fetches; the guard releases the flight on drop (so a
    /// panicking backend can never strand followers on the condvar).
    Leader(ClaimGuard<'a, S>),
    /// Another thread is already fetching; wait on its flight.
    Follower(Arc<Flight>),
}

/// Releases a leader's claim when dropped — on success, error, or unwind.
struct ClaimGuard<'a, S: ObjectStore> {
    store: &'a CachedStore<S>,
    key: RangeKey,
    flight: Arc<Flight>,
}

impl<S: ObjectStore> Drop for ClaimGuard<'_, S> {
    fn drop(&mut self) {
        self.store.release(&self.key, &self.flight);
    }
}

/// Per-tier hit/miss/byte ledgers of a [`CachedStore`].
///
/// A read is attributed to the tier its [`RangeClass`] hint names, so the
/// ablation can report how index traffic and data traffic fare separately
/// under one budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Hits on Index-class reads.
    pub index_hits: u64,
    /// Misses on Index-class reads.
    pub index_misses: u64,
    /// Bytes currently resident in the index tier.
    pub index_bytes: u64,
    /// Hits on Superpost-class reads (posting bytes; resident in the
    /// data tier but ledgered apart from document traffic).
    pub superpost_hits: u64,
    /// Misses on Superpost-class reads.
    pub superpost_misses: u64,
    /// Hits on Data-class reads (document verification bytes).
    pub data_hits: u64,
    /// Misses on Data-class reads.
    pub data_misses: u64,
    /// Bytes currently resident in the data tier.
    pub data_bytes: u64,
}

impl CacheStats {
    /// Total hits across tiers.
    pub fn hits(&self) -> u64 {
        self.index_hits + self.superpost_hits + self.data_hits
    }

    /// Total misses across tiers.
    pub fn misses(&self) -> u64 {
        self.index_misses + self.superpost_misses + self.data_misses
    }

    /// Overall hit rate in `[0, 1]` (0 when nothing was read).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// An [`ObjectStore`] decorator that caches ranged reads in client memory,
/// with **tiered admission**: ranges hinted [`RangeClass::Index`] are held
/// under a small dedicated budget that Data-class traffic can never evict
/// (the paper's cache ablation measures exactly this trade — tiny
/// high-fanout index bytes versus bulky payload bytes competing for one
/// budget).
///
/// Whole-object `get`s are treated as ranged reads of the full length so
/// repeated header fetches also hit. Writes and deletes invalidate the
/// touched blob's entries in both tiers.
pub struct CachedStore<S> {
    inner: S,
    budget: usize,
    index_budget: usize,
    lru: Mutex<LruState>,
    in_flight: StdMutex<HashMap<RangeKey, Arc<Flight>>>,
    data_hits: AtomicU64,
    data_misses: AtomicU64,
    superpost_hits: AtomicU64,
    superpost_misses: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
}

impl<S: ObjectStore> CachedStore<S> {
    /// Wrap `inner` with a Data-tier budget of `budget_bytes`, plus a
    /// dedicated index tier of an eighth of that (so headers survive data
    /// churn out of the box). Use [`CachedStore::with_budgets`] to pick
    /// both budgets explicitly.
    pub fn new(inner: S, budget_bytes: usize) -> Self {
        Self::with_budgets(inner, budget_bytes, budget_bytes / 8)
    }

    /// Wrap `inner` with explicit per-tier budgets. `index_budget_bytes`
    /// of zero disables tiering: Index-class ranges then compete in the
    /// Data LRU like everything else (the flat-cache baseline).
    pub fn with_budgets(inner: S, data_budget_bytes: usize, index_budget_bytes: usize) -> Self {
        CachedStore {
            inner,
            budget: data_budget_bytes,
            index_budget: index_budget_bytes,
            lru: Mutex::new(LruState::default()),
            in_flight: StdMutex::new(HashMap::new()),
            data_hits: AtomicU64::new(0),
            data_misses: AtomicU64::new(0),
            superpost_hits: AtomicU64::new(0),
            superpost_misses: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            index_misses: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// `(hits, misses)` counters, summed across tiers.
    pub fn hit_stats(&self) -> (u64, u64) {
        let s = self.stats();
        (s.hits(), s.misses())
    }

    /// Per-tier hit/miss/byte ledgers.
    pub fn stats(&self) -> CacheStats {
        let (index_bytes, data_bytes) = {
            let lru = self.lru.lock();
            (lru.index.bytes as u64, lru.data.bytes as u64)
        };
        CacheStats {
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
            index_bytes,
            superpost_hits: self.superpost_hits.load(Ordering::Relaxed),
            superpost_misses: self.superpost_misses.load(Ordering::Relaxed),
            data_hits: self.data_hits.load(Ordering::Relaxed),
            data_misses: self.data_misses.load(Ordering::Relaxed),
            data_bytes,
        }
    }

    /// Bytes currently cached across both tiers.
    pub fn cached_bytes(&self) -> usize {
        let lru = self.lru.lock();
        lru.index.bytes + lru.data.bytes
    }

    fn count_hit(&self, class: RangeClass) {
        match class {
            RangeClass::Index => self.index_hits.fetch_add(1, Ordering::Relaxed),
            RangeClass::Superpost => self.superpost_hits.fetch_add(1, Ordering::Relaxed),
            RangeClass::Data => self.data_hits.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn count_miss(&self, class: RangeClass) {
        match class {
            RangeClass::Index => self.index_misses.fetch_add(1, Ordering::Relaxed),
            RangeClass::Superpost => self.superpost_misses.fetch_add(1, Ordering::Relaxed),
            RangeClass::Data => self.data_misses.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn invalidate(&self, name: &str) {
        let mut lru = self.lru.lock();
        // Bumped under the LRU lock, the same lock admits take: an admit
        // either lands before this (and is removed below) or observes the
        // new epoch and skips.
        *lru.epochs.entry(name.to_owned()).or_insert(0) += 1;
        lru.index.evict_blob(name);
        lru.data.evict_blob(name);
    }

    /// The blob's current invalidation epoch (leaders snapshot this
    /// before fetching).
    fn epoch_of(&self, name: &str) -> u64 {
        self.lru.lock().epochs.get(name).copied().unwrap_or(0)
    }

    /// Cache probe that counts a hit against the request's class ledger; a
    /// miss is counted by whoever ends up leading the fetch, so every
    /// logical read increments exactly one counter exactly once.
    fn probe(&self, key: &RangeKey, class: RangeClass) -> Option<Fetched> {
        let cached = self.lru.lock().get(key);
        cached.map(|bytes| {
            self.count_hit(class);
            Fetched {
                bytes,
                latency: LatencySample::ZERO,
            }
        })
    }

    /// Admit fetched bytes unless an invalidation of the same blob landed
    /// since the fetch started (`epoch` is the leader's pre-fetch
    /// snapshot).
    fn admit_if_current(&self, key: RangeKey, bytes: &Bytes, class: RangeClass, epoch: u64) {
        let mut lru = self.lru.lock();
        if lru.epochs.get(&key.name).copied().unwrap_or(0) == epoch {
            lru.insert(key, bytes.clone(), class, self.budget, self.index_budget);
        }
    }

    /// Register interest in fetching `key`: the first caller becomes the
    /// leader, everyone else follows its flight.
    fn claim(&self, key: &RangeKey) -> Claim<'_, S> {
        let mut map = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(flight) => Claim::Follower(flight.clone()),
            None => {
                let flight = Arc::new(Flight::new());
                map.insert(key.clone(), flight.clone());
                Claim::Leader(ClaimGuard {
                    store: self,
                    key: key.clone(),
                    flight,
                })
            }
        }
    }

    /// Leader hand-off: unpark followers after the bytes were admitted (or
    /// the fetch failed — followers re-probe and fetch for themselves).
    fn release(&self, key: &RangeKey, flight: &Flight) {
        self.in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
        flight.finish();
    }

    /// Route one missing request of a batch: a cache hit fills
    /// `parts[i]`; a claimed fetch is queued into the round's `leading`
    /// set (its guard held so followers can wait on the flight); a range
    /// another thread is already fetching joins `following`. The
    /// probe→claim→re-probe dance is the same as `get_range`'s: a prior
    /// leader may admit and release between our probe and our claim.
    fn route_request<'a>(
        &'a self,
        i: usize,
        r: &RangeRequest,
        key: &RangeKey,
        parts: &mut [Option<Fetched>],
        round: &mut BatchRound<'a, S>,
    ) {
        if let Some(hit) = self.probe(key, r.class) {
            parts[i] = Some(hit);
            return;
        }
        match self.claim(key) {
            Claim::Leader(guard) => {
                if let Some(hit) = self.probe(key, r.class) {
                    drop(guard);
                    parts[i] = Some(hit);
                    return;
                }
                self.count_miss(r.class);
                round.leading.push((i, r.clone(), self.epoch_of(&r.name)));
                round.claims.push(guard);
            }
            Claim::Follower(flight) => round.following.push((i, flight)),
        }
    }

    /// Issue one round's led ranges as a single concurrent batch, admit
    /// what fits, fill `parts`, and fold the batch's cost in with
    /// concurrent semantics (waits overlap via max, transfers share the
    /// link and add).
    fn lead_batch(
        &self,
        leading: Vec<(usize, RangeRequest, u64)>,
        parts: &mut [Option<Fetched>],
        wait: &mut SimDuration,
        download: &mut SimDuration,
    ) -> Result<()> {
        if leading.is_empty() {
            return Ok(());
        }
        let reqs: Vec<RangeRequest> = leading.iter().map(|(_, r, _)| r.clone()).collect();
        // Errors (and panics) drop the caller's claims, releasing every
        // flight.
        let batch = self.inner.get_ranges(&reqs)?;
        *wait = (*wait).max(batch.batch_wait);
        *download += batch.batch_download;
        for ((i, r, epoch), fetched) in leading.into_iter().zip(batch.parts) {
            self.admit_if_current(
                RangeKey {
                    name: r.name,
                    offset: r.offset,
                    len: r.len,
                },
                &fetched.bytes,
                r.class,
                epoch,
            );
            parts[i] = Some(fetched);
        }
        Ok(())
    }
}

/// One round of a batched fetch: the ranges this thread leads (claims
/// held until the round's batch lands) and the flights it follows.
struct BatchRound<'a, S: ObjectStore> {
    leading: Vec<(usize, RangeRequest, u64)>,
    claims: Vec<ClaimGuard<'a, S>>,
    following: Vec<(usize, Arc<Flight>)>,
}

impl<S: ObjectStore> BatchRound<'_, S> {
    fn new() -> Self {
        BatchRound {
            leading: Vec::new(),
            claims: Vec::new(),
            following: Vec::new(),
        }
    }
}

impl<S: ObjectStore> ObjectStore for CachedStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.invalidate(name);
        let result = self.inner.put(name, data);
        // Invalidate again once the write has applied: a fetch that
        // snapshotted its epoch after the first invalidation could still
        // have read pre-write bytes and admitted them in the meantime —
        // this pass evicts that entry and fails any still-in-flight
        // admit's epoch check, so stale bytes can never outlive the
        // write.
        self.invalidate(name);
        result
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        // Versions must reflect the durable store, never a cached entry:
        // a CAS retry loop that read a stale version would spin.
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        // Same invalidate-before-and-after discipline as `put`. A lost
        // CAS invalidates too: the mismatch proves another writer updated
        // the blob, so whatever this cache holds for it is stale.
        self.invalidate(name);
        let result = self.inner.put_if_version(name, data, expected);
        self.invalidate(name);
        result
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        let size = self.inner.size_of(name)?;
        self.get_range(name, 0, size)
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        let key = RangeKey {
            name: name.to_owned(),
            offset,
            len,
        };
        loop {
            if let Some(hit) = self.probe(&key, RangeClass::Data) {
                return Ok(hit);
            }
            match self.claim(&key) {
                Claim::Leader(guard) => {
                    // Re-probe: a prior leader may have admitted and
                    // released between our probe and our claim, and its
                    // admit happens-before its release happens-before
                    // this claim — don't re-fetch what just landed.
                    if let Some(hit) = self.probe(&key, RangeClass::Data) {
                        drop(guard);
                        return Ok(hit);
                    }
                    self.count_miss(RangeClass::Data);
                    let epoch = self.epoch_of(name);
                    let result = self.inner.get_range(name, offset, len);
                    if let Ok(fetched) = &result {
                        self.admit_if_current(key.clone(), &fetched.bytes, RangeClass::Data, epoch);
                    }
                    drop(guard); // publish to followers
                    return result;
                }
                // Re-probe once the leader lands: usually a free hit. If
                // the leader failed (or the bytes were too big to admit),
                // the next iteration claims leadership and fetches.
                Claim::Follower(flight) => flight.wait(),
            }
        }
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        // Serve hits locally; fetch only the misses this thread leads as
        // one (smaller) batch; ranges already being fetched by another
        // thread are awaited instead of re-requested. A range appearing
        // twice in the same batch is physically fetched once and the
        // duplicate is served from the first occurrence's part — without
        // this, a non-admittable (oversized) payload would send the
        // duplicate back to the backend for bytes this very batch already
        // holds.
        let mut parts: Vec<Option<Fetched>> = vec![None; requests.len()];
        let mut first_occurrence: HashMap<RangeKey, usize> = HashMap::new();
        let mut duplicates: Vec<(usize, usize)> = Vec::new();
        let mut round = BatchRound::new();
        for (i, r) in requests.iter().enumerate() {
            let key = RangeKey {
                name: r.name.clone(),
                offset: r.offset,
                len: r.len,
            };
            if let Some(&j) = first_occurrence.get(&key) {
                duplicates.push((i, j));
                continue;
            }
            self.route_request(i, r, &key, &mut parts, &mut round);
            first_occurrence.insert(key, i);
        }

        let (mut wait, mut download) = (SimDuration::ZERO, SimDuration::ZERO);
        self.lead_batch(round.leading, &mut parts, &mut wait, &mut download)?;
        // Publish our claims *before* waiting on anyone else's flight:
        // every batch completes its own fetches without blocking on other
        // threads, so there is no wait cycle to deadlock on.
        drop(round.claims);

        // Ranges another thread was fetching: wait for every flight, then
        // re-probe (via `route_request`, like round one). Whatever the
        // leaders failed to admit (error, or bytes larger than the cache)
        // is refetched as ONE concurrent fallback batch per round — never
        // a range at a time, which would degrade a K-range batch into K
        // serial round trips. A round's fallback ranges that yet another
        // thread is again fetching roll into the next round. Each round's
        // batch folds in with concurrent semantics: waits overlap, its
        // transfer shares the link.
        let mut following = round.following;
        while !following.is_empty() {
            let mut round = BatchRound::new();
            for (i, flight) in following {
                flight.wait();
                let r = &requests[i];
                let key = RangeKey {
                    name: r.name.clone(),
                    offset: r.offset,
                    len: r.len,
                };
                self.route_request(i, r, &key, &mut parts, &mut round);
            }
            self.lead_batch(round.leading, &mut parts, &mut wait, &mut download)?;
            drop(round.claims);
            following = round.following;
        }

        // Intra-batch duplicates ride on the first occurrence's bytes —
        // the same physical fetch, so they cost nothing and count as hits
        // (`hits + misses == requests` stays exact; the old fallback
        // could double-count a duplicate as a second miss).
        for (i, j) in duplicates {
            self.count_hit(requests[i].class);
            parts[i] = Some(parts[j].clone().expect("first occurrence filled"));
        }

        Ok(BatchFetch {
            parts: parts.into_iter().map(|p| p.expect("all filled")).collect(),
            batch_latency: wait + download,
            batch_wait: wait,
            batch_download: download,
        })
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.invalidate(name);
        let result = self.inner.delete(name);
        self.invalidate(name); // see `put`
        result
    }
}

// One shared cache serves a whole worker pool; the LRU and the in-flight
// table are the only mutable state and both sit behind their own locks.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CachedStore<crate::InMemoryStore>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStore, LatencyModel, SimulatedCloudStore};

    fn cloud() -> SimulatedCloudStore<InMemoryStore> {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![9u8; 1 << 16])).unwrap();
        SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 1)
    }

    #[test]
    fn repeated_reads_hit_cache_and_cost_nothing() {
        let store = CachedStore::new(cloud(), 1 << 20);
        let cold = store.get_range("blob", 0, 1024).unwrap();
        assert!(cold.latency.total() > SimDuration::ZERO);
        let warm = store.get_range("blob", 0, 1024).unwrap();
        assert_eq!(warm.latency.total(), SimDuration::ZERO);
        assert_eq!(warm.bytes, cold.bytes);
        assert_eq!(store.hit_stats(), (1, 1));
    }

    #[test]
    fn superpost_reads_ledger_separately_from_documents() {
        let store = CachedStore::new(cloud(), 1 << 20);
        let reqs = vec![
            RangeRequest::superpost("blob", 0, 64),
            RangeRequest::new("blob", 64, 64),
        ];
        store.get_ranges(&reqs).unwrap(); // both miss
        store.get_ranges(&reqs).unwrap(); // both hit
        let s = store.stats();
        assert_eq!((s.superpost_hits, s.superpost_misses), (1, 1));
        assert_eq!((s.data_hits, s.data_misses), (1, 1));
        assert_eq!((s.index_hits, s.index_misses), (0, 0));
        assert_eq!(store.hit_stats(), (2, 2));
        // Superpost bytes live in the data tier (no dedicated budget yet);
        // the index tier stays empty.
        assert_eq!(s.index_bytes, 0);
        assert_eq!(s.data_bytes, 128);
    }

    #[test]
    fn different_ranges_are_distinct_entries() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 100).unwrap();
        let miss = store.get_range("blob", 0, 200).unwrap();
        assert!(miss.latency.total() > SimDuration::ZERO);
        assert_eq!(store.hit_stats(), (0, 2));
    }

    #[test]
    fn lru_evicts_under_budget_pressure() {
        let store = CachedStore::new(cloud(), 300);
        store.get_range("blob", 0, 100).unwrap(); // A
        store.get_range("blob", 100, 100).unwrap(); // B
        store.get_range("blob", 200, 100).unwrap(); // C — budget full
        store.get_range("blob", 0, 100).unwrap(); // A hits, refreshes
        store.get_range("blob", 300, 100).unwrap(); // D — evicts B (LRU)
        assert!(store.cached_bytes() <= 300);
        let a = store.get_range("blob", 0, 100).unwrap();
        assert_eq!(a.latency.total(), SimDuration::ZERO, "A survived");
        let b = store.get_range("blob", 100, 100).unwrap();
        assert!(b.latency.total() > SimDuration::ZERO, "B was evicted");
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let store = CachedStore::new(cloud(), 128);
        store.get_range("blob", 0, 1024).unwrap();
        assert_eq!(store.cached_bytes(), 0);
    }

    #[test]
    fn writes_invalidate() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 16).unwrap();
        store.put("blob", Bytes::from(vec![1u8; 1 << 16])).unwrap();
        let refetched = store.get_range("blob", 0, 16).unwrap();
        assert!(refetched.latency.total() > SimDuration::ZERO);
        assert_eq!(&refetched.bytes[..], &[1u8; 16]);
    }

    #[test]
    fn conditional_writes_invalidate_cached_entries() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 16).unwrap();
        let v = store.inner().version_of("blob").unwrap();
        store
            .put_if_version("blob", Bytes::from(vec![4u8; 1 << 16]), v)
            .unwrap();
        let refetched = store.get_range("blob", 0, 16).unwrap();
        assert!(refetched.latency.total() > SimDuration::ZERO, "cold again");
        assert_eq!(&refetched.bytes[..], &[4u8; 16]);
        // A *lost* CAS also invalidates (the mismatch proves the cached
        // view is stale) but never applies the loser's bytes.
        assert!(store
            .put_if_version("blob", Bytes::from(vec![9u8; 4]), v)
            .is_err());
        assert_eq!(
            &store.get_range("blob", 0, 16).unwrap().bytes[..],
            &[4u8; 16]
        );
    }

    #[test]
    fn batch_fetches_only_misses() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 64).unwrap();
        let reqs = vec![
            RangeRequest::new("blob", 0, 64),   // hit
            RangeRequest::new("blob", 64, 64),  // miss
            RangeRequest::new("blob", 128, 64), // miss
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.parts.len(), 3);
        assert_eq!(store.hit_stats().0, 1);
        // A fully-warm batch is free.
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.batch_latency, SimDuration::ZERO);
    }

    #[test]
    fn whole_get_caches_as_full_range() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get("blob").unwrap();
        let warm = store.get("blob").unwrap();
        assert_eq!(warm.latency.total(), SimDuration::ZERO);
    }

    #[test]
    fn hit_miss_accounting_is_exact() {
        // Every read counts exactly once: hits + misses == logical reads,
        // whether issued singly or batched.
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 64).unwrap(); // miss
        store.get_range("blob", 0, 64).unwrap(); // hit
        let reqs = vec![
            RangeRequest::new("blob", 0, 64),   // hit
            RangeRequest::new("blob", 64, 64),  // miss
            RangeRequest::new("blob", 128, 64), // miss
        ];
        store.get_ranges(&reqs).unwrap();
        let (hits, misses) = store.hit_stats();
        assert_eq!((hits, misses), (2, 3));
        assert_eq!(hits + misses, 5, "one count per logical read");
    }

    #[test]
    fn failed_fetches_do_not_poison_the_cache() {
        let store = CachedStore::new(cloud(), 1 << 20);
        assert!(store.get_range("missing", 0, 8).is_err());
        // The failed flight was released: the same key can be retried and
        // a later failure still surfaces (no deadlock, no cached error).
        assert!(store.get_range("missing", 0, 8).is_err());
        // Real data still works afterwards.
        store.get_range("blob", 0, 8).unwrap();
        assert_eq!(store.hit_stats().0, 0);
    }

    #[test]
    fn lru_eviction_order_survives_interleaved_readers() {
        // Four threads interleave reads over three hot ranges while the
        // budget only holds three entries; afterwards the entry no reader
        // refreshed is the one that a new insert evicts.
        let store = std::sync::Arc::new(CachedStore::new(cloud(), 300));
        store.get_range("blob", 0, 100).unwrap(); // A
        store.get_range("blob", 100, 100).unwrap(); // B
        store.get_range("blob", 200, 100).unwrap(); // C — budget full
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        // Touch A and C, never B.
                        assert_eq!(
                            store.get_range("blob", 0, 100).unwrap().latency.total(),
                            SimDuration::ZERO
                        );
                        assert_eq!(
                            store.get_range("blob", 200, 100).unwrap().latency.total(),
                            SimDuration::ZERO
                        );
                    }
                });
            }
        });
        store.get_range("blob", 300, 100).unwrap(); // D — evicts B (LRU)
        assert!(store.cached_bytes() <= 300);
        assert_eq!(
            store.get_range("blob", 0, 100).unwrap().latency.total(),
            SimDuration::ZERO,
            "A stayed hot"
        );
        assert!(
            store.get_range("blob", 100, 100).unwrap().latency.total() > SimDuration::ZERO,
            "B was the LRU victim"
        );
    }

    #[test]
    fn concurrent_same_range_is_single_flighted() {
        // Eight threads race on one cold range: exactly one pays the
        // simulated cold latency, the rest are served from the cache for
        // free, and the store underneath sees exactly one request.
        for round in 0..20 {
            let inner = InMemoryStore::new();
            inner.put("blob", Bytes::from(vec![9u8; 1 << 16])).unwrap();
            let sim = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), round);
            let store = std::sync::Arc::new(CachedStore::new(sim, 1 << 20));
            let charged: Vec<SimDuration> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let store = store.clone();
                        s.spawn(move || store.get_range("blob", 0, 1024).unwrap().latency.total())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let paid: Vec<&SimDuration> =
                charged.iter().filter(|l| **l > SimDuration::ZERO).collect();
            assert_eq!(paid.len(), 1, "exactly one cold fetch is charged");
            assert_eq!(
                store.hit_stats(),
                (7, 1),
                "7 followers hit, 1 leader missed"
            );
            assert_eq!(
                store.inner().stats().read_requests,
                1,
                "the backend saw a single request"
            );
            // All eight observed identical bytes.
            let reference = store.get_range("blob", 0, 1024).unwrap().bytes;
            assert_eq!(&reference[..], &[9u8; 1024][..]);
        }
    }

    /// Delegates to an [`InMemoryStore`] but parks `get_range` on a gate
    /// and flags when a fetch has started — lets tests interleave a write
    /// with an in-flight read deterministically.
    struct StallingStore {
        inner: InMemoryStore,
        started: StdMutex<bool>,
        started_cv: Condvar,
        gate: StdMutex<bool>,
        gate_cv: Condvar,
    }

    impl StallingStore {
        fn new(inner: InMemoryStore) -> Self {
            StallingStore {
                inner,
                started: StdMutex::new(false),
                started_cv: Condvar::new(),
                gate: StdMutex::new(false),
                gate_cv: Condvar::new(),
            }
        }

        fn wait_for_fetch_start(&self) {
            let mut started = self.started.lock().unwrap();
            while !*started {
                started = self.started_cv.wait(started).unwrap();
            }
        }

        fn open_gate(&self) {
            *self.gate.lock().unwrap() = true;
            self.gate_cv.notify_all();
        }
    }

    impl ObjectStore for StallingStore {
        fn put(&self, name: &str, data: Bytes) -> crate::Result<()> {
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> crate::Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, offset: u64, len: u64) -> crate::Result<Fetched> {
            // Read first, then park: the caller ends up holding pre-write
            // bytes across whatever the test interleaves at the gate.
            let result = self.inner.get_range(name, offset, len);
            {
                *self.started.lock().unwrap() = true;
                self.started_cv.notify_all();
            }
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.gate_cv.wait(open).unwrap();
            }
            drop(open);
            result
        }
        fn size_of(&self, name: &str) -> crate::Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> crate::Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> crate::Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn write_racing_an_in_flight_fetch_is_not_cached_stale() {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![1u8; 64])).unwrap();
        let stall = StallingStore::new(inner);
        let store = std::sync::Arc::new(CachedStore::new(stall, 1 << 20));
        std::thread::scope(|s| {
            let reader = {
                let store = store.clone();
                s.spawn(move || store.get_range("blob", 0, 64).unwrap())
            };
            // The fetch is in flight (parked inside the backend) when the
            // write lands; the fetched pre-write bytes must not be
            // admitted over it.
            store.inner().wait_for_fetch_start();
            store.put("blob", Bytes::from(vec![2u8; 64])).unwrap();
            store.inner().open_gate();
            let old = reader.join().unwrap();
            assert_eq!(&old.bytes[..], &[1u8; 64][..], "read began pre-write");
        });
        let fresh = store.get_range("blob", 0, 64).unwrap();
        assert_eq!(
            &fresh.bytes[..],
            &[2u8; 64][..],
            "stale in-flight bytes must not serve later readers"
        );
    }

    /// Delegates to an [`InMemoryStore`] but parks `put` (after flagging
    /// it started) so a read can be interleaved into the
    /// invalidate→write window.
    struct StallingPutStore {
        inner: InMemoryStore,
        started: StdMutex<bool>,
        started_cv: Condvar,
        gate: StdMutex<bool>,
        gate_cv: Condvar,
    }

    impl StallingPutStore {
        fn new(inner: InMemoryStore) -> Self {
            StallingPutStore {
                inner,
                started: StdMutex::new(false),
                started_cv: Condvar::new(),
                gate: StdMutex::new(false),
                gate_cv: Condvar::new(),
            }
        }

        fn wait_for_put_start(&self) {
            let mut started = self.started.lock().unwrap();
            while !*started {
                started = self.started_cv.wait(started).unwrap();
            }
        }

        fn open_gate(&self) {
            *self.gate.lock().unwrap() = true;
            self.gate_cv.notify_all();
        }
    }

    impl ObjectStore for StallingPutStore {
        fn put(&self, name: &str, data: Bytes) -> crate::Result<()> {
            {
                *self.started.lock().unwrap() = true;
                self.started_cv.notify_all();
            }
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.gate_cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> crate::Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, offset: u64, len: u64) -> crate::Result<Fetched> {
            self.inner.get_range(name, offset, len)
        }
        fn size_of(&self, name: &str) -> crate::Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> crate::Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> crate::Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn fetch_between_invalidate_and_write_cannot_pin_stale_bytes() {
        // The nastier half of the write race: a fetch that *starts after*
        // the write's invalidation but reads the backend *before* the
        // write applies. Its admit looks current, so only the post-write
        // invalidation pass evicts what it cached.
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![1u8; 64])).unwrap();
        let store = std::sync::Arc::new(CachedStore::new(StallingPutStore::new(inner), 1 << 20));
        std::thread::scope(|s| {
            let writer = {
                let store = store.clone();
                // invalidates, then parks inside the backend write
                s.spawn(move || store.put("blob", Bytes::from(vec![2u8; 64])).unwrap())
            };
            store.inner().wait_for_put_start();
            // Reads pre-write bytes and admits them mid-write.
            let old = store.get_range("blob", 0, 64).unwrap();
            assert_eq!(&old.bytes[..], &[1u8; 64][..], "write not yet applied");
            store.inner().open_gate();
            writer.join().unwrap();
        });
        let fresh = store.get_range("blob", 0, 64).unwrap();
        assert_eq!(
            &fresh.bytes[..],
            &[2u8; 64][..],
            "mid-write admit must not survive the write"
        );
    }

    #[test]
    fn writes_do_not_block_admission_of_other_blobs() {
        // Epochs are per blob: hammering writes on one blob must not stop
        // concurrent fetches of another blob from being admitted.
        let inner = InMemoryStore::new();
        inner.put("hot", Bytes::from(vec![7u8; 1 << 12])).unwrap();
        inner.put("churn", Bytes::from(vec![0u8; 16])).unwrap();
        let store = std::sync::Arc::new(CachedStore::new(inner, 1 << 20));
        std::thread::scope(|s| {
            let store2 = store.clone();
            let writes = s.spawn(move || {
                for i in 0..200 {
                    store2.put("churn", Bytes::from(vec![i as u8; 16])).unwrap();
                }
            });
            for i in 0..50 {
                store.get_range("hot", i * 64, 64).unwrap();
            }
            writes.join().unwrap();
        });
        // Every distinct "hot" range was admitted despite the write storm.
        let (hits_before, _) = store.hit_stats();
        for i in 0..50 {
            store.get_range("hot", i * 64, 64).unwrap();
        }
        let (hits_after, _) = store.hit_stats();
        assert_eq!(hits_after - hits_before, 50, "all hot ranges were cached");
    }

    /// Panics on the first `get_range`, succeeds afterwards.
    struct PanicOnceStore {
        inner: InMemoryStore,
        panicked: std::sync::atomic::AtomicBool,
    }

    impl ObjectStore for PanicOnceStore {
        fn put(&self, name: &str, data: Bytes) -> crate::Result<()> {
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> crate::Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, offset: u64, len: u64) -> crate::Result<Fetched> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected backend panic");
            }
            self.inner.get_range(name, offset, len)
        }
        fn size_of(&self, name: &str) -> crate::Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> crate::Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> crate::Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn leader_panic_does_not_strand_followers() {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![3u8; 64])).unwrap();
        let store = std::sync::Arc::new(CachedStore::new(
            PanicOnceStore {
                inner,
                panicked: std::sync::atomic::AtomicBool::new(false),
            },
            1 << 20,
        ));
        // Many racers: one leader hits the injected panic; the claim
        // guard still releases the flight, so the others recover and
        // complete instead of hanging on the condvar forever.
        let ok: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = store.clone();
                    s.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            store.get_range("blob", 0, 64).unwrap().bytes
                        }))
                        .is_ok()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&ok| ok)
                .count()
        });
        assert_eq!(ok, 3, "one panicking leader, three recovered followers");
        // The key is serviceable afterwards.
        assert_eq!(store.get_range("blob", 0, 64).unwrap().bytes.len(), 64);
    }

    #[test]
    fn intra_batch_duplicate_of_oversized_range_is_not_refetched() {
        // Budget 128 B, range 1 KiB: the leader's bytes are never
        // admitted, so the duplicate occurrence cannot be served from the
        // cache — it must ride on the leader's fetched part instead of
        // paying the backend a second time for identical bytes.
        let store = CachedStore::new(cloud(), 128);
        let reqs = vec![
            RangeRequest::new("blob", 0, 1024),
            RangeRequest::new("blob", 0, 1024),
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.parts.len(), 2);
        assert_eq!(&batch.parts[0].bytes[..], &batch.parts[1].bytes[..]);
        assert_eq!(
            store.inner().stats().read_requests,
            1,
            "the duplicate must not re-fetch from the backend"
        );
        // Exactly one count per logical read: 1 miss (leader) + 1 hit
        // (duplicate served from the leader's part). The old fallback
        // charged a second miss through `get_range`.
        assert_eq!(store.hit_stats(), (1, 1));
    }

    #[test]
    fn duplicate_heavy_batch_accounting_is_exact() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 64).unwrap(); // warm one range: 1 miss
        let reqs = vec![
            RangeRequest::new("blob", 0, 64),  // hit
            RangeRequest::new("blob", 0, 64),  // duplicate of a hit
            RangeRequest::new("blob", 64, 64), // miss
            RangeRequest::new("blob", 64, 64), // duplicate of a miss
            RangeRequest::new("blob", 64, 64), // and again
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        for w in batch.parts.windows(2).take(1) {
            assert_eq!(&w[0].bytes[..], &w[1].bytes[..]);
        }
        assert_eq!(&batch.parts[2].bytes[..], &batch.parts[3].bytes[..]);
        assert_eq!(&batch.parts[3].bytes[..], &batch.parts[4].bytes[..]);
        let (hits, misses) = store.hit_stats();
        assert_eq!(hits + misses, 1 + 5, "one count per logical read");
        assert_eq!((hits, misses), (4, 2));
    }

    #[test]
    fn follower_fallback_is_batched_not_serial() {
        // Eight threads race on the same batch of K oversized ranges
        // (budget 128 B, ranges 1 KiB: never admitted). One thread leads
        // the first backend batch; every other thread's follower wait
        // comes back empty and must fall back — as ONE concurrent batch,
        // not K serial `get_range` round trips.
        const K: u64 = 6;
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![9u8; 1 << 16])).unwrap();
        let sim = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 77);
        let store = std::sync::Arc::new(CachedStore::new(sim, 128));
        let reqs: Vec<RangeRequest> = (0..K)
            .map(|i| RangeRequest::new("blob", i * 1024, 1024))
            .collect();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let latencies: Vec<(SimDuration, SimDuration)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = store.clone();
                    let reqs = reqs.clone();
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        barrier.wait();
                        let batch = store.get_ranges(&reqs).unwrap();
                        for (i, p) in batch.parts.iter().enumerate() {
                            assert_eq!(p.bytes.len(), 1024, "part {i} intact");
                        }
                        (batch.batch_wait, batch.batch_latency)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Nothing was admittable, so every thread fetched every range
        // from the backend exactly once…
        assert_eq!(store.inner().stats().read_requests, 8 * K);
        let (hits, misses) = store.hit_stats();
        assert_eq!((hits, misses), (0, 8 * K), "one miss per logical read");
        // …but in batch-shaped rounds: the old fallback issued one
        // single-range backend request per follower per range (1 + 7·K
        // batches); batched fallbacks stay well under that.
        assert!(
            store.inner().stats().batches < 1 + 7 * K,
            "fallbacks must coalesce into batches, saw {} backend batches",
            store.inner().stats().batches
        );
        // Batch-shaped latency: a serial fallback would charge the SUM of
        // K ~45 ms waits (≈ 270 ms); a concurrent batch charges maxes.
        // Rounds overlap, so even a straggler stays far below the sum.
        for (wait, total) in &latencies {
            assert!(
                wait.as_millis_f64() < 150.0,
                "wait {wait} must be max-shaped, not a {K}-round-trip sum"
            );
            assert!(*total >= *wait);
        }
    }

    #[test]
    fn concurrent_batches_sharing_ranges_do_not_double_fetch() {
        let store = std::sync::Arc::new(CachedStore::new(cloud(), 1 << 20));
        let reqs: Vec<RangeRequest> = (0..6)
            .map(|i| RangeRequest::new("blob", i * 512, 512))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let reqs = reqs.clone();
                s.spawn(move || {
                    let batch = store.get_ranges(&reqs).unwrap();
                    assert_eq!(batch.parts.len(), 6);
                    for (i, p) in batch.parts.iter().enumerate() {
                        assert_eq!(p.bytes.len(), 512, "part {i} intact");
                    }
                });
            }
        });
        // 8 threads × 6 ranges, but each distinct range was fetched from
        // the backend exactly once.
        assert_eq!(store.inner().stats().read_requests, 6);
        let (hits, misses) = store.hit_stats();
        assert_eq!(misses, 6);
        assert_eq!(hits + misses, 8 * 6);
    }

    // -- tiered admission ---------------------------------------------------

    #[test]
    fn data_scan_cannot_evict_index_ranges() {
        // THE tiering regression test: a Data-heavy scan far exceeding the
        // data budget must not evict an Index-class range.
        let store = CachedStore::with_budgets(cloud(), 300, 200);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 128)])
            .unwrap();
        assert_eq!(store.stats().index_bytes, 128);
        // Scan 64 data ranges of 100 B through a 300 B data budget.
        for i in 0..64 {
            store.get_range("blob", 1_000 + i * 100, 100).unwrap();
        }
        let warm = store
            .get_ranges(&[RangeRequest::index("blob", 0, 128)])
            .unwrap();
        assert_eq!(
            warm.batch_latency,
            SimDuration::ZERO,
            "index range must survive the data scan"
        );
        let stats = store.stats();
        assert_eq!(stats.index_hits, 1);
        assert_eq!(stats.index_misses, 1);
        assert_eq!(stats.data_misses, 64);
        assert_eq!(stats.index_bytes, 128);
        assert!(stats.data_bytes <= 300);
    }

    #[test]
    fn flat_cache_baseline_evicts_index_under_data_pressure() {
        // With tiering disabled (index budget 0), the same workload DOES
        // evict the index range — the behaviour tiering exists to fix.
        let store = CachedStore::with_budgets(cloud(), 300, 0);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 128)])
            .unwrap();
        for i in 0..64 {
            store.get_range("blob", 1_000 + i * 100, 100).unwrap();
        }
        let refetch = store
            .get_ranges(&[RangeRequest::index("blob", 0, 128)])
            .unwrap();
        assert!(
            refetch.batch_latency > SimDuration::ZERO,
            "flat cache loses the index range to data churn"
        );
        assert_eq!(store.stats().index_misses, 2);
    }

    #[test]
    fn oversized_index_range_falls_back_to_data_tier() {
        // An index range bigger than the whole index budget is cached in
        // the data tier instead — never worse than the flat cache.
        let store = CachedStore::with_budgets(cloud(), 1 << 20, 64);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 1024)])
            .unwrap();
        let stats = store.stats();
        assert_eq!(stats.index_bytes, 0);
        assert_eq!(stats.data_bytes, 1024);
        // …and still hits on re-read.
        let warm = store
            .get_ranges(&[RangeRequest::index("blob", 0, 1024)])
            .unwrap();
        assert_eq!(warm.batch_latency, SimDuration::ZERO);
        assert_eq!(store.stats().index_hits, 1);
    }

    #[test]
    fn index_tier_evicts_lru_among_index_entries_only() {
        let store = CachedStore::with_budgets(cloud(), 1 << 20, 200);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 100)])
            .unwrap(); // A
        store
            .get_ranges(&[RangeRequest::index("blob", 100, 100)])
            .unwrap(); // B — index tier full
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 100)])
            .unwrap(); // A refreshed
        store
            .get_ranges(&[RangeRequest::index("blob", 200, 100)])
            .unwrap(); // C — evicts B (LRU within the tier)
        assert!(store.stats().index_bytes <= 200);
        let a = store
            .get_ranges(&[RangeRequest::index("blob", 0, 100)])
            .unwrap();
        assert_eq!(a.batch_latency, SimDuration::ZERO, "A survived");
        let b = store
            .get_ranges(&[RangeRequest::index("blob", 100, 100)])
            .unwrap();
        assert!(b.batch_latency > SimDuration::ZERO, "B was the victim");
    }

    #[test]
    fn writes_invalidate_index_tier_too() {
        let store = CachedStore::with_budgets(cloud(), 1 << 20, 1 << 16);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 16)])
            .unwrap();
        assert_eq!(store.stats().index_bytes, 16);
        store.put("blob", Bytes::from(vec![5u8; 1 << 16])).unwrap();
        assert_eq!(store.stats().index_bytes, 0, "invalidated");
        let refetched = store
            .get_ranges(&[RangeRequest::index("blob", 0, 16)])
            .unwrap();
        assert!(refetched.batch_latency > SimDuration::ZERO);
        assert_eq!(&refetched.parts[0].bytes[..], &[5u8; 16]);
    }

    #[test]
    fn per_tier_accounting_is_exact() {
        // hits + misses == logical reads, and each ledger only counts its
        // own class — including intra-batch duplicates.
        let store = CachedStore::with_budgets(cloud(), 1 << 20, 1 << 16);
        let reqs = vec![
            RangeRequest::index("blob", 0, 64), // index miss
            RangeRequest::index("blob", 0, 64), // duplicate → index hit
            RangeRequest::new("blob", 64, 64),  // data miss
            RangeRequest::new("blob", 128, 64), // data miss
            RangeRequest::new("blob", 128, 64), // duplicate → data hit
        ];
        store.get_ranges(&reqs).unwrap();
        let s = store.stats();
        assert_eq!((s.index_hits, s.index_misses), (1, 1));
        assert_eq!((s.data_hits, s.data_misses), (1, 2));
        assert_eq!(s.hits() + s.misses(), 5, "one count per logical read");
        assert_eq!(store.hit_stats(), (2, 3), "summed view stays compatible");
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn default_budget_reserves_an_index_slice() {
        // `new` carves out budget/8 for the index tier in addition to the
        // data budget, so header pinning works without opting in.
        let store = CachedStore::new(cloud(), 800);
        store
            .get_ranges(&[RangeRequest::index("blob", 0, 64)])
            .unwrap();
        for i in 0..32 {
            store.get_range("blob", 1_000 + i * 100, 100).unwrap();
        }
        let warm = store
            .get_ranges(&[RangeRequest::index("blob", 0, 64)])
            .unwrap();
        assert_eq!(warm.batch_latency, SimDuration::ZERO);
    }
}
