//! Client-side read cache.
//!
//! The paper notes that "node caching may reduce communications, [but]
//! allocating a large enough cache to store the entire index is
//! prohibitively expensive" (§I), and its scalability study (Appendix B-B)
//! points at "a more aggressive caching policy" as future work for small
//! corpora. [`CachedStore`] is that extension: a byte-budgeted LRU over
//! ranged reads. Cache hits cost zero simulated latency — they never leave
//! the client.

use crate::latency::{LatencySample, SimDuration};
use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest};
use crate::Result;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache key: one exact ranged read.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RangeKey {
    name: String,
    offset: u64,
    len: u64,
}

/// LRU state: entries plus a monotone use counter.
#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<RangeKey, (Bytes, u64)>,
    bytes: usize,
    tick: u64,
}

impl LruState {
    fn get(&mut self, key: &RangeKey) -> Option<Bytes> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(data, used)| {
            *used = tick;
            data.clone()
        })
    }

    fn insert(&mut self, key: RangeKey, data: Bytes, budget: usize) {
        if data.len() > budget {
            return; // larger than the whole cache: don't thrash
        }
        self.tick += 1;
        self.bytes += data.len();
        self.entries.insert(key, (data, self.tick));
        while self.bytes > budget {
            // Evict the least recently used entry.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over budget");
            if let Some((data, _)) = self.entries.remove(&victim) {
                self.bytes -= data.len();
            }
        }
    }
}

/// An [`ObjectStore`] decorator that caches ranged reads in client memory.
///
/// Whole-object `get`s are treated as ranged reads of the full length so
/// repeated header fetches also hit. Writes and deletes invalidate the
/// touched blob's entries.
pub struct CachedStore<S> {
    inner: S,
    budget: usize,
    lru: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: ObjectStore> CachedStore<S> {
    /// Wrap `inner` with a cache holding at most `budget_bytes`.
    pub fn new(inner: S, budget_bytes: usize) -> Self {
        CachedStore {
            inner,
            budget: budget_bytes,
            lru: Mutex::new(LruState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// `(hits, misses)` counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.lru.lock().bytes
    }

    fn invalidate(&self, name: &str) {
        let mut lru = self.lru.lock();
        let victims: Vec<RangeKey> = lru
            .entries
            .keys()
            .filter(|k| k.name == name)
            .cloned()
            .collect();
        for k in victims {
            if let Some((data, _)) = lru.entries.remove(&k) {
                lru.bytes -= data.len();
            }
        }
    }

    fn lookup(&self, key: &RangeKey) -> Option<Fetched> {
        let cached = self.lru.lock().get(key);
        match cached {
            Some(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Fetched {
                    bytes,
                    latency: LatencySample::ZERO,
                })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn admit(&self, key: RangeKey, bytes: &Bytes) {
        self.lru.lock().insert(key, bytes.clone(), self.budget);
    }
}

impl<S: ObjectStore> ObjectStore for CachedStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.invalidate(name);
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        let size = self.inner.size_of(name)?;
        self.get_range(name, 0, size)
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        let key = RangeKey {
            name: name.to_owned(),
            offset,
            len,
        };
        if let Some(hit) = self.lookup(&key) {
            return Ok(hit);
        }
        let fetched = self.inner.get_range(name, offset, len)?;
        self.admit(key, &fetched.bytes);
        Ok(fetched)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        // Serve hits locally; fetch only the misses as one (smaller) batch.
        let mut parts: Vec<Option<Fetched>> = Vec::with_capacity(requests.len());
        let mut missing: Vec<(usize, RangeRequest)> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let key = RangeKey {
                name: r.name.clone(),
                offset: r.offset,
                len: r.len,
            };
            match self.lookup(&key) {
                Some(hit) => parts.push(Some(hit)),
                None => {
                    parts.push(None);
                    missing.push((i, r.clone()));
                }
            }
        }
        let (mut wait, mut download) = (SimDuration::ZERO, SimDuration::ZERO);
        if !missing.is_empty() {
            let reqs: Vec<RangeRequest> = missing.iter().map(|(_, r)| r.clone()).collect();
            let batch = self.inner.get_ranges(&reqs)?;
            wait = batch.batch_wait;
            download = batch.batch_download;
            for ((i, r), fetched) in missing.into_iter().zip(batch.parts) {
                self.admit(
                    RangeKey {
                        name: r.name,
                        offset: r.offset,
                        len: r.len,
                    },
                    &fetched.bytes,
                );
                parts[i] = Some(fetched);
            }
        }
        Ok(BatchFetch {
            parts: parts.into_iter().map(|p| p.expect("all filled")).collect(),
            batch_latency: wait + download,
            batch_wait: wait,
            batch_download: download,
        })
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.invalidate(name);
        self.inner.delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStore, LatencyModel, SimulatedCloudStore};

    fn cloud() -> SimulatedCloudStore<InMemoryStore> {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![9u8; 1 << 16])).unwrap();
        SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 1)
    }

    #[test]
    fn repeated_reads_hit_cache_and_cost_nothing() {
        let store = CachedStore::new(cloud(), 1 << 20);
        let cold = store.get_range("blob", 0, 1024).unwrap();
        assert!(cold.latency.total() > SimDuration::ZERO);
        let warm = store.get_range("blob", 0, 1024).unwrap();
        assert_eq!(warm.latency.total(), SimDuration::ZERO);
        assert_eq!(warm.bytes, cold.bytes);
        assert_eq!(store.hit_stats(), (1, 1));
    }

    #[test]
    fn different_ranges_are_distinct_entries() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 100).unwrap();
        let miss = store.get_range("blob", 0, 200).unwrap();
        assert!(miss.latency.total() > SimDuration::ZERO);
        assert_eq!(store.hit_stats(), (0, 2));
    }

    #[test]
    fn lru_evicts_under_budget_pressure() {
        let store = CachedStore::new(cloud(), 300);
        store.get_range("blob", 0, 100).unwrap(); // A
        store.get_range("blob", 100, 100).unwrap(); // B
        store.get_range("blob", 200, 100).unwrap(); // C — budget full
        store.get_range("blob", 0, 100).unwrap(); // A hits, refreshes
        store.get_range("blob", 300, 100).unwrap(); // D — evicts B (LRU)
        assert!(store.cached_bytes() <= 300);
        let a = store.get_range("blob", 0, 100).unwrap();
        assert_eq!(a.latency.total(), SimDuration::ZERO, "A survived");
        let b = store.get_range("blob", 100, 100).unwrap();
        assert!(b.latency.total() > SimDuration::ZERO, "B was evicted");
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let store = CachedStore::new(cloud(), 128);
        store.get_range("blob", 0, 1024).unwrap();
        assert_eq!(store.cached_bytes(), 0);
    }

    #[test]
    fn writes_invalidate() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 16).unwrap();
        store.put("blob", Bytes::from(vec![1u8; 1 << 16])).unwrap();
        let refetched = store.get_range("blob", 0, 16).unwrap();
        assert!(refetched.latency.total() > SimDuration::ZERO);
        assert_eq!(&refetched.bytes[..], &[1u8; 16]);
    }

    #[test]
    fn batch_fetches_only_misses() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get_range("blob", 0, 64).unwrap();
        let reqs = vec![
            RangeRequest::new("blob", 0, 64),   // hit
            RangeRequest::new("blob", 64, 64),  // miss
            RangeRequest::new("blob", 128, 64), // miss
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.parts.len(), 3);
        assert_eq!(store.hit_stats().0, 1);
        // A fully-warm batch is free.
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.batch_latency, SimDuration::ZERO);
    }

    #[test]
    fn whole_get_caches_as_full_range() {
        let store = CachedStore::new(cloud(), 1 << 20);
        store.get("blob").unwrap();
        let warm = store.get("blob").unwrap();
        assert_eq!(warm.latency.total(), SimDuration::ZERO);
    }
}
