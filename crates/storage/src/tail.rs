//! [`TailStore`]: an in-memory overlay over a durable object store, the
//! storage half of streaming ingestion.
//!
//! A memtable must serve freshly appended documents through the *same*
//! staged planner that serves durable segments — and that planner batches
//! every segment's ranged reads through one store handle
//! (`get_ranges`). The overlay makes that possible: the memtable's
//! mini-index and its future corpus blob are **staged** in an in-memory
//! tail map layered over the durable store, so one `TailStore` handle
//! resolves durable blobs from the inner store and staged blobs from
//! memory, mixed freely within a single batch.
//!
//! Routing rules:
//!
//! * Reads (`get`, `get_range`, `get_ranges`, `size_of`, `exists`,
//!   `version_of`) consult the tail first and fall through to the inner
//!   store. Tail hits cost zero simulated latency — they are local
//!   memory, not cloud round trips, which is exactly the freshness story:
//!   a just-appended doc is searchable without waiting for durability.
//! * Writes under the configured **staging prefix** land in the tail;
//!   everything else (real segment builds, manifests, corpus flushes)
//!   goes straight to the inner store — so a flush pays real (simulated,
//!   possibly fault-injected) I/O while memtable rebuilds stay free.
//! * [`TailStore::stage`] / [`TailStore::unstage`] pin arbitrary names
//!   into the tail regardless of prefix. Ingestion stages the corpus
//!   batch under its *final durable name* up front, so document hits
//!   carry identical `(blob, offset, len)` coordinates before and after
//!   the flush makes the blob real.
//!
//! The overlay is a first-class [`ObjectStore`], so it composes with the
//! rest of the stack: beneath a cache, above a [`crate::FlakyStore`] for
//! crash-during-flush tests, or over a [`crate::SimulatedCloudStore`].

use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest, Version};
use crate::{Result, StorageError};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An in-memory tail of staged blobs layered over a durable store.
///
/// See the [module docs](self) for the routing rules.
pub struct TailStore {
    inner: Arc<dyn ObjectStore>,
    staging_prefix: String,
    tail: RwLock<BTreeMap<String, Bytes>>,
}

impl TailStore {
    /// Overlay `inner` with an empty tail. Writes whose name starts with
    /// `staging_prefix` are held in memory; all other writes delegate.
    pub fn new(inner: Arc<dyn ObjectStore>, staging_prefix: impl Into<String>) -> Self {
        TailStore {
            inner,
            staging_prefix: staging_prefix.into(),
            tail: RwLock::new(BTreeMap::new()),
        }
    }

    /// The durable store beneath the overlay.
    pub fn inner(&self) -> &Arc<dyn ObjectStore> {
        &self.inner
    }

    /// The prefix whose writes are held in the tail.
    pub fn staging_prefix(&self) -> &str {
        &self.staging_prefix
    }

    /// Pin `data` into the tail under `name`, regardless of prefix. Reads
    /// of `name` resolve from memory until [`TailStore::unstage`].
    pub fn stage(&self, name: &str, data: Bytes) {
        self.tail.write().insert(name.to_owned(), data);
    }

    /// Drop a staged blob; reads fall through to the inner store again.
    /// Returns whether the name was staged.
    pub fn unstage(&self, name: &str) -> bool {
        self.tail.write().remove(name).is_some()
    }

    /// Drop every staged blob under `prefix`; returns how many were held.
    pub fn unstage_prefix(&self, prefix: &str) -> usize {
        let mut tail = self.tail.write();
        let doomed: Vec<String> = tail
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for name in &doomed {
            tail.remove(name);
        }
        doomed.len()
    }

    /// Whether `name` currently resolves from the tail.
    pub fn is_staged(&self, name: &str) -> bool {
        self.tail.read().contains_key(name)
    }

    /// Number of blobs currently held in the tail.
    pub fn staged_count(&self) -> usize {
        self.tail.read().len()
    }

    /// Total bytes currently held in the tail.
    pub fn staged_bytes(&self) -> u64 {
        self.tail.read().values().map(|b| b.len() as u64).sum()
    }

    fn staged_range(&self, name: &str, offset: u64, len: u64) -> Option<Result<Fetched>> {
        let tail = self.tail.read();
        let data = tail.get(name)?;
        let end = match offset.checked_add(len).filter(|&e| e <= data.len() as u64) {
            Some(e) => e,
            None => {
                return Some(Err(StorageError::RangeOutOfBounds {
                    name: name.to_owned(),
                    offset,
                    len,
                    blob_size: data.len() as u64,
                }))
            }
        };
        Some(Ok(Fetched::instant(
            data.slice(offset as usize..end as usize),
        )))
    }
}

impl std::fmt::Debug for TailStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TailStore")
            .field("staging_prefix", &self.staging_prefix)
            .field("staged_count", &self.staged_count())
            .finish_non_exhaustive()
    }
}

impl ObjectStore for TailStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        if name.starts_with(&self.staging_prefix) {
            self.stage(name, data);
            Ok(())
        } else {
            self.inner.put(name, data)
        }
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        if let Some(data) = self.tail.read().get(name) {
            return Ok(Fetched::instant(data.clone()));
        }
        self.inner.get(name)
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        match self.staged_range(name, offset, len) {
            Some(res) => res,
            None => self.inner.get_range(name, offset, len),
        }
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        // Partition: staged parts are free local reads; the rest stays
        // ONE inner batch so the backend's batch semantics (correlated
        // sampling, shared bandwidth, per-batch fault injection) hold.
        let mut parts: Vec<Option<Fetched>> = vec![None; requests.len()];
        let mut fallthrough = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            match self.staged_range(&r.name, r.offset, r.len) {
                Some(res) => parts[i] = Some(res?),
                None => fallthrough.push((i, r.clone())),
            }
        }
        let (batch_wait, batch_download) = if fallthrough.is_empty() {
            (crate::SimDuration::ZERO, crate::SimDuration::ZERO)
        } else {
            let inner_requests: Vec<RangeRequest> =
                fallthrough.iter().map(|(_, r)| r.clone()).collect();
            let inner_batch = self.inner.get_ranges(&inner_requests)?;
            for ((i, _), fetched) in fallthrough.iter().zip(inner_batch.parts) {
                parts[*i] = Some(fetched);
            }
            (inner_batch.batch_wait, inner_batch.batch_download)
        };
        let parts: Vec<Fetched> = parts
            .into_iter()
            .map(|p| p.expect("every request resolved from tail or inner"))
            .collect();
        Ok(BatchFetch {
            parts,
            batch_latency: batch_wait + batch_download,
            batch_wait,
            batch_download,
        })
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        if let Some(data) = self.tail.read().get(name) {
            return Ok(Version::of_bytes(data));
        }
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        if name.starts_with(&self.staging_prefix) || self.is_staged(name) {
            // CAS within the tail, serialized under one write lock.
            let mut tail = self.tail.write();
            let actual = tail
                .get(name)
                .map(|d| Version::of_bytes(d))
                .unwrap_or(Version::Absent);
            if actual != expected {
                return Err(StorageError::VersionMismatch {
                    name: name.to_owned(),
                    expected,
                    actual,
                });
            }
            let next = Version::of_bytes(&data);
            tail.insert(name.to_owned(), data);
            return Ok(next);
        }
        self.inner.put_if_version(name, data, expected)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        if let Some(data) = self.tail.read().get(name) {
            return Ok(data.len() as u64);
        }
        self.inner.size_of(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.is_staged(name) || self.inner.exists(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut names = self.inner.list(prefix)?;
        {
            let tail = self.tail.read();
            names.extend(
                tail.range(prefix.to_owned()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone()),
            );
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<()> {
        if self.tail.write().remove(name).is_some() {
            return Ok(());
        }
        self.inner.delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;

    fn overlay() -> TailStore {
        TailStore::new(Arc::new(InMemoryStore::new()), "idx/.memtable/")
    }

    #[test]
    fn staging_prefix_writes_stay_in_memory() {
        let store = overlay();
        store
            .put("idx/.memtable/b0/header", Bytes::from_static(b"hdr"))
            .unwrap();
        store
            .put("idx/seg-1/header", Bytes::from_static(b"dur"))
            .unwrap();
        assert!(store.is_staged("idx/.memtable/b0/header"));
        assert!(!store.is_staged("idx/seg-1/header"));
        assert!(store.inner().exists("idx/seg-1/header"));
        assert!(!store.inner().exists("idx/.memtable/b0/header"));
        assert_eq!(
            &store.get("idx/.memtable/b0/header").unwrap().bytes[..],
            b"hdr"
        );
        assert_eq!(&store.get("idx/seg-1/header").unwrap().bytes[..], b"dur");
    }

    #[test]
    fn staged_blob_shadows_inner_until_unstaged() {
        let store = overlay();
        store
            .inner()
            .put("c/batch", Bytes::from_static(b"durable"))
            .unwrap();
        store.stage("c/batch", Bytes::from_static(b"staged!"));
        assert_eq!(&store.get("c/batch").unwrap().bytes[..], b"staged!");
        assert!(store.unstage("c/batch"));
        assert_eq!(&store.get("c/batch").unwrap().bytes[..], b"durable");
        assert!(!store.unstage("c/batch"));
    }

    #[test]
    fn mixed_batches_resolve_in_request_order() {
        let store = overlay();
        store
            .inner()
            .put("dur", Bytes::from_static(b"0123456789"))
            .unwrap();
        store.stage("tail", Bytes::from_static(b"abcdefghij"));
        let batch = store
            .get_ranges(&[
                RangeRequest::new("tail", 0, 3),
                RangeRequest::new("dur", 2, 4),
                RangeRequest::new("tail", 5, 5),
                RangeRequest::new("dur", 0, 1),
            ])
            .unwrap();
        let got: Vec<&[u8]> = batch.parts.iter().map(|p| &p.bytes[..]).collect();
        assert_eq!(got, vec![&b"abc"[..], b"2345", b"fghij", b"0"]);
    }

    #[test]
    fn tail_only_batches_cost_zero_latency() {
        let store = overlay();
        store.stage("t", Bytes::from_static(b"xyz"));
        let batch = store.get_ranges(&[RangeRequest::new("t", 0, 3)]).unwrap();
        assert_eq!(batch.batch_latency, crate::SimDuration::ZERO);
    }

    #[test]
    fn staged_range_bounds_are_checked() {
        let store = overlay();
        store.stage("t", Bytes::from_static(b"0123"));
        assert!(matches!(
            store.get_range("t", 2, 5),
            Err(StorageError::RangeOutOfBounds { blob_size: 4, .. })
        ));
        assert!(store.get_range("t", u64::MAX, 1).is_err());
        assert_eq!(&store.get_range("t", 1, 2).unwrap().bytes[..], b"12");
    }

    #[test]
    fn list_merges_tail_and_inner_sorted() {
        let store = overlay();
        store.inner().put("a/1", Bytes::new()).unwrap();
        store.inner().put("a/3", Bytes::new()).unwrap();
        store.stage("a/2", Bytes::new());
        store.stage("a/3", Bytes::new()); // shadowed, not duplicated
        assert_eq!(store.list("a/").unwrap(), vec!["a/1", "a/2", "a/3"]);
    }

    #[test]
    fn unstage_prefix_drops_only_that_prefix() {
        let store = overlay();
        store.stage("idx/.memtable/b0/h", Bytes::new());
        store.stage("idx/.memtable/b0/s", Bytes::new());
        store.stage("idx/.memtable/b1/h", Bytes::new());
        store.stage("c/batch-0", Bytes::new());
        assert_eq!(store.unstage_prefix("idx/.memtable/b0/"), 2);
        assert_eq!(store.staged_count(), 2);
        assert!(store.is_staged("idx/.memtable/b1/h"));
        assert!(store.is_staged("c/batch-0"));
    }

    #[test]
    fn cas_routes_by_staging() {
        let store = overlay();
        // Non-staged name: the CAS reaches the durable store (this is the
        // manifest-publish path — durability must never be faked by the
        // tail).
        let v = store
            .put_if_version("idx/manifest", Bytes::from_static(b"gen1"), Version::Absent)
            .unwrap();
        assert!(store.inner().exists("idx/manifest"));
        store
            .put_if_version("idx/manifest", Bytes::from_static(b"gen2"), v)
            .unwrap();
        assert!(store
            .put_if_version("idx/manifest", Bytes::from_static(b"x"), v)
            .is_err());
        // Staged name: the CAS stays in the tail.
        store
            .put_if_version(
                "idx/.memtable/meta",
                Bytes::from_static(b"m1"),
                Version::Absent,
            )
            .unwrap();
        assert!(store.is_staged("idx/.memtable/meta"));
        assert!(!store.inner().exists("idx/.memtable/meta"));
    }

    #[test]
    fn delete_prefers_tail_then_inner() {
        let store = overlay();
        store.stage("x", Bytes::from_static(b"t"));
        store.inner().put("x", Bytes::from_static(b"d")).unwrap();
        store.delete("x").unwrap();
        assert_eq!(&store.get("x").unwrap().bytes[..], b"d");
        store.delete("x").unwrap();
        assert!(store.delete("x").is_err());
    }
}
