//! The [`ObjectStore`] trait: the blob-store API every component of the
//! reproduction reads and writes through.
//!
//! The paper assumes (§III-A) that cloud storage offers *random reads* —
//! fetching bytes from an arbitrary offset without a full-object read — which
//! all major vendors support via HTTP `Range` headers. The Airphant Builder
//! relies on this to pack many superposts into a single blob while the
//! Searcher retrieves any one of them in a single round-trip.

use crate::latency::{LatencySample, SimDuration};
use crate::Result;
use bytes::Bytes;

/// A blob payload together with the simulated latency its retrieval cost.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The fetched bytes.
    pub bytes: Bytes,
    /// Simulated request latency (zero for local backends).
    pub latency: LatencySample,
}

impl Fetched {
    /// Wrap raw bytes with zero latency.
    pub fn instant(bytes: Bytes) -> Self {
        Fetched {
            bytes,
            latency: LatencySample::ZERO,
        }
    }
}

/// A single ranged read request within a concurrent batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRequest {
    /// Blob name.
    pub name: String,
    /// Byte offset of the first byte to read.
    pub offset: u64,
    /// Number of bytes to read.
    pub len: u64,
}

impl RangeRequest {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, offset: u64, len: u64) -> Self {
        RangeRequest {
            name: name.into(),
            offset,
            len,
        }
    }
}

/// The result of one concurrent batch of ranged reads.
///
/// `batch_latency` is the *wall-clock* cost of the whole batch under the
/// parallel-request semantics of §II-C: all requests are issued at once, so
/// the batch completes when the slowest stream finishes, while transfers
/// share link bandwidth.
#[derive(Debug, Clone)]
pub struct BatchFetch {
    /// Per-request payloads, in request order.
    pub parts: Vec<Fetched>,
    /// Simulated latency of the whole concurrent batch.
    pub batch_latency: SimDuration,
    /// Wait component of the batch (max time-to-first-byte).
    pub batch_wait: SimDuration,
    /// Download component of the batch (shared-bandwidth transfer).
    pub batch_download: SimDuration,
}

impl BatchFetch {
    /// Total bytes fetched across all parts.
    pub fn total_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes.len() as u64).sum()
    }
}

/// Abstraction over named-blob storage with ranged and batched reads.
///
/// Implementations must be safe to share across threads; the Builder uploads
/// concurrently and the Searcher issues concurrent read batches.
pub trait ObjectStore: Send + Sync {
    /// Store (create or replace) a blob under `name`.
    fn put(&self, name: &str, data: Bytes) -> Result<()>;

    /// Fetch an entire blob.
    fn get(&self, name: &str) -> Result<Fetched>;

    /// Fetch `len` bytes starting at `offset`.
    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched>;

    /// Issue a *single batch of concurrent ranged reads* and return all
    /// payloads plus the simulated latency of the batch.
    ///
    /// The default implementation executes requests back-to-back but
    /// combines their simulated latencies with parallel semantics:
    /// `max(first_byte_i) + sum(transfer_i)` — a conservative model for
    /// backends that do not define their own contention behaviour.
    /// [`crate::SimulatedCloudStore`] overrides this with the calibrated
    /// shared-bandwidth model.
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        let mut parts = Vec::with_capacity(requests.len());
        let mut max_fb = SimDuration::ZERO;
        let mut total_transfer = SimDuration::ZERO;
        for r in requests {
            let f = self.get_range(&r.name, r.offset, r.len)?;
            max_fb = max_fb.max(f.latency.first_byte);
            total_transfer += f.latency.transfer;
            parts.push(f);
        }
        Ok(BatchFetch {
            parts,
            batch_latency: max_fb + total_transfer,
            batch_wait: max_fb,
            batch_download: total_transfer,
        })
    }

    /// Size of a blob in bytes.
    fn size_of(&self, name: &str) -> Result<u64>;

    /// Whether a blob exists.
    fn exists(&self, name: &str) -> bool {
        self.size_of(name).is_ok()
    }

    /// List blob names with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Delete a blob. Deleting a missing blob is an error.
    fn delete(&self, name: &str) -> Result<()>;

    /// Total bytes stored across blobs matching `prefix` (used for the
    /// storage-usage experiments, Figures 15 and 16d).
    fn usage(&self, prefix: &str) -> Result<u64> {
        let mut total = 0;
        for name in self.list(prefix)? {
            total += self.size_of(&name)?;
        }
        Ok(total)
    }
}

/// Blanket implementation so `Arc<S>`, `Box<S>`, `&S` all work as stores.
impl<S: ObjectStore + ?Sized> ObjectStore for std::sync::Arc<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        (**self).put(name, data)
    }
    fn get(&self, name: &str) -> Result<Fetched> {
        (**self).get(name)
    }
    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        (**self).get_range(name, offset, len)
    }
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        (**self).get_ranges(requests)
    }
    fn size_of(&self, name: &str) -> Result<u64> {
        (**self).size_of(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn delete(&self, name: &str) -> Result<()> {
        (**self).delete(name)
    }
    fn usage(&self, prefix: &str) -> Result<u64> {
        (**self).usage(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;

    #[test]
    fn default_batch_combines_latencies() {
        let store = InMemoryStore::new();
        store.put("a", Bytes::from_static(b"hello world")).unwrap();
        store.put("b", Bytes::from_static(b"goodbye")).unwrap();
        let batch = store
            .get_ranges(&[RangeRequest::new("a", 0, 5), RangeRequest::new("b", 0, 7)])
            .unwrap();
        assert_eq!(batch.parts.len(), 2);
        assert_eq!(&batch.parts[0].bytes[..], b"hello");
        assert_eq!(&batch.parts[1].bytes[..], b"goodbye");
        assert_eq!(batch.batch_latency, SimDuration::ZERO);
        assert_eq!(batch.total_bytes(), 12);
    }

    #[test]
    fn arc_blanket_impl_works() {
        let store = std::sync::Arc::new(InMemoryStore::new());
        store.put("x", Bytes::from_static(b"12345")).unwrap();
        assert_eq!(store.size_of("x").unwrap(), 5);
        assert!(store.exists("x"));
        assert!(!store.exists("y"));
    }

    #[test]
    fn usage_sums_over_prefix() {
        let store = InMemoryStore::new();
        store
            .put("idx/header", Bytes::from_static(b"1234"))
            .unwrap();
        store
            .put("idx/sp/0", Bytes::from_static(b"123456"))
            .unwrap();
        store.put("docs/a", Bytes::from_static(b"xx")).unwrap();
        assert_eq!(store.usage("idx/").unwrap(), 10);
        assert_eq!(store.usage("").unwrap(), 12);
    }
}
