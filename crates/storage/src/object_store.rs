//! The [`ObjectStore`] trait: the blob-store API every component of the
//! reproduction reads and writes through.
//!
//! The paper assumes (§III-A) that cloud storage offers *random reads* —
//! fetching bytes from an arbitrary offset without a full-object read — which
//! all major vendors support via HTTP `Range` headers. The Airphant Builder
//! relies on this to pack many superposts into a single blob while the
//! Searcher retrieves any one of them in a single round-trip.

use crate::latency::{LatencySample, SimDuration};
use crate::{Result, StorageError};
use bytes::Bytes;

/// A blob's version token for conditional (compare-and-swap) writes.
///
/// Cloud stores expose this as an ETag / object generation; here it is a
/// fingerprint of the blob's content, so any backend can derive it from
/// the bytes it already holds. Content-derived tokens are safe for the
/// manifest workload they serve: every manifest embeds a strictly
/// increasing generation number, so no two competing writes ever carry
/// identical bytes (no ABA window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// The blob does not exist (a CAS with this token is a create).
    Absent,
    /// The blob exists with this content fingerprint.
    Tag(u64),
}

impl Version {
    /// The version token of a blob holding exactly `data`.
    pub fn of_bytes(data: &[u8]) -> Version {
        // FNV-1a over content + length: stable, dependency-free.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in data {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= data.len() as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        Version::Tag(hash)
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Version::Absent => write!(f, "absent"),
            Version::Tag(t) => write!(f, "{t:016x}"),
        }
    }
}

/// A blob payload together with the simulated latency its retrieval cost.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The fetched bytes.
    pub bytes: Bytes,
    /// Simulated request latency (zero for local backends).
    pub latency: LatencySample,
}

impl Fetched {
    /// Wrap raw bytes with zero latency.
    pub fn instant(bytes: Bytes) -> Self {
        Fetched {
            bytes,
            latency: LatencySample::ZERO,
        }
    }
}

/// Which cache tier a requested range belongs to.
///
/// This is a *hint* threaded through [`ObjectStore::get_ranges`]: backends
/// are free to ignore it, but [`crate::CachedStore`] uses it for tiered
/// admission — Index-class ranges (segment headers, MHT, superpost
/// directory) are held under a small dedicated budget that bulky Data
/// traffic can never evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RangeClass {
    /// Small, high-fanout index structures touched by every query.
    Index,
    /// Superposting payloads — the per-atom posting bytes every query
    /// intersects. Cached in the Data tier but ledgered separately so
    /// posting traffic and document-verification traffic are
    /// distinguishable in [`crate::CacheStats`].
    Superpost,
    /// Bulk payload bytes (documents fetched for verification).
    #[default]
    Data,
}

/// A single ranged read request within a concurrent batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRequest {
    /// Blob name.
    pub name: String,
    /// Byte offset of the first byte to read.
    pub offset: u64,
    /// Number of bytes to read.
    pub len: u64,
    /// Cache-tier hint (defaults to [`RangeClass::Data`]).
    pub class: RangeClass,
}

impl RangeRequest {
    /// Convenience constructor for a Data-class request.
    pub fn new(name: impl Into<String>, offset: u64, len: u64) -> Self {
        RangeRequest {
            name: name.into(),
            offset,
            len,
            class: RangeClass::Data,
        }
    }

    /// Convenience constructor for an Index-class request.
    pub fn index(name: impl Into<String>, offset: u64, len: u64) -> Self {
        RangeRequest::new(name, offset, len).with_class(RangeClass::Index)
    }

    /// Convenience constructor for a Superpost-class request.
    pub fn superpost(name: impl Into<String>, offset: u64, len: u64) -> Self {
        RangeRequest::new(name, offset, len).with_class(RangeClass::Superpost)
    }

    /// Set the cache-tier hint.
    pub fn with_class(mut self, class: RangeClass) -> Self {
        self.class = class;
        self
    }
}

/// The result of one concurrent batch of ranged reads.
///
/// `batch_latency` is the *wall-clock* cost of the whole batch under the
/// parallel-request semantics of §II-C: all requests are issued at once, so
/// the batch completes when the slowest stream finishes, while transfers
/// share link bandwidth.
#[derive(Debug, Clone)]
pub struct BatchFetch {
    /// Per-request payloads, in request order.
    pub parts: Vec<Fetched>,
    /// Simulated latency of the whole concurrent batch.
    pub batch_latency: SimDuration,
    /// Wait component of the batch (max time-to-first-byte).
    pub batch_wait: SimDuration,
    /// Download component of the batch (shared-bandwidth transfer).
    pub batch_download: SimDuration,
}

impl BatchFetch {
    /// Total bytes fetched across all parts.
    pub fn total_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes.len() as u64).sum()
    }
}

/// Abstraction over named-blob storage with ranged and batched reads.
///
/// Implementations must be safe to share across threads; the Builder uploads
/// concurrently and the Searcher issues concurrent read batches.
pub trait ObjectStore: Send + Sync {
    /// Store (create or replace) a blob under `name`.
    fn put(&self, name: &str, data: Bytes) -> Result<()>;

    /// Fetch an entire blob.
    fn get(&self, name: &str) -> Result<Fetched>;

    /// Fetch `len` bytes starting at `offset`.
    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched>;

    /// Issue a *single batch of concurrent ranged reads* and return all
    /// payloads plus the simulated latency of the batch.
    ///
    /// The default implementation executes requests back-to-back but
    /// combines their simulated latencies with parallel semantics:
    /// `max(first_byte_i) + sum(transfer_i)` — a conservative model for
    /// backends that do not define their own contention behaviour.
    /// [`crate::SimulatedCloudStore`] overrides this with the calibrated
    /// shared-bandwidth model.
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        let mut parts = Vec::with_capacity(requests.len());
        let mut max_fb = SimDuration::ZERO;
        let mut total_transfer = SimDuration::ZERO;
        for r in requests {
            let f = self.get_range(&r.name, r.offset, r.len)?;
            max_fb = max_fb.max(f.latency.first_byte);
            total_transfer += f.latency.transfer;
            parts.push(f);
        }
        Ok(BatchFetch {
            parts,
            batch_latency: max_fb + total_transfer,
            batch_wait: max_fb,
            batch_download: total_transfer,
        })
    }

    /// The blob's current version token ([`Version::Absent`] if missing).
    fn version_of(&self, name: &str) -> Result<Version> {
        match self.get(name) {
            Ok(f) => Ok(Version::of_bytes(&f.bytes)),
            Err(StorageError::BlobNotFound { .. }) => Ok(Version::Absent),
            Err(e) => Err(e),
        }
    }

    /// Atomically replace `name` with `data` **iff** its current version
    /// equals `expected`; returns the new version on success and
    /// [`StorageError::VersionMismatch`] when another writer got there
    /// first. `Version::Absent` expresses create-if-missing.
    ///
    /// This is the compare-and-swap every manifest publish goes through:
    /// concurrent appenders re-read and retry on mismatch instead of
    /// silently overwriting each other. The default implementation is
    /// check-then-put and is only atomic for backends whose reads and
    /// writes already serialize through one lock; [`crate::InMemoryStore`]
    /// and [`crate::LocalFsStore`] override it with a properly serialized
    /// compare-and-swap, and decorators delegate to their inner store.
    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        let actual = self.version_of(name)?;
        if actual != expected {
            return Err(StorageError::VersionMismatch {
                name: name.to_owned(),
                expected,
                actual,
            });
        }
        let next = Version::of_bytes(&data);
        self.put(name, data)?;
        Ok(next)
    }

    /// Size of a blob in bytes.
    fn size_of(&self, name: &str) -> Result<u64>;

    /// Whether a blob exists.
    fn exists(&self, name: &str) -> bool {
        self.size_of(name).is_ok()
    }

    /// List blob names with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Delete a blob. Deleting a missing blob is an error.
    fn delete(&self, name: &str) -> Result<()>;

    /// Total bytes stored across blobs matching `prefix` (used for the
    /// storage-usage experiments, Figures 15 and 16d).
    fn usage(&self, prefix: &str) -> Result<u64> {
        let mut total = 0;
        for name in self.list(prefix)? {
            total += self.size_of(&name)?;
        }
        Ok(total)
    }
}

/// Blanket implementation so `Arc<S>`, `Box<S>`, `&S` all work as stores.
impl<S: ObjectStore + ?Sized> ObjectStore for std::sync::Arc<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        (**self).put(name, data)
    }
    fn get(&self, name: &str) -> Result<Fetched> {
        (**self).get(name)
    }
    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        (**self).get_range(name, offset, len)
    }
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        (**self).get_ranges(requests)
    }
    fn version_of(&self, name: &str) -> Result<Version> {
        (**self).version_of(name)
    }
    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        (**self).put_if_version(name, data, expected)
    }
    fn size_of(&self, name: &str) -> Result<u64> {
        (**self).size_of(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn delete(&self, name: &str) -> Result<()> {
        (**self).delete(name)
    }
    fn usage(&self, prefix: &str) -> Result<u64> {
        (**self).usage(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;

    #[test]
    fn default_batch_combines_latencies() {
        let store = InMemoryStore::new();
        store.put("a", Bytes::from_static(b"hello world")).unwrap();
        store.put("b", Bytes::from_static(b"goodbye")).unwrap();
        let batch = store
            .get_ranges(&[RangeRequest::new("a", 0, 5), RangeRequest::new("b", 0, 7)])
            .unwrap();
        assert_eq!(batch.parts.len(), 2);
        assert_eq!(&batch.parts[0].bytes[..], b"hello");
        assert_eq!(&batch.parts[1].bytes[..], b"goodbye");
        assert_eq!(batch.batch_latency, SimDuration::ZERO);
        assert_eq!(batch.total_bytes(), 12);
    }

    #[test]
    fn arc_blanket_impl_works() {
        let store = std::sync::Arc::new(InMemoryStore::new());
        store.put("x", Bytes::from_static(b"12345")).unwrap();
        assert_eq!(store.size_of("x").unwrap(), 5);
        assert!(store.exists("x"));
        assert!(!store.exists("y"));
    }

    #[test]
    fn usage_sums_over_prefix() {
        let store = InMemoryStore::new();
        store
            .put("idx/header", Bytes::from_static(b"1234"))
            .unwrap();
        store
            .put("idx/sp/0", Bytes::from_static(b"123456"))
            .unwrap();
        store.put("docs/a", Bytes::from_static(b"xx")).unwrap();
        assert_eq!(store.usage("idx/").unwrap(), 10);
        assert_eq!(store.usage("").unwrap(), 12);
    }
}
