//! Cross-query I/O scheduler: range coalescing and batch fusion.
//!
//! The paper's batch model (§II-C, `sim.rs`) prices a lookup by its round
//! trips: a batch of concurrent requests costs `max(first_byte_i)` of wait
//! plus a shared-bandwidth download, so *fewer, larger, concurrent* GETs
//! win. The planner already dedups identical ranges within one query;
//! [`CoalescingStore`] pushes the same idea below every engine:
//!
//! 1. **Range coalescing** — within one [`ObjectStore::get_ranges`] batch,
//!    requests to the same blob are sorted and merged whenever they
//!    overlap or sit within [`SchedulerConfig::coalesce_gap`] bytes of
//!    each other. The merged (fewer, larger) ranges are issued; each
//!    caller's exact bytes are sliced back out of the merged payloads,
//!    byte-for-byte identical to the uncoalesced fetch.
//! 2. **Cross-query batch fusion** — concurrent `get_ranges` callers that
//!    arrive within [`SchedulerConfig::batch_window`] (or before the
//!    accumulated batch reaches [`SchedulerConfig::max_batch_requests`])
//!    are fused into **one** backend batch by a submission queue with
//!    leader election: the first caller opens the batch and waits out the
//!    window, later callers append their requests and block, the leader
//!    issues the fused (coalesced) batch and hands every caller its
//!    slices. W server workers hitting the postings phase together pay
//!    one shared round trip instead of W.
//!
//! ## Simulated-clock semantics
//!
//! Each fused caller is charged the wait of the merged streams *its own
//! ranges* landed in (`max(first_byte)` over those streams — they are all
//! in flight concurrently, and streams it does not consume from do not
//! block it) and the byte-proportional share of the fused download its
//! slices account for. This preserves the per-query latency scale that
//! `ServerStats`/`qps_sim` replay on the virtual clock: fusion removes
//! round trips from the *backend* without inflating any single query's
//! simulated latency by other queries' bytes.
//!
//! The scheduler sits **below** [`crate::CachedStore`] in the serving
//! stack (`cloud → CoalescingStore → CachedStore → engine`): hits never
//! reach it, and the cache's single-flighted miss batches are exactly the
//! traffic worth coalescing and fusing. See `docs/adr/005-io-scheduler.md`
//! for the full stacking argument.

use crate::latency::{LatencySample, SimDuration};
use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest, Version};
use crate::{Result, StorageError};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`CoalescingStore`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Two same-blob ranges whose gap is at most this many bytes are
    /// merged into one read (overlapping/touching ranges always merge).
    /// The padding bytes fetched to bridge a gap trade download for a
    /// whole round trip — cheap under the paper's affine latency model.
    pub coalesce_gap: u64,
    /// A pending fused batch closes as soon as it holds this many
    /// requests, without waiting out the window.
    pub max_batch_requests: usize,
    /// How long (wall clock) the first caller of a fused batch waits for
    /// more callers before issuing. [`Duration::ZERO`] disables fusion
    /// entirely: every caller issues its own (still coalesced) batch.
    pub batch_window: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            coalesce_gap: 4096,
            max_batch_requests: 64,
            batch_window: Duration::from_micros(200),
        }
    }
}

impl SchedulerConfig {
    /// The default configuration (4 KiB gap, 64-request batches, 200 µs
    /// fusion window).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the merge gap in bytes.
    pub fn with_coalesce_gap(mut self, gap: u64) -> Self {
        self.coalesce_gap = gap;
        self
    }

    /// Set the fused-batch request cap (clamped to at least 1).
    pub fn with_max_batch_requests(mut self, max: usize) -> Self {
        self.max_batch_requests = max.max(1);
        self
    }

    /// Set the fusion window ([`Duration::ZERO`] disables fusion).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Coalescing only: merge ranges within each caller's batch but never
    /// hold a batch open for other callers.
    pub fn coalesce_only(self) -> Self {
        self.with_batch_window(Duration::ZERO)
    }
}

/// Aggregate counters of a [`CoalescingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Requests eliminated by merging (submitted minus issued).
    pub merged_ranges: u64,
    /// Backend batches that served two or more fused callers.
    pub fused_batches: u64,
    /// Bytes the backend did not have to send because overlapping ranges
    /// were fetched once (requested bytes minus their union).
    pub bytes_saved: u64,
    /// Padding bytes fetched to bridge sub-`coalesce_gap` gaps — the
    /// download price paid for the merged round trips.
    pub bytes_padded: u64,
    /// Total batches issued to the backend.
    pub backend_batches: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    merged_ranges: AtomicU64,
    fused_batches: AtomicU64,
    bytes_saved: AtomicU64,
    bytes_padded: AtomicU64,
    backend_batches: AtomicU64,
}

/// One pending fused batch: callers append requests while it is open; the
/// leader closes it, issues the fused fetch, and publishes per-caller
/// results.
struct BatchCell {
    data: Mutex<BatchData>,
    cv: Condvar,
}

struct BatchData {
    requests: Vec<RangeRequest>,
    /// Per caller: `(start, count)` span into `requests`.
    spans: Vec<(usize, usize)>,
    /// No further callers may join (the leader is about to issue).
    closed: bool,
    /// Per-caller outcomes, filled by the leader; parallel to `spans`.
    results: Vec<Option<Result<BatchFetch>>>,
    done: bool,
}

/// Unblocks followers if the leader unwinds before publishing results —
/// the scheduler mirror of the cache's claim guard.
struct LeaderGuard<'a> {
    cell: &'a BatchCell,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut d = self.cell.data.lock().unwrap_or_else(|e| e.into_inner());
        for slot in d.results.iter_mut() {
            if slot.is_none() {
                *slot = Some(Err(StorageError::Io(std::io::Error::other(
                    "scheduler leader panicked before publishing the fused batch",
                ))));
            }
        }
        d.done = true;
        self.cell.cv.notify_all();
    }
}

/// An [`ObjectStore`] decorator that merges ranged reads into fewer,
/// larger backend requests and fuses concurrent batches into one shared
/// round trip. Pure pass-through for writes, listings, and CAS.
pub struct CoalescingStore<S> {
    inner: S,
    config: SchedulerConfig,
    stats: StatCells,
    /// The currently-open fused batch, if any.
    open: Mutex<Option<Arc<BatchCell>>>,
}

impl<S: ObjectStore> CoalescingStore<S> {
    /// Wrap `inner` with the default [`SchedulerConfig`].
    pub fn new(inner: S) -> Self {
        Self::with_config(inner, SchedulerConfig::default())
    }

    /// Wrap `inner` with an explicit configuration.
    pub fn with_config(inner: S, config: SchedulerConfig) -> Self {
        CoalescingStore {
            inner,
            config,
            stats: StatCells::default(),
            open: Mutex::new(None),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Snapshot the scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            merged_ranges: self.stats.merged_ranges.load(Ordering::Relaxed),
            fused_batches: self.stats.fused_batches.load(Ordering::Relaxed),
            bytes_saved: self.stats.bytes_saved.load(Ordering::Relaxed),
            bytes_padded: self.stats.bytes_padded.load(Ordering::Relaxed),
            backend_batches: self.stats.backend_batches.load(Ordering::Relaxed),
        }
    }

    /// Coalesce `requests`, issue the merged batch, and record stats.
    fn fetch_merged(&self, requests: &[RangeRequest]) -> Result<MergedFetch> {
        let (merged, assignment, union_len) = coalesce(requests, self.config.coalesce_gap);
        let batch = self.inner.get_ranges(&merged)?;
        let requested: u64 = requests.iter().map(|r| r.len).sum();
        let fetched: u64 = merged.iter().map(|m| m.len).sum();
        let mut requested_per_merged = vec![0u64; merged.len()];
        for (i, r) in requests.iter().enumerate() {
            requested_per_merged[assignment[i]] += r.len;
        }
        self.stats.backend_batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .merged_ranges
            .fetch_add((requests.len() - merged.len()) as u64, Ordering::Relaxed);
        // Overlap dedup (requested beyond the union was fetched once) and
        // gap padding (fetched beyond the union) are separate ledgers: a
        // padded merge spends download to save a round trip, and must not
        // silently cancel real savings out of the report.
        self.stats
            .bytes_saved
            .fetch_add(requested.saturating_sub(union_len), Ordering::Relaxed);
        self.stats
            .bytes_padded
            .fetch_add(fetched.saturating_sub(union_len), Ordering::Relaxed);
        Ok(MergedFetch {
            merged,
            assignment,
            requested_per_merged,
            batch,
        })
    }

    /// The coalesce-only path: one caller, one (merged) backend batch.
    fn coalesced_solo(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        let mf = self.fetch_merged(requests)?;
        let parts: Vec<Fetched> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| mf.slice(mf.assignment[i], r))
            .collect();
        Ok(BatchFetch {
            parts,
            batch_latency: mf.batch.batch_wait + mf.batch.batch_download,
            batch_wait: mf.batch.batch_wait,
            batch_download: mf.batch.batch_download,
        })
    }

    /// Join the open fused batch (or open a new one as its leader).
    /// Returns the cell, this caller's span index, and leadership.
    fn join_or_open(&self, requests: &[RangeRequest]) -> (Arc<BatchCell>, usize, bool) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cell) = open.clone() {
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            if !d.closed {
                let start = d.requests.len();
                d.requests.extend_from_slice(requests);
                d.spans.push((start, requests.len()));
                d.results.push(None);
                let idx = d.spans.len() - 1;
                if d.requests.len() >= self.config.max_batch_requests {
                    // Full: close now and wake the leader early.
                    d.closed = true;
                    cell.cv.notify_all();
                    drop(d);
                    *open = None;
                    return (cell, idx, false);
                }
                drop(d);
                return (cell, idx, false);
            }
            // Closed but not yet detached by its leader: start fresh.
        }
        let closed = requests.len() >= self.config.max_batch_requests;
        let cell = Arc::new(BatchCell {
            data: Mutex::new(BatchData {
                requests: requests.to_vec(),
                spans: vec![(0, requests.len())],
                closed,
                results: vec![None],
                done: false,
            }),
            cv: Condvar::new(),
        });
        // A batch born full can never accept a joiner — publishing it
        // would only make later callers lock a dead cell before opening
        // their own.
        if !closed {
            *open = Some(cell.clone());
        }
        (cell, 0, true)
    }

    /// The fusion path: leader waits out the window, issues the fused
    /// batch, and distributes per-caller slices; followers block for
    /// their share.
    fn fused_get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        let (cell, my_idx, leader) = self.join_or_open(requests);
        if !leader {
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            while !d.done {
                d = cell.cv.wait(d).unwrap_or_else(|e| e.into_inner());
            }
            return d.results[my_idx].take().expect("one result per caller");
        }

        // Leader: hold the batch open for the window (or until full).
        let deadline = Instant::now() + self.config.batch_window;
        {
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            while !d.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = cell
                    .cv
                    .wait_timeout(d, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                d = g;
            }
        }
        // Close and detach under the queue lock (queue → cell order, same
        // as join_or_open) so late arrivals open a fresh batch.
        {
            let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            d.closed = true;
            if let Some(cur) = open.as_ref() {
                if Arc::ptr_eq(cur, &cell) {
                    *open = None;
                }
            }
        }
        let (fused_requests, spans) = {
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            (std::mem::take(&mut d.requests), d.spans.clone())
        };
        if spans.len() > 1 {
            self.stats.fused_batches.fetch_add(1, Ordering::Relaxed);
        }

        // From here on followers are waiting on us: the guard publishes
        // error results if the backend (or slicing) panics.
        let mut guard = LeaderGuard {
            cell: &cell,
            armed: true,
        };
        let outcome = self.fetch_merged(&fused_requests);
        let mut results: Vec<Option<Result<BatchFetch>>> = match &outcome {
            Ok(mf) => spans
                .iter()
                .map(|&(start, count)| Some(Ok(mf.caller_batch(&fused_requests, start, count))))
                .collect(),
            Err(e) => spans.iter().map(|_| Some(Err(clone_error(e)))).collect(),
        };
        let mine = results[my_idx].take().expect("leader result");
        {
            let mut d = cell.data.lock().unwrap_or_else(|e| e.into_inner());
            d.results = results;
            d.done = true;
            cell.cv.notify_all();
        }
        guard.armed = false;
        mine
    }
}

/// A coalesced backend fetch plus the bookkeeping to slice callers' exact
/// ranges back out of the merged payloads.
struct MergedFetch {
    merged: Vec<RangeRequest>,
    /// Original request index → merged request index.
    assignment: Vec<usize>,
    /// Sum of the original request lengths folded into each merged range
    /// — the denominator that splits a merged stream's whole transfer
    /// time (gap padding included) across the requests that caused it.
    requested_per_merged: Vec<u64>,
    batch: BatchFetch,
}

impl MergedFetch {
    /// Slice request `r`'s exact bytes out of merged part `m`, attributing
    /// a byte-proportional share of the merged stream's transfer time
    /// (the full stream, so padding bytes are charged, not vanished).
    fn slice(&self, m: usize, r: &RangeRequest) -> Fetched {
        let merged = &self.merged[m];
        let part = &self.batch.parts[m];
        let start = (r.offset - merged.offset) as usize;
        let bytes = part.bytes.slice(start..start + r.len as usize);
        let share = if self.requested_per_merged[m] > 0 {
            r.len as f64 / self.requested_per_merged[m] as f64
        } else {
            0.0
        };
        Fetched {
            bytes,
            latency: LatencySample {
                first_byte: part.latency.first_byte,
                transfer: part.latency.transfer * share,
            },
        }
    }

    /// Assemble one fused caller's [`BatchFetch`]: its sliced parts, the
    /// max first-byte over the merged streams *it* consumes from, and its
    /// byte-proportional download share (see the module docs).
    fn caller_batch(&self, fused: &[RangeRequest], start: usize, count: usize) -> BatchFetch {
        let mut parts = Vec::with_capacity(count);
        let mut wait = SimDuration::ZERO;
        let mut download = SimDuration::ZERO;
        for (i, r) in fused.iter().enumerate().skip(start).take(count) {
            let m = self.assignment[i];
            let part = self.slice(m, r);
            wait = wait.max(self.batch.parts[m].latency.first_byte);
            download += part.latency.transfer;
            parts.push(part);
        }
        BatchFetch {
            parts,
            batch_latency: wait + download,
            batch_wait: wait,
            batch_download: download,
        }
    }
}

/// Sort requests per blob and merge overlapping / gap-≤`gap` neighbours.
/// Returns the merged requests, each original request's merged index, and
/// the total length of the requests' union (for the dedup-vs-padding
/// byte ledgers).
fn coalesce(requests: &[RangeRequest], gap: u64) -> (Vec<RangeRequest>, Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&requests[a], &requests[b]);
        (&ra.name, ra.offset, ra.len).cmp(&(&rb.name, rb.offset, rb.len))
    });
    let mut merged: Vec<RangeRequest> = Vec::new();
    let mut assignment = vec![0usize; requests.len()];
    // Union bookkeeping: how far the current blob's coverage extends.
    let mut union_len = 0u64;
    let mut covered: Option<(&str, u64)> = None;
    for &i in &order {
        let r = &requests[i];
        let end = r.offset + r.len;
        match &mut covered {
            Some((name, covered_end)) if *name == r.name => {
                if end > *covered_end {
                    union_len += end - (*covered_end).max(r.offset);
                    *covered_end = end;
                }
            }
            _ => {
                union_len += r.len;
                covered = Some((&r.name, end));
            }
        }
        let extend = matches!(
            merged.last(),
            Some(m) if m.name == r.name && r.offset <= (m.offset + m.len).saturating_add(gap)
        );
        if extend {
            let m = merged.last_mut().expect("matched Some above");
            let merged_end = end.max(m.offset + m.len);
            m.len = merged_end - m.offset;
        } else {
            merged.push(r.clone());
        }
        assignment[i] = merged.len() - 1;
    }
    (merged, assignment, union_len)
}

/// Structural clone for fanning one backend error out to every fused
/// caller ([`std::io::Error`] is not `Clone`; its message is preserved).
fn clone_error(e: &StorageError) -> StorageError {
    match e {
        StorageError::BlobNotFound { name } => StorageError::BlobNotFound { name: name.clone() },
        StorageError::RangeOutOfBounds {
            name,
            offset,
            len,
            blob_size,
        } => StorageError::RangeOutOfBounds {
            name: name.clone(),
            offset: *offset,
            len: *len,
            blob_size: *blob_size,
        },
        StorageError::Timeout { name } => StorageError::Timeout { name: name.clone() },
        StorageError::VersionMismatch {
            name,
            expected,
            actual,
        } => StorageError::VersionMismatch {
            name: name.clone(),
            expected: *expected,
            actual: *actual,
        },
        StorageError::Io(err) => StorageError::Io(std::io::Error::new(err.kind(), err.to_string())),
    }
}

impl<S: ObjectStore> ObjectStore for CoalescingStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        self.inner.get(name)
    }

    /// Single ranges pass straight through: there is nothing to merge,
    /// and holding a lone read hostage to the fusion window would tax
    /// every header fetch for no round-trip saving.
    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        self.inner.get_range(name, offset, len)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        if requests.is_empty() {
            return Ok(BatchFetch {
                parts: Vec::new(),
                batch_latency: SimDuration::ZERO,
                batch_wait: SimDuration::ZERO,
                batch_download: SimDuration::ZERO,
            });
        }
        if self.config.batch_window.is_zero() {
            self.coalesced_solo(requests)
        } else {
            self.fused_get_ranges(requests)
        }
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        self.inner.put_if_version(name, data, expected)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }

    fn usage(&self, prefix: &str) -> Result<u64> {
        self.inner.usage(prefix)
    }
}

// One scheduler serves a whole worker pool: the open-batch slot and the
// stat counters are the only mutable state, each behind its own lock.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CoalescingStore<crate::InMemoryStore>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStore, LatencyModel, SimulatedCloudStore};

    fn blob_store() -> InMemoryStore {
        let store = InMemoryStore::new();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        store.put("blob", Bytes::from(data)).unwrap();
        store.put("other", Bytes::from(vec![7u8; 1024])).unwrap();
        store
    }

    fn expect(offset: u64, len: u64) -> Vec<u8> {
        (offset as u32..(offset + len) as u32)
            .map(|i| (i % 251) as u8)
            .collect()
    }

    #[test]
    fn coalesce_merges_overlap_adjacency_and_gaps() {
        let reqs = vec![
            RangeRequest::new("blob", 0, 100),
            RangeRequest::new("blob", 50, 100), // overlaps the first
            RangeRequest::new("blob", 150, 50), // touches the merged end
            RangeRequest::new("blob", 230, 10), // 30-byte gap: merged at gap=32
            RangeRequest::new("blob", 400, 10), // far away: own range
        ];
        let (merged, assignment, union_len) = coalesce(&reqs, 32);
        assert_eq!(
            merged,
            vec![
                RangeRequest::new("blob", 0, 240),
                RangeRequest::new("blob", 400, 10),
            ]
        );
        assert_eq!(assignment, vec![0, 0, 0, 0, 1]);
        // Union: [0,200) ∪ [230,240) ∪ [400,410) = 220 bytes.
        assert_eq!(union_len, 220);
        // gap = 0 still merges overlap and touch, but not the gap.
        let (merged, _, _) = coalesce(&reqs, 0);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn coalesce_never_crosses_blobs() {
        let reqs = vec![
            RangeRequest::new("a", 0, 10),
            RangeRequest::new("b", 0, 10),
            RangeRequest::new("a", 10, 10),
        ];
        let (merged, assignment, union_len) = coalesce(&reqs, 1024);
        assert_eq!(
            merged,
            vec![RangeRequest::new("a", 0, 20), RangeRequest::new("b", 0, 10)]
        );
        assert_eq!(assignment, vec![0, 1, 0]);
        assert_eq!(union_len, 30);
    }

    #[test]
    fn sliced_parts_are_byte_identical() {
        let store = CoalescingStore::with_config(
            blob_store(),
            SchedulerConfig::new().coalesce_only().with_coalesce_gap(64),
        );
        let reqs = vec![
            RangeRequest::new("blob", 10, 90),
            RangeRequest::new("blob", 80, 40), // overlap
            RangeRequest::new("blob", 140, 8), // 20-byte gap
            RangeRequest::new("other", 0, 16),
            RangeRequest::new("blob", 3000, 96),
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.parts.len(), reqs.len());
        assert_eq!(&batch.parts[0].bytes[..], &expect(10, 90)[..]);
        assert_eq!(&batch.parts[1].bytes[..], &expect(80, 40)[..]);
        assert_eq!(&batch.parts[2].bytes[..], &expect(140, 8)[..]);
        assert_eq!(&batch.parts[3].bytes[..], &[7u8; 16][..]);
        assert_eq!(&batch.parts[4].bytes[..], &expect(3000, 96)[..]);
        let stats = store.stats();
        assert_eq!(stats.backend_batches, 1);
        // blob[10..180) fused 3 requests into 1; the others stayed.
        assert_eq!(stats.merged_ranges, 2);
    }

    #[test]
    fn backend_sees_fewer_requests_and_duplicate_bytes_once() {
        let inner = blob_store();
        let sim = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 3);
        let store = CoalescingStore::with_config(
            sim,
            SchedulerConfig::new().coalesce_only().with_coalesce_gap(0),
        );
        // Two fully-overlapping and one adjacent range: one backend read.
        let reqs = vec![
            RangeRequest::new("blob", 0, 256),
            RangeRequest::new("blob", 0, 256),
            RangeRequest::new("blob", 256, 256),
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.parts.len(), 3);
        assert_eq!(store.inner().stats().read_requests, 1);
        assert_eq!(store.inner().stats().bytes_read, 512);
        let stats = store.stats();
        assert_eq!(stats.merged_ranges, 2);
        assert_eq!(stats.bytes_saved, 256, "the duplicate range was free");
        // The batch is cheaper than three concurrent streams: one
        // first-byte sample, no per-stream dispatch overhead.
        assert!(batch.batch_wait > SimDuration::ZERO);
    }

    #[test]
    fn gap_padding_and_overlap_savings_are_separate_ledgers() {
        let store = CoalescingStore::with_config(
            blob_store(),
            SchedulerConfig::new()
                .coalesce_only()
                .with_coalesce_gap(100),
        );
        let reqs = vec![
            RangeRequest::new("blob", 0, 10),
            RangeRequest::new("blob", 0, 10), // duplicate: 10 bytes saved
            RangeRequest::new("blob", 100, 10), // 90 padding bytes fetched
        ];
        store.get_ranges(&reqs).unwrap();
        let stats = store.stats();
        assert_eq!(stats.merged_ranges, 2);
        assert_eq!(
            stats.bytes_saved, 10,
            "the duplicate's bytes, not net of padding"
        );
        assert_eq!(stats.bytes_padded, 90, "the gap bridge is its own ledger");
    }

    #[test]
    fn zero_len_and_empty_batches() {
        let store =
            CoalescingStore::with_config(blob_store(), SchedulerConfig::new().coalesce_only());
        let empty = store.get_ranges(&[]).unwrap();
        assert!(empty.parts.is_empty());
        assert_eq!(empty.batch_latency, SimDuration::ZERO);
        let batch = store
            .get_ranges(&[
                RangeRequest::new("blob", 64, 0),
                RangeRequest::new("blob", 64, 32),
            ])
            .unwrap();
        assert!(batch.parts[0].bytes.is_empty());
        assert_eq!(&batch.parts[1].bytes[..], &expect(64, 32)[..]);
    }

    #[test]
    fn solo_latency_matches_inner_batch() {
        let sim = SimulatedCloudStore::new(blob_store(), LatencyModel::gcs_like(), 9);
        let store = CoalescingStore::with_config(sim, SchedulerConfig::new().coalesce_only());
        let reqs = vec![
            RangeRequest::new("blob", 0, 128),
            RangeRequest::new("blob", 2048, 128),
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        assert_eq!(batch.batch_latency, batch.batch_wait + batch.batch_download);
        assert!(batch.batch_wait > SimDuration::ZERO);
        // Per-part transfer attribution sums to (at most) the download.
        let parts_sum: f64 = batch
            .parts
            .iter()
            .map(|p| p.latency.transfer.as_secs_f64())
            .sum();
        assert!(parts_sum <= batch.batch_download.as_secs_f64() + 1e-9);
    }

    #[test]
    fn concurrent_callers_fuse_into_one_backend_batch() {
        // Two callers, two requests each; max_batch_requests = 4 closes
        // the batch deterministically the moment the second caller joins
        // (the 5 s window is only the upper bound, never waited out).
        let sim = SimulatedCloudStore::new(blob_store(), LatencyModel::gcs_like(), 17);
        let store = Arc::new(CoalescingStore::with_config(
            sim,
            SchedulerConfig::new()
                .with_coalesce_gap(0)
                .with_max_batch_requests(4)
                .with_batch_window(Duration::from_secs(5)),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let batches: Vec<BatchFetch> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let store = store.clone();
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        let reqs = vec![
                            RangeRequest::new("blob", t * 1000, 100),
                            RangeRequest::new("blob", t * 1000 + 200, 100),
                        ];
                        barrier.wait();
                        store.get_ranges(&reqs).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, batch) in batches.iter().enumerate() {
            let base = t as u64 * 1000;
            assert_eq!(&batch.parts[0].bytes[..], &expect(base, 100)[..]);
            assert_eq!(&batch.parts[1].bytes[..], &expect(base + 200, 100)[..]);
            assert!(batch.batch_wait > SimDuration::ZERO, "shared wait charged");
        }
        let stats = store.stats();
        assert_eq!(stats.backend_batches, 1, "one fused backend batch");
        assert_eq!(stats.fused_batches, 1);
        assert_eq!(store.inner().stats().batches, 1);
        assert_eq!(store.inner().stats().read_requests, 4);
    }

    #[test]
    fn fused_callers_share_overlapping_ranges() {
        // Both callers want the same hot range: fused AND merged — the
        // backend reads the bytes once.
        let sim = SimulatedCloudStore::new(blob_store(), LatencyModel::gcs_like(), 23);
        let store = Arc::new(CoalescingStore::with_config(
            sim,
            SchedulerConfig::new()
                .with_coalesce_gap(0)
                .with_max_batch_requests(2)
                .with_batch_window(Duration::from_secs(5)),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let store = store.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    barrier.wait();
                    let batch = store
                        .get_ranges(&[RangeRequest::new("blob", 512, 256)])
                        .unwrap();
                    assert_eq!(&batch.parts[0].bytes[..], &expect(512, 256)[..]);
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.fused_batches, 1);
        assert_eq!(store.inner().stats().read_requests, 1);
        assert_eq!(stats.bytes_saved, 256);
    }

    #[test]
    fn window_zero_never_fuses() {
        let store = Arc::new(CoalescingStore::with_config(
            blob_store(),
            SchedulerConfig::new().coalesce_only(),
        ));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    store
                        .get_ranges(&[RangeRequest::new("blob", 0, 64)])
                        .unwrap();
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.fused_batches, 0);
        assert_eq!(stats.backend_batches, 4);
    }

    #[test]
    fn lone_caller_is_released_by_the_window() {
        let sim = SimulatedCloudStore::new(blob_store(), LatencyModel::gcs_like(), 5);
        let store = CoalescingStore::with_config(
            sim,
            SchedulerConfig::new().with_batch_window(Duration::from_millis(5)),
        );
        // No other caller ever arrives: the leader times out and issues.
        let batch = store
            .get_ranges(&[RangeRequest::new("blob", 0, 64)])
            .unwrap();
        assert_eq!(&batch.parts[0].bytes[..], &expect(0, 64)[..]);
        assert_eq!(store.stats().fused_batches, 0);
        assert_eq!(store.stats().backend_batches, 1);
    }

    #[test]
    fn fused_errors_reach_every_caller() {
        let store = Arc::new(CoalescingStore::with_config(
            blob_store(),
            SchedulerConfig::new()
                .with_max_batch_requests(2)
                .with_batch_window(Duration::from_secs(5)),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let errors: Vec<StorageError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let store = store.clone();
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        barrier.wait();
                        store
                            .get_ranges(&[RangeRequest::new("missing", 0, 8)])
                            .unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in &errors {
            assert!(
                matches!(e, StorageError::BlobNotFound { name } if name == "missing"),
                "typed error preserved across the fan-out, got {e:?}"
            );
        }
        // The scheduler recovers: the next batch works.
        let store = Arc::try_unwrap(store).ok().expect("threads joined");
        let batch = store
            .get_ranges(&[
                RangeRequest::new("blob", 0, 8),
                RangeRequest::new("blob", 8, 8),
            ])
            .unwrap();
        assert_eq!(&batch.parts[0].bytes[..], &expect(0, 8)[..]);
    }

    /// Panics on the first `get_ranges`, succeeds afterwards.
    struct PanicOnceStore {
        inner: InMemoryStore,
        panicked: std::sync::atomic::AtomicBool,
    }

    impl ObjectStore for PanicOnceStore {
        fn put(&self, name: &str, data: Bytes) -> Result<()> {
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
            self.inner.get_range(name, offset, len)
        }
        fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected backend panic");
            }
            self.inner.get_ranges(requests)
        }
        fn size_of(&self, name: &str) -> Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn leader_panic_does_not_strand_followers() {
        let inner = PanicOnceStore {
            inner: blob_store(),
            panicked: std::sync::atomic::AtomicBool::new(false),
        };
        let store = Arc::new(CoalescingStore::with_config(
            inner,
            SchedulerConfig::new()
                .with_max_batch_requests(2)
                .with_batch_window(Duration::from_secs(5)),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let store = store.clone();
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        barrier.wait();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            store.get_ranges(&[RangeRequest::new("blob", 0, 8)])
                        }))
                        .is_ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The leader unwound; the follower got an error result instead of
        // hanging on the condvar forever.
        assert_eq!(outcomes.iter().filter(|&&ok| ok).count(), 1);
        // And the scheduler still works for the next caller.
        let batch = store
            .get_ranges(&[RangeRequest::new("blob", 0, 8)])
            .unwrap();
        assert_eq!(&batch.parts[0].bytes[..], &expect(0, 8)[..]);
    }

    #[test]
    fn writes_and_metadata_pass_through() {
        let store = CoalescingStore::new(InMemoryStore::new());
        store.put("x", Bytes::from_static(b"12345")).unwrap();
        assert_eq!(store.size_of("x").unwrap(), 5);
        assert!(store.exists("x"));
        assert_eq!(store.get("x").unwrap().bytes.len(), 5);
        assert_eq!(store.get_range("x", 1, 3).unwrap().bytes.len(), 3);
        assert_eq!(store.list("").unwrap(), vec!["x".to_string()]);
        assert_eq!(store.usage("").unwrap(), 5);
        let v = store.version_of("x").unwrap();
        store
            .put_if_version("x", Bytes::from_static(b"67890"), v)
            .unwrap();
        store.delete("x").unwrap();
        assert!(!store.exists("x"));
    }
}
