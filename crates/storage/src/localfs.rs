//! Local-filesystem object store.
//!
//! Maps blob names to files under a root directory, with `/` in blob names
//! creating subdirectories — the same naming convention the paper gets from
//! mounting a bucket with `gcsfuse`. Useful for persisting built indexes
//! across runs and for the runnable examples.

use crate::object_store::{Fetched, ObjectStore, Version};
use crate::{Result, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Component, Path, PathBuf};

/// An [`ObjectStore`] over a directory tree.
#[derive(Debug)]
pub struct LocalFsStore {
    root: PathBuf,
    /// Serializes conditional writes (the filesystem has no native CAS);
    /// atomic within this process, which is the scope the tests and CLI
    /// need — a real deployment points at a bucket with native
    /// preconditions instead.
    cas: Mutex<()>,
}

impl LocalFsStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalFsStore {
            root,
            cas: Mutex::new(()),
        })
    }

    /// The root directory of this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Resolve a blob name to a path, rejecting traversal outside the root.
    fn path_for(&self, name: &str) -> Result<PathBuf> {
        let rel = Path::new(name);
        let safe = rel.components().all(|c| matches!(c, Component::Normal(_)));
        if !safe || name.is_empty() {
            return Err(StorageError::BlobNotFound {
                name: name.to_owned(),
            });
        }
        Ok(self.root.join(rel))
    }

    fn walk(&self, dir: &Path, out: &mut Vec<String>) -> Result<()> {
        if !dir.exists() {
            return Ok(());
        }
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                self.walk(&path, out)?;
            } else if let Ok(rel) = path.strip_prefix(&self.root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
        Ok(())
    }
}

impl ObjectStore for LocalFsStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let path = self.path_for(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, &data)?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        let path = self.path_for(name)?;
        let data = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::BlobNotFound {
                    name: name.to_owned(),
                }
            } else {
                StorageError::Io(e)
            }
        })?;
        Ok(Fetched::instant(Bytes::from(data)))
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        let path = self.path_for(name)?;
        let mut file = fs::File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::BlobNotFound {
                    name: name.to_owned(),
                }
            } else {
                StorageError::Io(e)
            }
        })?;
        let blob_size = file.metadata()?.len();
        let end = offset.checked_add(len).filter(|&e| e <= blob_size);
        if end.is_none() {
            return Err(StorageError::RangeOutOfBounds {
                name: name.to_owned(),
                offset,
                len,
                blob_size,
            });
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        Ok(Fetched::instant(Bytes::from(buf)))
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        match self.get(name) {
            Ok(f) => Ok(Version::of_bytes(&f.bytes)),
            Err(StorageError::BlobNotFound { .. }) => Ok(Version::Absent),
            Err(e) => Err(e),
        }
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        let _guard = self.cas.lock();
        let actual = self.version_of(name)?;
        if actual != expected {
            return Err(StorageError::VersionMismatch {
                name: name.to_owned(),
                expected,
                actual,
            });
        }
        let next = Version::of_bytes(&data);
        self.put(name, data)?;
        Ok(next)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        let path = self.path_for(name)?;
        let meta = fs::metadata(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::BlobNotFound {
                    name: name.to_owned(),
                }
            } else {
                StorageError::Io(e)
            }
        })?;
        Ok(meta.len())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        self.walk(&self.root.clone(), &mut out)?;
        out.retain(|n| n.starts_with(prefix));
        out.sort();
        Ok(out)
    }

    fn delete(&self, name: &str) -> Result<()> {
        let path = self.path_for(name)?;
        fs::remove_file(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::BlobNotFound {
                    name: name.to_owned(),
                }
            } else {
                StorageError::Io(e)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "airphant-localfs-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_roundtrip_with_subdirs() {
        let dir = tempdir("roundtrip");
        let store = LocalFsStore::new(&dir).unwrap();
        store
            .put("index/superposts/block-0", Bytes::from_static(b"payload"))
            .unwrap();
        let f = store.get("index/superposts/block-0").unwrap();
        assert_eq!(&f.bytes[..], b"payload");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn ranged_read_matches_memory_semantics() {
        let dir = tempdir("range");
        let store = LocalFsStore::new(&dir).unwrap();
        store.put("b", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(&store.get_range("b", 2, 3).unwrap().bytes[..], b"234");
        assert!(store.get_range("b", 9, 5).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_and_delete() {
        let dir = tempdir("list");
        let store = LocalFsStore::new(&dir).unwrap();
        store.put("a/1", Bytes::from_static(b"x")).unwrap();
        store.put("a/2", Bytes::from_static(b"y")).unwrap();
        store.put("b/1", Bytes::from_static(b"z")).unwrap();
        assert_eq!(store.list("a/").unwrap(), vec!["a/1", "a/2"]);
        store.delete("a/1").unwrap();
        assert_eq!(store.list("a/").unwrap(), vec!["a/2"]);
        assert!(store.delete("a/1").is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rejects_path_traversal() {
        let dir = tempdir("traversal");
        let store = LocalFsStore::new(&dir).unwrap();
        assert!(store.put("../escape", Bytes::from_static(b"no")).is_err());
        assert!(store.get("..").is_err());
        assert!(store.get("").is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn put_if_version_roundtrip() {
        let dir = tempdir("cas");
        let store = LocalFsStore::new(&dir).unwrap();
        let v1 = store
            .put_if_version("idx/manifest", Bytes::from_static(b"gen1"), Version::Absent)
            .unwrap();
        assert_eq!(store.version_of("idx/manifest").unwrap(), v1);
        let v2 = store
            .put_if_version("idx/manifest", Bytes::from_static(b"gen2"), v1)
            .unwrap();
        assert!(matches!(
            store.put_if_version("idx/manifest", Bytes::from_static(b"late"), v1),
            Err(StorageError::VersionMismatch { .. })
        ));
        assert_eq!(store.version_of("idx/manifest").unwrap(), v2);
        assert_eq!(&store.get("idx/manifest").unwrap().bytes[..], b"gen2");
        assert_eq!(store.version_of("idx/other").unwrap(), Version::Absent);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_blob_maps_to_not_found() {
        let dir = tempdir("missing");
        let store = LocalFsStore::new(&dir).unwrap();
        match store.get("nope") {
            Err(StorageError::BlobNotFound { name }) => assert_eq!(name, "nope"),
            other => panic!("expected BlobNotFound, got {other:?}"),
        }
        fs::remove_dir_all(dir).unwrap();
    }
}
