//! Failure injection and retries.
//!
//! Cloud object stores fail transiently (throttling, connection resets,
//! §IV-G's "dormant storage or network congestion"). [`FlakyStore`] injects
//! seeded transient failures for testing; [`RetryingStore`] wraps any store
//! with bounded retries plus simulated backoff latency, so engines built on
//! it survive the injected faults — the failure-injection half of the
//! reliability story (§IV-G handles the *slow*-response half).

use crate::latency::SimDuration;
use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest, Version};
use crate::{Result, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A store decorator that makes reads fail with a seeded probability, and
/// can additionally be armed to fail *writes* after a countdown — the
/// crash-injection hook for crash-consistency tests (a builder that dies
/// between its block puts and its header put).
pub struct FlakyStore<S> {
    inner: S,
    /// Read-failure probability, stored as `f64::to_bits` so outage tests
    /// can flip a region flaky (and heal it) mid-stream without `&mut`.
    failure_probability: AtomicU64,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
    /// Writes remaining before puts start failing; `u64::MAX` disables.
    puts_until_failure: AtomicU64,
}

impl<S: ObjectStore> FlakyStore<S> {
    /// Fail each read independently with `failure_probability`.
    pub fn new(inner: S, failure_probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&failure_probability));
        FlakyStore {
            inner,
            failure_probability: AtomicU64::new(failure_probability.to_bits()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
            puts_until_failure: AtomicU64::new(u64::MAX),
        }
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Change the read-failure probability at runtime (the region-outage
    /// sweep sets 1.0 to take a region down, then 0.0 to heal it).
    pub fn set_failure_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        self.failure_probability
            .store(p.to_bits(), Ordering::SeqCst);
    }

    /// The current read-failure probability.
    pub fn failure_probability(&self) -> f64 {
        f64::from_bits(self.failure_probability.load(Ordering::SeqCst))
    }

    /// Arm deterministic write faults: allow `remaining` more successful
    /// `put`s, then fail every subsequent write (including conditional
    /// writes) with [`StorageError::Timeout`] until re-armed. This is how
    /// tests simulate a builder crashing mid-persist.
    pub fn fail_puts_after(&self, remaining: u64) {
        self.puts_until_failure.store(remaining, Ordering::SeqCst);
    }

    /// Disarm write faults (writes succeed again, as after a node restart).
    pub fn heal_puts(&self) {
        self.puts_until_failure.store(u64::MAX, Ordering::SeqCst);
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn maybe_fail(&self, name: &str) -> Result<()> {
        let roll: f64 = self.rng.lock().gen();
        if roll < self.failure_probability() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Timeout {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    fn maybe_fail_put(&self, name: &str) -> Result<()> {
        loop {
            let remaining = self.puts_until_failure.load(Ordering::SeqCst);
            if remaining == u64::MAX {
                return Ok(());
            }
            if remaining == 0 {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Timeout {
                    name: name.to_owned(),
                });
            }
            if self
                .puts_until_failure
                .compare_exchange(remaining, remaining - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

impl<S: ObjectStore> ObjectStore for FlakyStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.maybe_fail_put(name)?;
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        self.maybe_fail(name)?;
        self.inner.get(name)
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        self.maybe_fail(name)?;
        self.inner.get_range(name, offset, len)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        // One failure roll per batch: a real client retries individual
        // failed streams, so the *batch-level* retry a caller observes
        // happens at roughly the per-request rate, not amplified by the
        // batch width.
        if let Some(first) = requests.first() {
            self.maybe_fail(&first.name)?;
        }
        self.inner.get_ranges(requests)
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        // Armed write faults hit conditional writes too (a crash does not
        // care which kind of put was in flight); every injected fault
        // lands in the same `injected_failures` accounting.
        self.maybe_fail_put(name)?;
        self.inner.put_if_version(name, data, expected)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }
}

/// A store decorator that retries transient read failures with exponential
/// simulated backoff. Non-transient errors (missing blobs, bad ranges)
/// surface immediately.
pub struct RetryingStore<S> {
    inner: S,
    max_attempts: u32,
    base_backoff: SimDuration,
    retries: AtomicU64,
}

impl<S: ObjectStore> RetryingStore<S> {
    /// Retry up to `max_attempts` total tries with exponential backoff
    /// starting at `base_backoff` (added to the returned simulated
    /// latency, since a retried request waited that long).
    pub fn new(inner: S, max_attempts: u32, base_backoff: SimDuration) -> Self {
        assert!(max_attempts >= 1);
        RetryingStore {
            inner,
            max_attempts,
            base_backoff,
            retries: AtomicU64::new(0),
        }
    }

    /// Number of retried attempts so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The wrapped store (e.g. to read a [`FlakyStore`]'s fault counter).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn is_transient(err: &StorageError) -> bool {
        matches!(err, StorageError::Timeout { .. } | StorageError::Io(_))
    }

    fn with_retries<T>(
        &self,
        mut op: impl FnMut() -> Result<T>,
        add_backoff: impl FnOnce(&mut T, SimDuration),
    ) -> Result<T> {
        let mut backoff_total = SimDuration::ZERO;
        let mut backoff = self.base_backoff;
        for attempt in 1..=self.max_attempts {
            match op() {
                Ok(mut v) => {
                    add_backoff(&mut v, backoff_total);
                    return Ok(v);
                }
                Err(e) if Self::is_transient(&e) && attempt < self.max_attempts => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    backoff_total += backoff;
                    backoff = backoff * 2.0;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop always returns")
    }
}

impl<S: ObjectStore> ObjectStore for RetryingStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.inner.put(name, data)
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        // Pass through like `put`. Crucially, a VersionMismatch is NOT
        // transient: blindly re-issuing the same conditional write would
        // lose another writer's update. The manifest CAS loop re-reads
        // and retries at its own layer.
        self.inner.put_if_version(name, data, expected)
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        self.with_retries(
            || self.inner.get(name),
            |f, backoff| f.latency.first_byte += backoff,
        )
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        self.with_retries(
            || self.inner.get_range(name, offset, len),
            |f, backoff| f.latency.first_byte += backoff,
        )
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        self.with_retries(
            || self.inner.get_ranges(requests),
            |b, backoff| {
                b.batch_wait += backoff;
                b.batch_latency += backoff;
            },
        )
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }
}

// Failure injection and retries are exercised from parallel lookups; the
// RNG sits behind a lock and every counter is atomic.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FlakyStore<crate::InMemoryStore>>();
    assert_send_sync::<RetryingStore<FlakyStore<crate::InMemoryStore>>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;

    fn flaky(p: f64, seed: u64) -> FlakyStore<InMemoryStore> {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![5u8; 4096])).unwrap();
        FlakyStore::new(inner, p, seed)
    }

    #[test]
    fn flaky_injects_failures_at_rate() {
        let store = flaky(0.3, 1);
        let mut failures = 0;
        for _ in 0..200 {
            if store.get_range("blob", 0, 64).is_err() {
                failures += 1;
            }
        }
        assert!((30..90).contains(&failures), "saw {failures}/200 failures");
        assert_eq!(store.injected_failures(), failures);
    }

    #[test]
    fn flaky_zero_probability_never_fails() {
        let store = flaky(0.0, 1);
        for _ in 0..50 {
            store.get_range("blob", 0, 64).unwrap();
        }
    }

    #[test]
    fn failure_probability_toggles_at_runtime() {
        let store = flaky(0.0, 1);
        for _ in 0..20 {
            store.get_range("blob", 0, 64).unwrap();
        }
        store.set_failure_probability(1.0);
        assert_eq!(store.failure_probability(), 1.0);
        assert!(matches!(
            store.get_range("blob", 0, 64),
            Err(StorageError::Timeout { .. })
        ));
        store.set_failure_probability(0.0);
        for _ in 0..20 {
            store.get_range("blob", 0, 64).unwrap();
        }
    }

    #[test]
    fn armed_write_faults_fail_puts_deterministically() {
        let store = flaky(0.0, 1);
        store.fail_puts_after(2);
        store.put("a", Bytes::from_static(b"1")).unwrap();
        store.put("b", Bytes::from_static(b"2")).unwrap();
        // Third write "crashes", and so does every one after it —
        // including conditional writes.
        assert!(matches!(
            store.put("c", Bytes::from_static(b"3")),
            Err(StorageError::Timeout { .. })
        ));
        assert!(matches!(
            store.put_if_version("d", Bytes::from_static(b"4"), Version::Absent),
            Err(StorageError::Timeout { .. })
        ));
        assert_eq!(store.injected_failures(), 2);
        assert!(!store.inner().exists("c"));
        // After the "restart", writes work again.
        store.heal_puts();
        store.put("c", Bytes::from_static(b"3")).unwrap();
        assert!(store.inner().exists("c"));
    }

    #[test]
    fn version_mismatch_is_not_retried() {
        let inner = InMemoryStore::new();
        inner.put("m", Bytes::from_static(b"gen1")).unwrap();
        let store = RetryingStore::new(inner, 5, SimDuration::from_millis(1));
        let stale = Version::of_bytes(b"something-else");
        assert!(matches!(
            store.put_if_version("m", Bytes::from_static(b"gen2"), stale),
            Err(StorageError::VersionMismatch { .. })
        ));
        assert_eq!(store.retries(), 0, "CAS losses must surface immediately");
    }

    #[test]
    fn retrying_recovers_from_transient_failures() {
        let store = RetryingStore::new(flaky(0.4, 7), 8, SimDuration::from_millis(10));
        for _ in 0..100 {
            let f = store.get_range("blob", 0, 64).unwrap();
            assert_eq!(f.bytes.len(), 64);
        }
        assert!(store.retries() > 10, "retries should have happened");
    }

    #[test]
    fn retrying_charges_backoff_latency() {
        // Force failure on the first attempt: probability 1 would always
        // fail, so use a seeded sequence where the first roll fails.
        let store = RetryingStore::new(flaky(0.5, 3), 10, SimDuration::from_millis(25));
        // Run until we observe a fetched result whose wait includes backoff.
        let mut saw_backoff = false;
        for _ in 0..50 {
            let f = store.get_range("blob", 0, 64).unwrap();
            if f.latency.first_byte >= SimDuration::from_millis(25) {
                saw_backoff = true;
                break;
            }
        }
        assert!(saw_backoff, "some retried request should carry backoff");
    }

    #[test]
    fn retrying_gives_up_after_max_attempts() {
        let store = RetryingStore::new(flaky(1.0, 5), 3, SimDuration::from_millis(1));
        match store.get_range("blob", 0, 64) {
            Err(StorageError::Timeout { .. }) => {}
            other => panic!("expected Timeout after exhausting retries, got {other:?}"),
        }
        assert_eq!(store.retries(), 2, "attempts - 1 retries");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let inner = InMemoryStore::new();
        let store = RetryingStore::new(inner, 5, SimDuration::from_millis(1));
        assert!(matches!(
            store.get("missing"),
            Err(StorageError::BlobNotFound { .. })
        ));
        assert_eq!(store.retries(), 0);
    }

    #[test]
    fn concurrent_lookups_all_retried_to_success_with_exact_counters() {
        // 8 threads × 200 reads through a shared RetryingStore over a 30%
        // flaky backend: every read must succeed, and the injected/retry
        // counters must account for every event exactly (no lost updates).
        let store = std::sync::Arc::new(RetryingStore::new(
            flaky(0.3, 99),
            32,
            SimDuration::from_millis(1),
        ));
        let per_thread_reads = 200u64;
        let threads = 8u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..per_thread_reads {
                        let offset = ((t * per_thread_reads + i) * 7) % 4032;
                        let f = store.get_range("blob", offset, 64).unwrap();
                        assert_eq!(f.bytes.len(), 64);
                    }
                });
            }
        });
        let injected = store.inner.injected_failures();
        let retries = store.retries();
        // With 32 attempts and p=0.3, exhausting retries is impossible in
        // practice, so every injected failure was followed by exactly one
        // retry: the two counters must agree event-for-event.
        assert_eq!(
            retries, injected,
            "every injected failure retried exactly once"
        );
        let total = threads * per_thread_reads;
        // ~30% failure rate: the counters also have to be in a sane band,
        // not just equal (both racing to the same wrong value would hide).
        let expected = (total as f64 * 0.3 / 0.7) as u64;
        assert!(
            injected > expected / 2 && injected < expected * 2,
            "injected {injected} should be near {expected}"
        );
    }

    #[test]
    fn concurrent_batches_recover_and_count_exactly() {
        let store = std::sync::Arc::new(RetryingStore::new(
            flaky(0.25, 1234),
            32,
            SimDuration::from_millis(2),
        ));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let store = store.clone();
                s.spawn(move || {
                    let reqs = vec![
                        RangeRequest::new("blob", 0, 64),
                        RangeRequest::new("blob", 64, 64),
                        RangeRequest::new("blob", 128, 64),
                    ];
                    for _ in 0..100 {
                        let b = store.get_ranges(&reqs).unwrap();
                        assert_eq!(b.parts.len(), 3);
                        assert_eq!(b.total_bytes(), 192);
                    }
                });
            }
        });
        assert_eq!(
            store.retries(),
            store.inner.injected_failures(),
            "no lost counter updates under parallel batch retries"
        );
    }

    #[test]
    fn batch_retry_retries_whole_batch() {
        let store = RetryingStore::new(flaky(0.3, 11), 10, SimDuration::from_millis(5));
        let reqs = vec![
            RangeRequest::new("blob", 0, 64),
            RangeRequest::new("blob", 64, 64),
        ];
        for _ in 0..30 {
            let b = store.get_ranges(&reqs).unwrap();
            assert_eq!(b.parts.len(), 2);
        }
    }
}
