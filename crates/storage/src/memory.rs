//! In-memory object store: the zero-latency reference backend.

use crate::object_store::{Fetched, ObjectStore, Version};
use crate::{Result, StorageError};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A thread-safe, in-memory blob store.
///
/// Used directly in unit tests and as the data backend beneath
/// [`crate::SimulatedCloudStore`] in every experiment: the simulation layer
/// supplies the latency, this type supplies the bytes.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    blobs: RwLock<BTreeMap<String, Bytes>>,
}

impl InMemoryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs currently stored.
    pub fn blob_count(&self) -> usize {
        self.blobs.read().len()
    }
}

impl ObjectStore for InMemoryStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.blobs.write().insert(name.to_owned(), data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        let blobs = self.blobs.read();
        let data = blobs.get(name).ok_or_else(|| StorageError::BlobNotFound {
            name: name.to_owned(),
        })?;
        Ok(Fetched::instant(data.clone()))
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        let blobs = self.blobs.read();
        let data = blobs.get(name).ok_or_else(|| StorageError::BlobNotFound {
            name: name.to_owned(),
        })?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len() as u64)
            .ok_or_else(|| StorageError::RangeOutOfBounds {
                name: name.to_owned(),
                offset,
                len,
                blob_size: data.len() as u64,
            })?;
        Ok(Fetched::instant(data.slice(offset as usize..end as usize)))
    }

    fn version_of(&self, name: &str) -> Result<Version> {
        let blobs = self.blobs.read();
        Ok(blobs
            .get(name)
            .map(|d| Version::of_bytes(d))
            .unwrap_or(Version::Absent))
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        // Compare and swap under one write-lock critical section: two
        // concurrent conditional writes serialize, and exactly one wins.
        let mut blobs = self.blobs.write();
        let actual = blobs
            .get(name)
            .map(|d| Version::of_bytes(d))
            .unwrap_or(Version::Absent);
        if actual != expected {
            return Err(StorageError::VersionMismatch {
                name: name.to_owned(),
                expected,
                actual,
            });
        }
        let next = Version::of_bytes(&data);
        blobs.insert(name.to_owned(), data);
        Ok(next)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        let blobs = self.blobs.read();
        blobs
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| StorageError::BlobNotFound {
                name: name.to_owned(),
            })
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let blobs = self.blobs.read();
        Ok(blobs
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, name: &str) -> Result<()> {
        let removed = self.blobs.write().remove(name);
        if removed.is_none() {
            return Err(StorageError::BlobNotFound {
                name: name.to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = InMemoryStore::new();
        store.put("greeting", Bytes::from_static(b"hello")).unwrap();
        let f = store.get("greeting").unwrap();
        assert_eq!(&f.bytes[..], b"hello");
    }

    #[test]
    fn get_missing_blob_errors() {
        let store = InMemoryStore::new();
        match store.get("ghost") {
            Err(StorageError::BlobNotFound { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected BlobNotFound, got {other:?}"),
        }
    }

    #[test]
    fn ranged_read_returns_slice() {
        let store = InMemoryStore::new();
        store.put("b", Bytes::from_static(b"0123456789")).unwrap();
        let f = store.get_range("b", 3, 4).unwrap();
        assert_eq!(&f.bytes[..], b"3456");
    }

    #[test]
    fn ranged_read_at_exact_end_is_ok() {
        let store = InMemoryStore::new();
        store.put("b", Bytes::from_static(b"0123456789")).unwrap();
        let f = store.get_range("b", 8, 2).unwrap();
        assert_eq!(&f.bytes[..], b"89");
        // Zero-length read at the end is also fine.
        let f = store.get_range("b", 10, 0).unwrap();
        assert!(f.bytes.is_empty());
    }

    #[test]
    fn ranged_read_past_end_errors() {
        let store = InMemoryStore::new();
        store.put("b", Bytes::from_static(b"0123456789")).unwrap();
        match store.get_range("b", 8, 5) {
            Err(StorageError::RangeOutOfBounds { blob_size, .. }) => assert_eq!(blob_size, 10),
            other => panic!("expected RangeOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn ranged_read_overflow_offset_errors() {
        let store = InMemoryStore::new();
        store.put("b", Bytes::from_static(b"01")).unwrap();
        assert!(store.get_range("b", u64::MAX, 2).is_err());
    }

    #[test]
    fn put_overwrites() {
        let store = InMemoryStore::new();
        store.put("k", Bytes::from_static(b"one")).unwrap();
        store.put("k", Bytes::from_static(b"two")).unwrap();
        assert_eq!(&store.get("k").unwrap().bytes[..], b"two");
        assert_eq!(store.blob_count(), 1);
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let store = InMemoryStore::new();
        for name in ["z", "a/2", "a/1", "a/10", "b/1"] {
            store.put(name, Bytes::new()).unwrap();
        }
        assert_eq!(store.list("a/").unwrap(), vec!["a/1", "a/10", "a/2"]);
        assert_eq!(store.list("").unwrap().len(), 5);
        assert!(store.list("missing/").unwrap().is_empty());
    }

    #[test]
    fn delete_removes_and_errors_on_missing() {
        let store = InMemoryStore::new();
        store.put("k", Bytes::from_static(b"v")).unwrap();
        store.delete("k").unwrap();
        assert!(!store.exists("k"));
        assert!(store.delete("k").is_err());
    }

    #[test]
    fn put_if_version_create_and_replace() {
        let store = InMemoryStore::new();
        // Create-if-missing.
        let v1 = store
            .put_if_version("m", Bytes::from_static(b"gen1"), Version::Absent)
            .unwrap();
        assert_eq!(store.version_of("m").unwrap(), v1);
        // Replace at the right version.
        let v2 = store
            .put_if_version("m", Bytes::from_static(b"gen2"), v1)
            .unwrap();
        assert_ne!(v1, v2);
        assert_eq!(&store.get("m").unwrap().bytes[..], b"gen2");
        // A stale token loses and changes nothing.
        match store.put_if_version("m", Bytes::from_static(b"gen2-loser"), v1) {
            Err(StorageError::VersionMismatch {
                expected, actual, ..
            }) => {
                assert_eq!(expected, v1);
                assert_eq!(actual, v2);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        assert_eq!(&store.get("m").unwrap().bytes[..], b"gen2");
        // Create-if-missing on an existing blob loses too.
        assert!(store
            .put_if_version("m", Bytes::from_static(b"x"), Version::Absent)
            .is_err());
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_writer_per_round() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryStore::new());
        // 8 threads race 100 CAS rounds each; every round exactly one
        // write wins, so the final counter equals total successes.
        let successes: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    s.spawn(move || {
                        let mut wins = 0u64;
                        for _ in 0..100 {
                            loop {
                                let (current, expected) = match store.get("counter") {
                                    Ok(f) => {
                                        let n: u64 =
                                            std::str::from_utf8(&f.bytes).unwrap().parse().unwrap();
                                        (n, Version::of_bytes(&f.bytes))
                                    }
                                    Err(_) => (0, Version::Absent),
                                };
                                let next = Bytes::from((current + 1).to_string());
                                match store.put_if_version("counter", next, expected) {
                                    Ok(_) => {
                                        wins += 1;
                                        break;
                                    }
                                    Err(StorageError::VersionMismatch { .. }) => continue,
                                    Err(e) => panic!("unexpected error: {e}"),
                                }
                            }
                        }
                        wins
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(successes, 800);
        let f = store.get("counter").unwrap();
        let n: u64 = std::str::from_utf8(&f.bytes).unwrap().parse().unwrap();
        assert_eq!(n, 800, "no lost updates under CAS contention");
    }

    #[test]
    fn concurrent_writers_and_readers() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryStore::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..50 {
                        let name = format!("t{t}/b{i}");
                        store.put(&name, Bytes::from(vec![t as u8; 16])).unwrap();
                        let f = store.get(&name).unwrap();
                        assert_eq!(f.bytes.len(), 16);
                    }
                });
            }
        });
        assert_eq!(store.blob_count(), 400);
    }
}
