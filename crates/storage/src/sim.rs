//! [`SimulatedCloudStore`]: a latency-simulating wrapper around any backend.
//!
//! This is the substitution for GCP Cloud Storage (see DESIGN.md §4): the
//! inner store supplies the bytes, the [`LatencyModel`] supplies the
//! simulated network cost. Every read samples a latency; batched reads use
//! the shared-bandwidth contention model. Aggregate I/O statistics are
//! tracked so experiments can report request counts, bytes moved, and the
//! wait/download split.

use crate::latency::{seeded_rng, LatencyModel, SimDuration};
use crate::object_store::{BatchFetch, Fetched, ObjectStore, RangeRequest, Version};
use crate::Result;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic tail-latency spike injector: every `every`-th
/// dispatched read (batch or single get) has its time-to-first-byte
/// multiplied by `multiplier`.
///
/// This models the occasional straggling cloud request (overloaded
/// backend shard, connection re-establishment) that hedged reads are
/// designed to cut. Being counter-based rather than sampled, the set of
/// spiked requests is a pure function of dispatch order — benches and
/// tests get the *same* stragglers on every run without rolling their
/// own latency hacks.
///
/// `SpikeProfile::new(100, 10.0)` gives the canonical "p99 ≈ 10× the
/// median" profile: 1 in 100 requests pays 10× its sampled first byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeProfile {
    /// Spike every `every`-th dispatch (must be ≥ 1).
    pub every: u64,
    /// First-byte multiplier applied to spiked dispatches.
    pub multiplier: f64,
    /// Phase offset: dispatch indices `i` with `i % every == offset`
    /// spike. Defaults to `every - 1` so short runs still hit one.
    pub offset: u64,
}

impl SpikeProfile {
    /// Spike every `every`-th dispatch by `multiplier`.
    pub fn new(every: u64, multiplier: f64) -> Self {
        let every = every.max(1);
        SpikeProfile {
            every,
            multiplier,
            offset: every - 1,
        }
    }

    /// Change the phase offset (wrapped into `0..every`).
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset % self.every;
        self
    }

    fn is_spiked(&self, dispatch_index: u64) -> bool {
        dispatch_index % self.every == self.offset
    }
}

/// Snapshot of the I/O counters of a [`SimulatedCloudStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Number of read requests issued (each range in a batch counts once).
    pub read_requests: u64,
    /// Number of concurrent batches issued.
    pub batches: u64,
    /// Total bytes fetched.
    pub bytes_read: u64,
    /// Sum of simulated wait (time-to-first-byte) across *batches*.
    pub sim_wait_nanos: u64,
    /// Sum of simulated download (transfer) across *batches*.
    pub sim_download_nanos: u64,
    /// Dispatches whose first byte was stretched by the
    /// [`SpikeProfile`] (0 when no profile is attached).
    pub spiked: u64,
}

impl IoStatsSnapshot {
    /// Total simulated time spent in storage I/O.
    pub fn sim_total(&self) -> SimDuration {
        SimDuration::from_nanos(self.sim_wait_nanos + self.sim_download_nanos)
    }
}

#[derive(Debug, Default)]
struct IoStats {
    read_requests: AtomicU64,
    batches: AtomicU64,
    bytes_read: AtomicU64,
    sim_wait_nanos: AtomicU64,
    sim_download_nanos: AtomicU64,
    spiked: AtomicU64,
}

impl IoStats {
    fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_requests: self.read_requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            sim_wait_nanos: self.sim_wait_nanos.load(Ordering::Relaxed),
            sim_download_nanos: self.sim_download_nanos.load(Ordering::Relaxed),
            spiked: self.spiked.load(Ordering::Relaxed),
        }
    }
}

/// An [`ObjectStore`] decorator that attaches simulated cloud latencies.
///
/// Writes pass through without simulation (the paper benchmarks querying;
/// index *builds* run on a beefy VM and are not latency-measured).
pub struct SimulatedCloudStore<S> {
    inner: S,
    model: LatencyModel,
    rng: Mutex<StdRng>,
    stats: IoStats,
    real_sleep: bool,
    spikes: Option<SpikeProfile>,
    /// Monotone dispatch counter driving the (deterministic) spike phase.
    dispatches: AtomicU64,
}

impl<S: ObjectStore> SimulatedCloudStore<S> {
    /// Wrap `inner` with the given latency model, seeding the jitter RNG.
    pub fn new(inner: S, model: LatencyModel, seed: u64) -> Self {
        SimulatedCloudStore {
            inner,
            model,
            rng: Mutex::new(seeded_rng(seed)),
            stats: IoStats::default(),
            real_sleep: false,
            spikes: None,
            dispatches: AtomicU64::new(0),
        }
    }

    /// Enable wall-clock sleeping for each simulated latency (demo mode).
    pub fn with_real_sleep(mut self) -> Self {
        self.real_sleep = true;
        self
    }

    /// Attach a deterministic straggler profile: every `profile.every`-th
    /// dispatch pays `profile.multiplier`× its sampled first byte.
    pub fn with_spikes(mut self, profile: SpikeProfile) -> Self {
        self.spikes = Some(profile);
        self
    }

    /// The attached spike profile, if any.
    pub fn spike_profile(&self) -> Option<SpikeProfile> {
        self.spikes
    }

    /// Stretch `first_byte` if this dispatch lands on a spike slot.
    fn apply_spike(&self, first_byte: SimDuration) -> SimDuration {
        let Some(profile) = self.spikes else {
            return first_byte;
        };
        let idx = self.dispatches.fetch_add(1, Ordering::Relaxed);
        if profile.is_spiked(idx) {
            self.stats.spiked.fetch_add(1, Ordering::Relaxed);
            first_byte * profile.multiplier
        } else {
            first_byte
        }
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// A reference to the wrapped backend (e.g. to build without latency).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Snapshot the I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the I/O counters to zero.
    pub fn reset_stats(&self) {
        self.stats.read_requests.store(0, Ordering::Relaxed);
        self.stats.batches.store(0, Ordering::Relaxed);
        self.stats.bytes_read.store(0, Ordering::Relaxed);
        self.stats.sim_wait_nanos.store(0, Ordering::Relaxed);
        self.stats.sim_download_nanos.store(0, Ordering::Relaxed);
        // The dispatch counter is *not* reset: the spike phase stays a
        // pure function of dispatch order across the store's lifetime.
        self.stats.spiked.store(0, Ordering::Relaxed);
    }

    fn record_batch(&self, requests: u64, bytes: u64, wait: SimDuration, download: SimDuration) {
        self.stats
            .read_requests
            .fetch_add(requests, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.stats
            .sim_wait_nanos
            .fetch_add(wait.as_nanos(), Ordering::Relaxed);
        self.stats
            .sim_download_nanos
            .fetch_add(download.as_nanos(), Ordering::Relaxed);
        if self.real_sleep {
            std::thread::sleep((wait + download).to_std());
        }
    }

    fn simulate_single(&self, bytes: u64) -> (SimDuration, SimDuration) {
        let sample = {
            let mut rng = self.rng.lock();
            self.model.sample(bytes, &mut rng)
        };
        (self.apply_spike(sample.first_byte), sample.transfer)
    }
}

impl<S: ObjectStore> ObjectStore for SimulatedCloudStore<S> {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Fetched> {
        let fetched = self.inner.get(name)?;
        let (fb, tx) = self.simulate_single(fetched.bytes.len() as u64);
        self.record_batch(1, fetched.bytes.len() as u64, fb, tx);
        Ok(Fetched {
            bytes: fetched.bytes,
            latency: crate::latency::LatencySample {
                first_byte: fb,
                transfer: tx,
            },
        })
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> Result<Fetched> {
        let fetched = self.inner.get_range(name, offset, len)?;
        let (fb, tx) = self.simulate_single(fetched.bytes.len() as u64);
        self.record_batch(1, fetched.bytes.len() as u64, fb, tx);
        Ok(Fetched {
            bytes: fetched.bytes,
            latency: crate::latency::LatencySample {
                first_byte: fb,
                transfer: tx,
            },
        })
    }

    /// The calibrated concurrent-batch model (§II-C / Fig 10c):
    ///
    /// * all requests are dispatched at once, so round-trip waits overlap —
    ///   the batch's wait is `max(first_byte_i)`;
    /// * transfers share the link — the batch's download time is
    ///   `total_bytes / bandwidth` plus a per-stream dispatch overhead
    ///   (this is the bandwidth contention that makes L=16 lookups slower
    ///   than L=2 in Figure 10c, while still ≪ 16× the L=1 latency).
    fn get_ranges(&self, requests: &[RangeRequest]) -> Result<BatchFetch> {
        if requests.is_empty() {
            return Ok(BatchFetch {
                parts: Vec::new(),
                batch_latency: SimDuration::ZERO,
                batch_wait: SimDuration::ZERO,
                batch_download: SimDuration::ZERO,
            });
        }
        let mut parts = Vec::with_capacity(requests.len());
        let mut max_fb = SimDuration::ZERO;
        let mut total_bytes = 0u64;
        for r in requests {
            let fetched = self.inner.get_range(&r.name, r.offset, r.len)?;
            let fb = {
                let mut rng = self.rng.lock();
                self.model.sample_first_byte(&mut rng)
            };
            max_fb = max_fb.max(fb);
            total_bytes += fetched.bytes.len() as u64;
            parts.push(Fetched {
                bytes: fetched.bytes,
                latency: crate::latency::LatencySample {
                    first_byte: fb,
                    transfer: SimDuration::ZERO, // filled below proportionally
                },
            });
        }
        // A batch is one dispatch to the cloud: a straggling batch is one
        // whose slowest stream straggles, so the spike applies to the
        // batch-level wait.
        max_fb = self.apply_spike(max_fb);
        let download = self
            .model
            .contended_transfer_time(total_bytes, requests.len());
        // Attribute transfer time to parts proportionally to size, for
        // per-request introspection; the batch totals are authoritative.
        if total_bytes > 0 {
            for p in &mut parts {
                let share = p.bytes.len() as f64 / total_bytes as f64;
                p.latency.transfer = download * share;
            }
        }
        self.record_batch(requests.len() as u64, total_bytes, max_fb, download);
        Ok(BatchFetch {
            parts,
            batch_latency: max_fb + download,
            batch_wait: max_fb,
            batch_download: download,
        })
    }

    // Conditional writes pass through unsimulated, like `put`: the
    // latency model measures the query path, and the inner store keeps
    // the atomicity.
    fn version_of(&self, name: &str) -> Result<Version> {
        self.inner.version_of(name)
    }

    fn put_if_version(&self, name: &str, data: Bytes, expected: Version) -> Result<Version> {
        self.inner.put_if_version(name, data, expected)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStore, LatencyModel};

    fn store_with(model: LatencyModel) -> SimulatedCloudStore<InMemoryStore> {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![7u8; 1 << 20])).unwrap();
        SimulatedCloudStore::new(inner, model, 1234)
    }

    #[test]
    fn single_get_records_latency_and_stats() {
        let store = store_with(LatencyModel::gcs_like());
        let f = store.get_range("blob", 0, 1024).unwrap();
        assert_eq!(f.bytes.len(), 1024);
        assert!(f.latency.first_byte.as_millis_f64() > 5.0);
        let stats = store.stats();
        assert_eq!(stats.read_requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.bytes_read, 1024);
        assert!(stats.sim_wait_nanos > 0);
    }

    #[test]
    fn batch_wait_is_max_not_sum() {
        let store = store_with(LatencyModel::gcs_like());
        let reqs: Vec<_> = (0..8)
            .map(|i| RangeRequest::new("blob", i * 1024, 1024))
            .collect();
        let batch = store.get_ranges(&reqs).unwrap();
        // With 8 concurrent ~45ms round-trips, the batch wait must be far
        // below the 8 * 45ms a sequential scheme would pay.
        assert!(batch.batch_wait.as_millis_f64() < 4.0 * 45.0);
        assert!(batch.batch_wait.as_millis_f64() > 10.0);
        // Sequential equivalent for comparison: issue one-by-one.
        store.reset_stats();
        let mut seq_wait = SimDuration::ZERO;
        for r in &reqs {
            let f = store.get_range(&r.name, r.offset, r.len).unwrap();
            seq_wait += f.latency.first_byte;
        }
        assert!(
            seq_wait > batch.batch_wait,
            "sequential {seq_wait} should exceed batched {}",
            batch.batch_wait
        );
    }

    #[test]
    fn batch_download_shares_bandwidth() {
        let store = store_with(LatencyModel::gcs_like());
        let reqs: Vec<_> = (0..4)
            .map(|i| RangeRequest::new("blob", i * 262_144, 262_144))
            .collect();
        let batch = store.get_ranges(&reqs).unwrap();
        let single = store.model().transfer_time(262_144);
        // Total download ≈ 4x a single transfer (shared link), not 1x.
        assert!(batch.batch_download.as_secs_f64() > 3.0 * single.as_secs_f64());
        assert_eq!(batch.total_bytes(), 4 * 262_144);
    }

    #[test]
    fn empty_batch_is_free() {
        let store = store_with(LatencyModel::gcs_like());
        let batch = store.get_ranges(&[]).unwrap();
        assert_eq!(batch.batch_latency, SimDuration::ZERO);
        assert_eq!(store.stats().batches, 0);
    }

    #[test]
    fn per_part_transfer_attribution_sums_to_batch() {
        let store = store_with(LatencyModel::gcs_like());
        let reqs = vec![
            RangeRequest::new("blob", 0, 100_000),
            RangeRequest::new("blob", 100_000, 300_000),
        ];
        let batch = store.get_ranges(&reqs).unwrap();
        let parts_sum: f64 = batch
            .parts
            .iter()
            .map(|p| p.latency.transfer.as_secs_f64())
            .sum();
        assert!((parts_sum - batch.batch_download.as_secs_f64()).abs() < 1e-3);
        // Larger part gets the larger share.
        assert!(batch.parts[1].latency.transfer > batch.parts[0].latency.transfer);
    }

    #[test]
    fn instantaneous_model_passes_through() {
        let store = store_with(LatencyModel::instantaneous());
        let f = store.get_range("blob", 0, 2048).unwrap();
        assert_eq!(f.latency.total(), SimDuration::ZERO);
    }

    #[test]
    fn determinism_under_seed() {
        let run = || {
            let inner = InMemoryStore::new();
            inner.put("b", Bytes::from(vec![1u8; 4096])).unwrap();
            let store = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 77);
            let mut lat = Vec::new();
            for _ in 0..5 {
                lat.push(store.get_range("b", 0, 4096).unwrap().latency);
            }
            lat
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_reset() {
        let store = store_with(LatencyModel::gcs_like());
        store.get("blob").unwrap();
        assert!(store.stats().read_requests > 0);
        store.reset_stats();
        assert_eq!(store.stats(), IoStatsSnapshot::default());
    }

    #[test]
    fn writes_are_not_latency_charged() {
        let store = store_with(LatencyModel::gcs_like());
        store.put("new", Bytes::from_static(b"data")).unwrap();
        assert_eq!(store.stats().read_requests, 0);
    }

    #[test]
    fn spike_profile_hits_every_nth_dispatch() {
        let store = store_with(LatencyModel::gcs_like()).with_spikes(SpikeProfile::new(5, 10.0));
        let mut waits = Vec::new();
        for _ in 0..20 {
            let reqs = vec![RangeRequest::new("blob", 0, 1024)];
            waits.push(store.get_ranges(&reqs).unwrap().batch_wait);
        }
        assert_eq!(store.stats().spiked, 4, "20 dispatches / every 5");
        // The spiked batches are exactly indices 4, 9, 14, 19 and they
        // dwarf their unspiked neighbors.
        for (i, w) in waits.iter().enumerate() {
            let spiked = i % 5 == 4;
            let neighbor = waits[if spiked { i - 1 } else { i / 5 * 5 + 4 }];
            if spiked {
                assert!(*w > neighbor * 3.0, "batch {i} should straggle vs neighbor");
            }
        }
    }

    #[test]
    fn spike_profile_is_deterministic_under_seed() {
        let run = || {
            let inner = InMemoryStore::new();
            inner.put("b", Bytes::from(vec![1u8; 4096])).unwrap();
            let store = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 77)
                .with_spikes(SpikeProfile::new(3, 8.0));
            (0..9)
                .map(|_| store.get_range("b", 0, 4096).unwrap().latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spike_profile_shapes_the_tail() {
        // The canonical profile: 1-in-100 dispatches at 10× first byte
        // must push p99 to roughly an order of magnitude over the median.
        let store = store_with(LatencyModel::gcs_like()).with_spikes(SpikeProfile::new(100, 10.0));
        let mut waits: Vec<f64> = (0..300)
            .map(|_| {
                store
                    .get_ranges(&[RangeRequest::new("blob", 0, 1024)])
                    .unwrap()
                    .batch_wait
                    .as_millis_f64()
            })
            .collect();
        assert_eq!(store.stats().spiked, 3);
        waits.sort_by(f64::total_cmp);
        let median = waits[waits.len() / 2];
        let p99 = waits[(waits.len() as f64 * 0.99) as usize];
        assert!(
            p99 > 5.0 * median,
            "p99 {p99:.1}ms should be ≫ median {median:.1}ms"
        );
    }

    #[test]
    fn spike_offset_wraps_and_singles_count() {
        let profile = SpikeProfile::new(4, 6.0).with_offset(9);
        assert_eq!(profile.offset, 1);
        let store = store_with(LatencyModel::gcs_like()).with_spikes(profile);
        for _ in 0..8 {
            store.get_range("blob", 0, 512).unwrap();
        }
        assert_eq!(store.stats().spiked, 2, "indices 1 and 5 spike");
        assert_eq!(store.spike_profile(), Some(profile));
    }

    #[test]
    fn no_profile_means_no_spikes() {
        let store = store_with(LatencyModel::gcs_like());
        store.get("blob").unwrap();
        assert_eq!(store.stats().spiked, 0);
        assert_eq!(store.spike_profile(), None);
    }
}
