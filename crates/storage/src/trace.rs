//! Query-latency tracing: the reproduction's stand-in for the paper's
//! tcpdump-based breakdown (§V-B0c, Figures 8 and 11).
//!
//! A query executes as a sequence of *phases*. Within a phase, requests are
//! concurrent (one batch); across phases, execution is sequential (the next
//! phase depends on the previous one's results — exactly the "dependent
//! reads" the paper identifies as the bottleneck of hierarchical indexes).
//! Each phase records its wait (time-to-first-byte) and download (transfer)
//! components; the query's end-to-end simulated latency is the sum of the
//! phase latencies plus any recorded compute time.

use crate::latency::SimDuration;
use crate::object_store::BatchFetch;

/// What a phase was doing — used by experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Term-index lookup traffic (MHT is in memory for Airphant, so its
    /// lookup phase is the superpost fetch; for B-tree/skip-list baselines
    /// these are the node fetches).
    Lookup,
    /// Fetching postings lists / superposts.
    Postings,
    /// Fetching document contents.
    Documents,
    /// Pure CPU work (hashing, intersection, filtering). No network.
    Compute,
    /// One-time initialization traffic (header download, snapshot mount).
    Init,
}

impl PhaseKind {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Lookup => "lookup",
            PhaseKind::Postings => "postings",
            PhaseKind::Documents => "documents",
            PhaseKind::Compute => "compute",
            PhaseKind::Init => "init",
        }
    }
}

/// One sequential phase of a query.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// What the phase was doing.
    pub kind: PhaseKind,
    /// Number of concurrent requests in the phase's batch.
    pub requests: u64,
    /// Number of *dependent* storage round trips the phase represents: 1
    /// for a concurrent batch (all requests issued at once), `requests`
    /// for a chain of dependent reads (hierarchical index traversals).
    pub batches: u64,
    /// Bytes fetched in the phase.
    pub bytes: u64,
    /// Wait component (max time-to-first-byte of the batch).
    pub wait: SimDuration,
    /// Download component (shared-bandwidth transfer).
    pub download: SimDuration,
    /// CPU time attributed to the phase (compute phases).
    pub compute: SimDuration,
}

impl PhaseTrace {
    /// Total simulated duration of this phase.
    pub fn total(&self) -> SimDuration {
        self.wait + self.download + self.compute
    }
}

/// Accumulated trace for a single query (or initialization).
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    phases: Vec<PhaseTrace>,
}

impl QueryTrace {
    /// Start an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase from a [`BatchFetch`] (one concurrent round trip).
    pub fn record_batch(&mut self, kind: PhaseKind, batch: &BatchFetch) {
        let requests = batch.parts.len() as u64;
        self.phases.push(PhaseTrace {
            kind,
            requests,
            batches: u64::from(requests > 0),
            bytes: batch.total_bytes(),
            wait: batch.batch_wait,
            download: batch.batch_download,
            compute: SimDuration::ZERO,
        });
    }

    /// Record a phase of `n` *sequential* single requests (hierarchical
    /// index traversals), given their summed wait and download. Each
    /// request counts as its own dependent round trip.
    pub fn record_sequential(
        &mut self,
        kind: PhaseKind,
        requests: u64,
        bytes: u64,
        wait: SimDuration,
        download: SimDuration,
    ) {
        self.phases.push(PhaseTrace {
            kind,
            requests,
            batches: requests,
            bytes,
            wait,
            download,
            compute: SimDuration::ZERO,
        });
    }

    /// Record a phase of `requests` *concurrent* requests that were issued
    /// as one batch but whose latency was aggregated by the caller (e.g. a
    /// straggler-mitigated lookup that kept only the fastest streams).
    /// Counts as a single round trip.
    pub fn record_concurrent(
        &mut self,
        kind: PhaseKind,
        requests: u64,
        bytes: u64,
        wait: SimDuration,
        download: SimDuration,
    ) {
        self.phases.push(PhaseTrace {
            kind,
            requests,
            batches: u64::from(requests > 0),
            bytes,
            wait,
            download,
            compute: SimDuration::ZERO,
        });
    }

    /// Record pure compute time.
    pub fn record_compute(&mut self, compute: SimDuration) {
        self.phases.push(PhaseTrace {
            kind: PhaseKind::Compute,
            requests: 0,
            batches: 0,
            bytes: 0,
            wait: SimDuration::ZERO,
            download: SimDuration::ZERO,
            compute,
        });
    }

    /// Append all phases of another trace (e.g. merge init into a query).
    pub fn extend(&mut self, other: &QueryTrace) {
        self.phases.extend(other.phases.iter().cloned());
    }

    /// The recorded phases, in execution order.
    pub fn phases(&self) -> &[PhaseTrace] {
        &self.phases
    }

    /// End-to-end simulated latency: phases are sequential, so they sum.
    pub fn total(&self) -> SimDuration {
        self.phases.iter().map(|p| p.total()).sum()
    }

    /// Total wait (time blocked on first bytes) — Figure 8's "Wait Time".
    pub fn wait(&self) -> SimDuration {
        self.phases.iter().map(|p| p.wait).sum()
    }

    /// Total download (transfer) time — Figure 8's "Download Time".
    pub fn download(&self) -> SimDuration {
        self.phases.iter().map(|p| p.download).sum()
    }

    /// Total CPU time recorded.
    pub fn compute(&self) -> SimDuration {
        self.phases.iter().map(|p| p.compute).sum()
    }

    /// Total bytes fetched.
    pub fn bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes).sum()
    }

    /// Total network requests issued.
    pub fn requests(&self) -> u64 {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Number of dependent storage round trips (batches) the query paid,
    /// excluding one-time initialization traffic. This is the quantity the
    /// paper's single-batch guarantee bounds: an Airphant index lookup is
    /// exactly one round trip no matter how many terms, grams, layers, or
    /// segments the query touches; hierarchical baselines pay one per
    /// dependent read.
    pub fn round_trips(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.kind != PhaseKind::Init)
            .map(|p| p.batches)
            .sum()
    }

    /// Round trips attributed to phases of one kind (e.g.
    /// [`PhaseKind::Postings`] isolates the index-lookup phase).
    pub fn round_trips_of(&self, kind: PhaseKind) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.batches)
            .sum()
    }

    /// Sum of phases of a given kind.
    pub fn total_of(&self, kind: PhaseKind) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.total())
            .sum()
    }

    /// Combine traces of *concurrent* sub-queries (e.g. one per index
    /// segment): round-trip waits overlap (max), transfers share the link
    /// (sum), compute is serial on the client (sum). Request/byte counters
    /// add up. The result is a single summary phase per kind.
    pub fn merge_parallel(traces: &[QueryTrace]) -> QueryTrace {
        let mut merged = QueryTrace::new();
        if traces.is_empty() {
            return merged;
        }
        for kind in [
            PhaseKind::Init,
            PhaseKind::Lookup,
            PhaseKind::Postings,
            PhaseKind::Documents,
        ] {
            let mut wait = SimDuration::ZERO;
            let mut download = SimDuration::ZERO;
            let mut requests = 0u64;
            let mut batches = 0u64;
            let mut bytes = 0u64;
            let mut present = false;
            for t in traces {
                let mut t_wait = SimDuration::ZERO;
                let mut t_batches = 0u64;
                for p in t.phases.iter().filter(|p| p.kind == kind) {
                    present = true;
                    t_wait += p.wait;
                    t_batches += p.batches;
                    download += p.download;
                    requests += p.requests;
                    bytes += p.bytes;
                }
                wait = wait.max(t_wait);
                // Concurrent sub-queries overlap: the effective dependent
                // depth is the longest chain, not the sum.
                batches = batches.max(t_batches);
            }
            if present {
                merged.phases.push(PhaseTrace {
                    kind,
                    requests,
                    batches,
                    bytes,
                    wait,
                    download,
                    compute: SimDuration::ZERO,
                });
            }
        }
        let compute: SimDuration = traces.iter().map(|t| t.compute()).sum();
        if compute > SimDuration::ZERO {
            merged.record_compute(compute);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_store::Fetched;
    use bytes::Bytes;

    fn fake_batch(n: usize, bytes_each: usize, wait_ms: u64, dl_ms: u64) -> BatchFetch {
        BatchFetch {
            parts: (0..n)
                .map(|_| Fetched::instant(Bytes::from(vec![0u8; bytes_each])))
                .collect(),
            batch_latency: SimDuration::from_millis(wait_ms + dl_ms),
            batch_wait: SimDuration::from_millis(wait_ms),
            batch_download: SimDuration::from_millis(dl_ms),
        }
    }

    #[test]
    fn phases_sum_sequentially() {
        let mut t = QueryTrace::new();
        t.record_batch(PhaseKind::Postings, &fake_batch(3, 100, 50, 10));
        t.record_batch(PhaseKind::Documents, &fake_batch(5, 1000, 45, 30));
        t.record_compute(SimDuration::from_millis(2));
        assert_eq!(t.total(), SimDuration::from_millis(137));
        assert_eq!(t.wait(), SimDuration::from_millis(95));
        assert_eq!(t.download(), SimDuration::from_millis(40));
        assert_eq!(t.compute(), SimDuration::from_millis(2));
        assert_eq!(t.bytes(), 3 * 100 + 5 * 1000);
        assert_eq!(t.requests(), 8);
    }

    #[test]
    fn total_of_filters_by_kind() {
        let mut t = QueryTrace::new();
        t.record_batch(PhaseKind::Postings, &fake_batch(2, 10, 40, 5));
        t.record_batch(PhaseKind::Documents, &fake_batch(1, 10, 40, 5));
        assert_eq!(
            t.total_of(PhaseKind::Postings),
            SimDuration::from_millis(45)
        );
        assert_eq!(t.total_of(PhaseKind::Lookup), SimDuration::ZERO);
    }

    #[test]
    fn sequential_recording() {
        let mut t = QueryTrace::new();
        // A 4-level B-tree traversal: 4 dependent reads, waits add up.
        t.record_sequential(
            PhaseKind::Lookup,
            4,
            4 * 4096,
            SimDuration::from_millis(180),
            SimDuration::from_millis(2),
        );
        assert_eq!(t.requests(), 4);
        assert_eq!(t.wait(), SimDuration::from_millis(180));
    }

    #[test]
    fn extend_merges_traces() {
        let mut init = QueryTrace::new();
        init.record_batch(PhaseKind::Init, &fake_batch(1, 2_000_000, 50, 48));
        let mut q = QueryTrace::new();
        q.record_batch(PhaseKind::Postings, &fake_batch(2, 100, 45, 1));
        let mut merged = QueryTrace::new();
        merged.extend(&init);
        merged.extend(&q);
        assert_eq!(merged.phases().len(), 2);
        assert_eq!(merged.total(), init.total() + q.total());
    }

    #[test]
    fn round_trips_counts_dependent_batches() {
        let mut t = QueryTrace::new();
        // Init traffic never counts.
        t.record_batch(PhaseKind::Init, &fake_batch(1, 100, 40, 5));
        // One concurrent superpost batch: one round trip.
        t.record_batch(PhaseKind::Postings, &fake_batch(6, 100, 45, 5));
        // A 4-level dependent traversal: four round trips.
        t.record_sequential(
            PhaseKind::Lookup,
            4,
            4096,
            SimDuration::from_millis(160),
            SimDuration::from_millis(4),
        );
        // A straggler-trimmed concurrent batch: still one round trip.
        t.record_concurrent(
            PhaseKind::Postings,
            2,
            128,
            SimDuration::from_millis(30),
            SimDuration::from_millis(1),
        );
        // Compute is free.
        t.record_compute(SimDuration::from_millis(1));
        assert_eq!(t.round_trips(), 6);
        assert_eq!(t.round_trips_of(PhaseKind::Postings), 2);
        assert_eq!(t.round_trips_of(PhaseKind::Lookup), 4);
        assert_eq!(t.round_trips_of(PhaseKind::Init), 1, "init visible via _of");
        // Empty batches do not count as round trips.
        let mut e = QueryTrace::new();
        e.record_batch(PhaseKind::Postings, &fake_batch(0, 0, 0, 0));
        assert_eq!(e.round_trips(), 0);
    }

    #[test]
    fn merge_parallel_round_trips_take_longest_chain() {
        let mut a = QueryTrace::new();
        a.record_batch(PhaseKind::Postings, &fake_batch(2, 100, 50, 10));
        let mut b = QueryTrace::new();
        b.record_batch(PhaseKind::Postings, &fake_batch(3, 100, 70, 5));
        b.record_batch(PhaseKind::Postings, &fake_batch(3, 100, 70, 5));
        let m = QueryTrace::merge_parallel(&[a, b]);
        assert_eq!(m.round_trips(), 2, "overlapping fan-out: longest chain");
    }

    #[test]
    fn phase_kind_labels() {
        assert_eq!(PhaseKind::Lookup.label(), "lookup");
        assert_eq!(PhaseKind::Compute.label(), "compute");
    }

    #[test]
    fn merge_parallel_waits_overlap_downloads_add() {
        let mut a = QueryTrace::new();
        a.record_batch(PhaseKind::Postings, &fake_batch(2, 100, 50, 10));
        a.record_compute(SimDuration::from_millis(1));
        let mut b = QueryTrace::new();
        b.record_batch(PhaseKind::Postings, &fake_batch(3, 100, 70, 5));
        let m = QueryTrace::merge_parallel(&[a, b]);
        assert_eq!(m.wait(), SimDuration::from_millis(70), "max of waits");
        assert_eq!(
            m.download(),
            SimDuration::from_millis(15),
            "sum of downloads"
        );
        assert_eq!(m.compute(), SimDuration::from_millis(1));
        assert_eq!(m.requests(), 5);
        assert_eq!(m.bytes(), 500);
    }

    #[test]
    fn merge_parallel_empty_and_single() {
        assert_eq!(QueryTrace::merge_parallel(&[]).total(), SimDuration::ZERO);
        let mut a = QueryTrace::new();
        a.record_batch(PhaseKind::Documents, &fake_batch(1, 10, 40, 2));
        let m = QueryTrace::merge_parallel(std::slice::from_ref(&a));
        assert_eq!(m.total(), a.total());
    }
}
