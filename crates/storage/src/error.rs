//! Error type shared by every storage backend.

use std::fmt;

/// Errors produced by [`crate::ObjectStore`] implementations.
#[derive(Debug)]
pub enum StorageError {
    /// The named blob does not exist in the store.
    BlobNotFound {
        /// Name of the missing blob.
        name: String,
    },
    /// A ranged read extended past the end of the blob.
    RangeOutOfBounds {
        /// Name of the blob.
        name: String,
        /// Requested start offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Actual size of the blob.
        blob_size: u64,
    },
    /// A request timed out (used by the straggler-mitigation path, §IV-G).
    Timeout {
        /// Name of the blob whose fetch timed out.
        name: String,
    },
    /// A conditional write ([`crate::ObjectStore::put_if_version`]) lost
    /// the race: the blob's current version differs from the expected one.
    /// The caller re-reads and retries — this is the CAS contention signal,
    /// not a failure of the store.
    VersionMismatch {
        /// Name of the blob the conditional write targeted.
        name: String,
        /// The version the writer expected to replace.
        expected: crate::Version,
        /// The version actually found.
        actual: crate::Version,
    },
    /// An underlying I/O failure (local-filesystem backend).
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BlobNotFound { name } => write!(f, "blob not found: {name}"),
            StorageError::RangeOutOfBounds {
                name,
                offset,
                len,
                blob_size,
            } => write!(
                f,
                "range [{offset}, {}) out of bounds for blob {name} of size {blob_size}",
                offset + len
            ),
            StorageError::Timeout { name } => write!(f, "request timed out for blob {name}"),
            StorageError::VersionMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "conditional write to blob {name} lost: expected version {expected}, found {actual}"
            ),
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_blob_not_found() {
        let e = StorageError::BlobNotFound {
            name: "corpus/doc.txt".into(),
        };
        assert_eq!(e.to_string(), "blob not found: corpus/doc.txt");
    }

    #[test]
    fn display_range_out_of_bounds() {
        let e = StorageError::RangeOutOfBounds {
            name: "b".into(),
            offset: 10,
            len: 20,
            blob_size: 15,
        };
        assert_eq!(
            e.to_string(),
            "range [10, 30) out of bounds for blob b of size 15"
        );
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("disk on fire");
        let e: StorageError = io.into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn timeout_display() {
        let e = StorageError::Timeout {
            name: "sp/3".into(),
        };
        assert!(e.to_string().contains("timed out"));
    }
}
