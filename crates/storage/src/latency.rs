//! Simulated cloud-network latency model.
//!
//! The paper's Figure 2 measures end-to-end retrieval latency between a GCP
//! virtual machine and GCP Cloud Storage and observes an *affine*
//! relationship: latency stays around ~50 ms until the fetch size passes
//! ~2 MB, then grows linearly with size. We model each request as
//!
//! ```text
//! latency(bytes) = first_byte + bytes / bandwidth
//! ```
//!
//! where `first_byte` is sampled from a lognormal distribution (network
//! round-trip jitter) optionally inflated by a Pareto-distributed long tail
//! (§IV-G's "Long Tail Problem"), and `bandwidth` is the link bandwidth. A
//! [`RegionProfile`] scales both terms to reproduce the cross-region
//! experiments (Figures 7, 12, 13).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::time::Duration;

/// A simulated duration on the virtual clock, stored with nanosecond
/// resolution.
///
/// `SimDuration` deliberately mirrors a small slice of [`std::time::Duration`]
/// but is a distinct type so that *simulated* time can never be confused with
/// wall-clock time in the engine code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds. Negative or non-finite inputs
    /// saturate to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds — the unit every figure in the
    /// paper reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations (used to combine parallel requests).
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Convert to a wall-clock [`Duration`] (for the real-sleep demo mode).
    pub fn to_std(self) -> Duration {
        Duration::from_nanos(self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// One sampled request latency, split into the two phases the paper's
/// tcpdump analysis distinguishes (§V-B0c): *wait* (time to first byte) and
/// *download* (transfer time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Time to first byte — the round-trip "wait time".
    pub first_byte: SimDuration,
    /// Transfer time — `bytes / bandwidth`.
    pub transfer: SimDuration,
}

impl LatencySample {
    /// Total request latency.
    pub fn total(self) -> SimDuration {
        self.first_byte + self.transfer
    }

    /// A zero-latency sample (local backends).
    pub const ZERO: LatencySample = LatencySample {
        first_byte: SimDuration::ZERO,
        transfer: SimDuration::ZERO,
    };
}

/// Region placement of the compute node relative to the storage bucket.
///
/// The paper hosts VMs in Iowa (`us-central1-c`), London (`europe-west2-c`),
/// and Singapore (`asia-southeast1-b`) against a US multi-region bucket and
/// observes ~2.4–3.3× (London) and ~6.5–8.2× (Singapore) slowdowns. We model
/// a region as a multiplier on first-byte latency and a divisor on bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfile {
    /// Human-readable name, e.g. `"us-central1-c"`.
    pub name: String,
    /// Multiplier applied to the first-byte latency.
    pub first_byte_mult: f64,
    /// Divisor applied to the link bandwidth.
    pub bandwidth_div: f64,
}

impl RegionProfile {
    /// Compute co-located with the bucket (paper's within-region setup).
    pub fn same_region() -> Self {
        RegionProfile {
            name: "us-central1-c".into(),
            first_byte_mult: 1.0,
            bandwidth_div: 1.0,
        }
    }

    /// Transatlantic placement (paper's `europe-west2-c`, ~3× slower RTT).
    pub fn london() -> Self {
        RegionProfile {
            name: "europe-west2-c".into(),
            first_byte_mult: 3.0,
            bandwidth_div: 2.0,
        }
    }

    /// Transpacific placement (paper's `asia-southeast1-b`, ~7× slower RTT).
    pub fn singapore() -> Self {
        RegionProfile {
            name: "asia-southeast1-b".into(),
            first_byte_mult: 7.0,
            bandwidth_div: 3.0,
        }
    }

    /// The paper's three-region spread (Figures 7, 12, 13) in nearness
    /// order: same-region, transatlantic, transpacific. This is the
    /// default placement for [`crate::ReplicatedStore`] tests and the
    /// cross-region bench.
    pub fn paper_spread() -> Vec<Self> {
        vec![Self::same_region(), Self::london(), Self::singapore()]
    }
}

/// The affine cloud-storage latency model of the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Median time-to-first-byte within region, in seconds.
    first_byte_median_s: f64,
    /// Sigma of the lognormal jitter on the first-byte time.
    first_byte_sigma: f64,
    /// Link bandwidth in bytes per second.
    bandwidth_bps: f64,
    /// Probability that a request falls into the long tail.
    tail_probability: f64,
    /// Pareto shape parameter for tail inflation (smaller = heavier tail).
    tail_alpha: f64,
    /// Region multipliers.
    region: RegionProfile,
    /// Fixed per-request CPU/dispatch overhead in seconds.
    request_overhead_s: f64,
}

impl LatencyModel {
    /// A model calibrated against the paper's Figure 2: ~50 ms flat up to
    /// ~2 MB, linear afterwards (≈40 MB/s effective single-stream
    /// bandwidth so that a 2 MB fetch costs ≈50 ms of transfer — the knee).
    pub fn gcs_like() -> Self {
        LatencyModel {
            first_byte_median_s: 0.045,
            first_byte_sigma: 0.25,
            bandwidth_bps: 40.0 * 1024.0 * 1024.0,
            tail_probability: 0.0,
            tail_alpha: 1.5,
            region: RegionProfile::same_region(),
            request_overhead_s: 0.001,
        }
    }

    /// A zero-latency model (useful to disable simulation in tests).
    pub fn instantaneous() -> Self {
        LatencyModel {
            first_byte_median_s: 0.0,
            first_byte_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            tail_probability: 0.0,
            tail_alpha: 1.5,
            region: RegionProfile::same_region(),
            request_overhead_s: 0.0,
        }
    }

    /// Start building a custom model from the GCS-like defaults.
    pub fn builder() -> LatencyModelBuilder {
        LatencyModelBuilder {
            model: Self::gcs_like(),
        }
    }

    /// The region profile currently applied.
    pub fn region(&self) -> &RegionProfile {
        &self.region
    }

    /// Replace the region profile (used by the cross-region experiments).
    pub fn with_region(mut self, region: RegionProfile) -> Self {
        self.region = region;
        self
    }

    /// Effective bandwidth in bytes/second after the region divisor.
    pub fn effective_bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps / self.region.bandwidth_div
    }

    /// Median first-byte latency after the region multiplier.
    pub fn effective_first_byte_median(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            (self.first_byte_median_s + self.request_overhead_s) * self.region.first_byte_mult,
        )
    }

    /// Sample the latency of a single request of `bytes` bytes.
    pub fn sample(&self, bytes: u64, rng: &mut StdRng) -> LatencySample {
        let first_byte = self.sample_first_byte(rng);
        let transfer = self.transfer_time(bytes);
        LatencySample {
            first_byte,
            transfer,
        }
    }

    /// Sample only the time-to-first-byte component.
    pub fn sample_first_byte(&self, rng: &mut StdRng) -> SimDuration {
        if self.first_byte_median_s <= 0.0 && self.request_overhead_s <= 0.0 {
            return SimDuration::ZERO;
        }
        // Lognormal jitter via Box–Muller: median * exp(sigma * z).
        let z = box_muller(rng);
        let mut fb = self.first_byte_median_s * (self.first_byte_sigma * z).exp();
        // Long tail: with probability `tail_probability`, inflate by a
        // Pareto(alpha) factor >= 1 (inverse-CDF sampling).
        if self.tail_probability > 0.0 && rng.gen::<f64>() < self.tail_probability {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let pareto = u.powf(-1.0 / self.tail_alpha);
            fb *= pareto;
        }
        fb = (fb + self.request_overhead_s) * self.region.first_byte_mult;
        SimDuration::from_secs_f64(fb)
    }

    /// Deterministic transfer time for `bytes` bytes at the effective
    /// bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let bw = self.effective_bandwidth_bps();
        if !bw.is_finite() || bw <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / bw)
    }

    /// Transfer time for `bytes` spread over `streams` concurrent requests
    /// sharing the link. The paper observes (Fig 10c) that fetching L
    /// superposts in parallel still contends for bandwidth, so the combined
    /// transfer term is `total_bytes / bandwidth` regardless of stream
    /// count; a small per-stream dispatch overhead grows with fan-out.
    pub fn contended_transfer_time(&self, total_bytes: u64, streams: usize) -> SimDuration {
        let base = self.transfer_time(total_bytes);
        let dispatch =
            SimDuration::from_secs_f64(self.request_overhead_s * streams.saturating_sub(1) as f64);
        base + dispatch
    }
}

/// Builder for [`LatencyModel`].
#[derive(Debug, Clone)]
pub struct LatencyModelBuilder {
    model: LatencyModel,
}

impl LatencyModelBuilder {
    /// Set the median time-to-first-byte (seconds).
    pub fn first_byte_median_s(mut self, v: f64) -> Self {
        self.model.first_byte_median_s = v;
        self
    }

    /// Set the lognormal sigma of first-byte jitter.
    pub fn first_byte_sigma(mut self, v: f64) -> Self {
        self.model.first_byte_sigma = v;
        self
    }

    /// Set the link bandwidth in bytes per second.
    pub fn bandwidth_bps(mut self, v: f64) -> Self {
        self.model.bandwidth_bps = v;
        self
    }

    /// Enable a Pareto long tail with the given probability and shape.
    pub fn long_tail(mut self, probability: f64, alpha: f64) -> Self {
        self.model.tail_probability = probability;
        self.model.tail_alpha = alpha;
        self
    }

    /// Set the region profile.
    pub fn region(mut self, region: RegionProfile) -> Self {
        self.model.region = region;
        self
    }

    /// Set the fixed per-request overhead (seconds).
    pub fn request_overhead_s(mut self, v: f64) -> Self {
        self.model.request_overhead_s = v;
        self
    }

    /// Finish building.
    pub fn build(self) -> LatencyModel {
        self.model
    }
}

/// Standard-normal sample via the Box–Muller transform (we avoid pulling in
/// `rand_distr`; `rand` alone is on the offline allowlist).
fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Create a deterministic RNG for latency sampling.
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_duration_arithmetic() {
        let a = SimDuration::from_millis(40);
        let b = SimDuration::from_millis(10);
        assert_eq!((a + b).as_millis_f64(), 50.0);
        assert_eq!((a - b).as_millis_f64(), 30.0);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!((a / 4).as_millis_f64(), 10.0);
        let scaled = a * 2.5;
        assert!((scaled.as_millis_f64() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sim_duration_from_negative_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn sim_duration_sum_and_display() {
        let total: SimDuration = vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, SimDuration::from_millis(6));
        assert_eq!(format!("{total}"), "6.000ms");
    }

    #[test]
    fn affine_shape_small_fetches_flat() {
        // Figure 2: latency is ~flat until ~2MB, then linear.
        let model = LatencyModel::gcs_like();
        let mut rng = seeded_rng(7);
        let small = model.sample(1024, &mut rng);
        let large = model.sample(256 * 1024 * 1024, &mut rng);
        // A 1KB fetch is dominated by first-byte time (tens of ms).
        assert!(small.total().as_millis_f64() > 10.0);
        assert!(small.total().as_millis_f64() < 200.0);
        // A 256MB fetch is dominated by transfer: > 5 seconds at 40MB/s.
        assert!(large.total().as_secs_f64() > 5.0);
        // Transfer for the small fetch is negligible relative to first byte.
        assert!(small.transfer < small.first_byte);
    }

    #[test]
    fn knee_is_near_two_megabytes() {
        let model = LatencyModel::gcs_like();
        // At the knee, transfer time equals the median first-byte time.
        let knee_transfer = model.transfer_time(2 * 1024 * 1024);
        let median_fb = model.effective_first_byte_median();
        let ratio = knee_transfer.as_secs_f64() / median_fb.as_secs_f64();
        assert!((0.5..2.0).contains(&ratio), "knee ratio {ratio}");
    }

    #[test]
    fn instantaneous_model_is_zero() {
        let model = LatencyModel::instantaneous();
        let mut rng = seeded_rng(1);
        let s = model.sample(1_000_000, &mut rng);
        assert_eq!(s.total(), SimDuration::ZERO);
    }

    #[test]
    fn region_multipliers_slow_down_requests() {
        let base = LatencyModel::gcs_like();
        let london = base.clone().with_region(RegionProfile::london());
        let singapore = base.clone().with_region(RegionProfile::singapore());
        let fb_us = base.effective_first_byte_median();
        let fb_ldn = london.effective_first_byte_median();
        let fb_sgp = singapore.effective_first_byte_median();
        assert!(fb_ldn > fb_us);
        assert!(fb_sgp > fb_ldn);
        assert!(london.effective_bandwidth_bps() < base.effective_bandwidth_bps());
    }

    #[test]
    fn long_tail_inflates_some_requests() {
        let heavy = LatencyModel::builder()
            .long_tail(0.2, 1.1)
            .first_byte_sigma(0.0)
            .build();
        let calm = LatencyModel::builder()
            .long_tail(0.0, 1.1)
            .first_byte_sigma(0.0)
            .build();
        let mut rng = seeded_rng(42);
        let heavy_max = (0..500)
            .map(|_| heavy.sample_first_byte(&mut rng).as_millis_f64())
            .fold(0.0_f64, f64::max);
        let mut rng = seeded_rng(42);
        let calm_max = (0..500)
            .map(|_| calm.sample_first_byte(&mut rng).as_millis_f64())
            .fold(0.0_f64, f64::max);
        assert!(
            heavy_max > 2.0 * calm_max,
            "tail should inflate the max: heavy={heavy_max} calm={calm_max}"
        );
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let model = LatencyModel::gcs_like();
        let a: Vec<_> = {
            let mut rng = seeded_rng(99);
            (0..20).map(|_| model.sample(4096, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = seeded_rng(99);
            (0..20).map(|_| model.sample(4096, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn contended_transfer_shares_bandwidth() {
        let model = LatencyModel::gcs_like();
        let solo = model.contended_transfer_time(1_000_000, 1);
        let batch = model.contended_transfer_time(16_000_000, 16);
        // 16 concurrent 1MB requests take ~16x the single transfer (shared
        // link) plus dispatch overhead, not 1x.
        assert!(batch.as_secs_f64() > 10.0 * solo.as_secs_f64());
    }
}
