//! Property tests for the storage substrate: data integrity through every
//! decorator, latency-model sanity, and batch semantics.

use airphant_storage::{
    CachedStore, InMemoryStore, LatencyModel, ObjectStore, RangeRequest, SimulatedCloudStore,
};
use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any stack of decorators returns exactly the stored bytes for any
    /// valid range.
    #[test]
    fn decorators_preserve_bytes(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        ranges in prop::collection::vec((0usize..2048, 0usize..512), 1..10),
        seed in 0u64..1000,
        budget in 0usize..4096,
    ) {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(data.clone())).unwrap();
        let sim = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), seed);
        let store = CachedStore::new(sim, budget);
        for (offset, len) in ranges {
            let offset = offset.min(data.len());
            let len = len.min(data.len() - offset);
            let fetched = store.get_range("blob", offset as u64, len as u64).unwrap();
            prop_assert_eq!(&fetched.bytes[..], &data[offset..offset + len]);
            // Read again: the cache (if it admitted) must return the same.
            let again = store.get_range("blob", offset as u64, len as u64).unwrap();
            prop_assert_eq!(&again.bytes[..], &data[offset..offset + len]);
        }
    }

    /// Latency grows (weakly) with fetch size: the affine model can jitter
    /// per-sample, but the transfer component is deterministic and
    /// monotone.
    #[test]
    fn transfer_time_is_monotone_in_size(a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let model = LatencyModel::gcs_like();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.transfer_time(small) <= model.transfer_time(large));
    }

    /// A concurrent batch is never slower than issuing the same requests
    /// sequentially (same seed ⇒ same jitter stream isn't guaranteed, so
    /// compare against the analytic sequential lower bound instead: the
    /// batch wait is the max of per-request waits, which is ≤ their sum).
    #[test]
    fn batch_wait_never_exceeds_sum_of_parts(
        n in 1usize..12,
        size in 1u64..8192,
        seed in 0u64..1000,
    ) {
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(vec![0u8; (n as u64 * size) as usize])).unwrap();
        let store = SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), seed);
        let reqs: Vec<RangeRequest> = (0..n as u64)
            .map(|i| RangeRequest::new("blob", i * size, size))
            .collect();
        let batch = store.get_ranges(&reqs).unwrap();
        let wait_sum: f64 = batch
            .parts
            .iter()
            .map(|p| p.latency.first_byte.as_secs_f64())
            .sum();
        prop_assert!(batch.batch_wait.as_secs_f64() <= wait_sum + 1e-9);
        prop_assert_eq!(batch.parts.len(), n);
    }

    /// First-byte samples are strictly positive and finite under the
    /// default model, for any seed.
    #[test]
    fn first_byte_samples_are_sane(seed in 0u64..10_000) {
        let model = LatencyModel::gcs_like();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let s = model.sample_first_byte(&mut rng);
            prop_assert!(s.as_millis_f64() > 0.0);
            prop_assert!(s.as_millis_f64() < 60_000.0, "sample {s} implausible");
        }
    }
}
