//! Equivalence properties for the coalescing I/O scheduler: for ANY mix
//! of overlapping / adjacent / disjoint ranges, [`CoalescingStore`]
//! returns byte-for-byte the same parts as the bare store, and never
//! issues more backend requests than the uncoalesced path — sequentially
//! and from 8 concurrent threads.

use airphant_storage::{
    CoalescingStore, InMemoryStore, LatencyModel, ObjectStore, RangeRequest, SchedulerConfig,
    SimulatedCloudStore,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Clamp raw `(offset, len)` pairs into valid ranges over `data`.
fn clamp_ranges(data: &[u8], ranges: &[(usize, usize)]) -> Vec<RangeRequest> {
    ranges
        .iter()
        .map(|&(offset, len)| {
            let offset = offset.min(data.len());
            let len = len.min(data.len() - offset);
            RangeRequest::new("blob", offset as u64, len as u64)
        })
        .collect()
}

fn fresh_store(data: &[u8], seed: u64) -> SimulatedCloudStore<InMemoryStore> {
    let inner = InMemoryStore::new();
    inner.put("blob", Bytes::from(data.to_vec())).unwrap();
    SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over the simulated cloud store: identical parts, never more
    /// backend requests, and the batch latency stays max+shared-shaped.
    #[test]
    fn coalesced_equals_uncoalesced_over_cloud(
        data in prop::collection::vec(any::<u8>(), 1..4096),
        ranges in prop::collection::vec((0usize..4096, 0usize..512), 1..16),
        gap in 0u64..256,
        seed in 0u64..1000,
    ) {
        let reqs = clamp_ranges(&data, &ranges);
        let plain = fresh_store(&data, seed);
        let plain_batch = plain.get_ranges(&reqs).unwrap();
        let sched = CoalescingStore::with_config(
            fresh_store(&data, seed),
            SchedulerConfig::new().coalesce_only().with_coalesce_gap(gap),
        );
        let batch = sched.get_ranges(&reqs).unwrap();
        prop_assert_eq!(batch.parts.len(), plain_batch.parts.len());
        for (i, (a, b)) in batch.parts.iter().zip(&plain_batch.parts).enumerate() {
            prop_assert_eq!(&a.bytes[..], &b.bytes[..], "part {} bytes differ", i);
        }
        prop_assert!(
            sched.inner().stats().read_requests <= plain.stats().read_requests,
            "coalescing must never add backend requests: {} > {}",
            sched.inner().stats().read_requests,
            plain.stats().read_requests
        );
        let stats = sched.stats();
        prop_assert_eq!(
            stats.merged_ranges,
            plain.stats().read_requests - sched.inner().stats().read_requests
        );
    }

    /// Over the plain in-memory store (zero latency): the same byte
    /// identity, so correctness does not lean on the latency model.
    #[test]
    fn coalesced_equals_uncoalesced_over_memory(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        ranges in prop::collection::vec((0usize..2048, 0usize..256), 1..12),
        gap in 0u64..4096,
    ) {
        let reqs = clamp_ranges(&data, &ranges);
        let inner = InMemoryStore::new();
        inner.put("blob", Bytes::from(data.clone())).unwrap();
        let sched = CoalescingStore::with_config(
            inner,
            SchedulerConfig::new().coalesce_only().with_coalesce_gap(gap),
        );
        let batch = sched.get_ranges(&reqs).unwrap();
        for (r, part) in reqs.iter().zip(&batch.parts) {
            let (o, l) = (r.offset as usize, r.len as usize);
            prop_assert_eq!(&part.bytes[..], &data[o..o + l]);
        }
    }

    /// 8 threads with independent random range sets through ONE shared
    /// scheduler (fusion window open): every thread gets byte-identical
    /// parts, and the backend still sees no more requests than the
    /// uncoalesced total.
    #[test]
    fn concurrent_coalesced_reads_are_byte_identical(
        data in prop::collection::vec(any::<u8>(), 64..2048),
        per_thread in prop::collection::vec(
            prop::collection::vec((0usize..2048, 0usize..256), 1..6), 8..9),
        seed in 0u64..1000,
    ) {
        let total_requests: usize = per_thread.iter().map(Vec::len).sum();
        let sched = Arc::new(CoalescingStore::with_config(
            fresh_store(&data, seed),
            SchedulerConfig::new()
                .with_coalesce_gap(64)
                .with_batch_window(Duration::from_millis(2)),
        ));
        std::thread::scope(|s| {
            for ranges in &per_thread {
                let sched = sched.clone();
                let reqs = clamp_ranges(&data, ranges);
                let data = &data;
                s.spawn(move || {
                    let batch = sched.get_ranges(&reqs).unwrap();
                    for (r, part) in reqs.iter().zip(&batch.parts) {
                        let (o, l) = (r.offset as usize, r.len as usize);
                        assert_eq!(&part.bytes[..], &data[o..o + l]);
                    }
                });
            }
        });
        prop_assert!(
            sched.inner().stats().read_requests <= total_requests as u64,
            "fusion + merging must not add requests: {} > {}",
            sched.inner().stats().read_requests,
            total_requests
        );
    }
}
