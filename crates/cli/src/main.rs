//! `airphant` — build and query IoU Sketch indexes from the command line.
//!
//! The store is a directory (the [`LocalFsStore`] backend); blob names map
//! to file paths, the way the paper's gcsfuse mount exposes a bucket.
//!
//! ```text
//! airphant build  --store DIR --corpus PREFIX --index PREFIX [--bins N] [--f0 F] [--layers L]
//! airphant search --store DIR --index PREFIX WORD... [--top K] [--simulate-cloud]
//! airphant stats  --store DIR --corpus PREFIX
//! ```

use airphant::{AirphantConfig, BoolQuery, Builder, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{LatencyModel, LocalFsStore, ObjectStore, SimulatedCloudStore};
use std::process::ExitCode;
use std::sync::Arc;

mod args;
use args::Args;

const USAGE: &str = "usage:
  airphant build  --store DIR --corpus PREFIX --index PREFIX
                  [--bins N] [--f0 F] [--layers L] [--common FRAC]
  airphant search --store DIR --index PREFIX WORD...
                  [--top K] [--simulate-cloud] [--timeout-ms MS]
  airphant stats  --store DIR --corpus PREFIX

Multiple WORDs are combined with AND. The store directory is a local
object store (one file per blob); a corpus PREFIX selects every blob under
it, parsed as newline-delimited documents of whitespace keywords.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::parse(argv)?;
    match args.command() {
        "build" => build(&mut args),
        "search" => search(&mut args),
        "stats" => stats(&mut args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn open_store(args: &mut Args) -> Result<Arc<dyn ObjectStore>, String> {
    let dir = args.required("--store")?;
    let store = LocalFsStore::new(dir).map_err(|e| e.to_string())?;
    Ok(Arc::new(store))
}

fn open_corpus(args: &mut Args, store: Arc<dyn ObjectStore>) -> Result<Corpus, String> {
    let prefix = args.required("--corpus")?;
    let blobs = store.list(&prefix).map_err(|e| e.to_string())?;
    if blobs.is_empty() {
        return Err(format!("no blobs under corpus prefix {prefix}"));
    }
    Ok(Corpus::new(
        store,
        blobs,
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    ))
}

fn build(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let corpus = open_corpus(args, store)?;
    let index = args.required("--index")?;
    let mut config = AirphantConfig::default();
    if let Some(bins) = args.optional_parse::<usize>("--bins")? {
        config = config.with_total_bins(bins);
    }
    if let Some(f0) = args.optional_parse::<f64>("--f0")? {
        config = config.with_accuracy(f0);
    }
    if let Some(layers) = args.optional_parse::<usize>("--layers")? {
        config = config.with_manual_layers(layers);
    }
    if let Some(frac) = args.optional_parse::<f64>("--common")? {
        config = config.with_common_fraction(frac);
    }
    args.finish()?;

    let report = Builder::new(config)
        .build(&corpus, &index)
        .map_err(|e| e.to_string())?;
    println!(
        "built {index}: {} docs, {} words, L = {} (L* = {}), expected FP = {}",
        report.docs,
        report.words,
        report.layers,
        report.optimal_layers,
        report
            .expected_fp
            .map(|f| format!("{f:.4}/query"))
            .unwrap_or_else(|| "n/a".into()),
    );
    println!(
        "persisted {} superpost block(s), {} bytes total ({} header)",
        report.blocks,
        report.index_bytes(),
        report.header_bytes,
    );
    Ok(())
}

fn search(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let top_k = args.optional_parse::<usize>("--top")?;
    let simulate = args.flag("--simulate-cloud");
    let timeout_ms = args.optional_parse::<u64>("--timeout-ms")?;
    let words = args.positional();
    if words.is_empty() {
        return Err("search needs at least one WORD".into());
    }
    args.finish()?;

    let store: Arc<dyn ObjectStore> = if simulate {
        Arc::new(SimulatedCloudStore::new(
            store,
            LatencyModel::gcs_like(),
            0xC0FFEE,
        ))
    } else {
        store
    };
    let searcher = Searcher::open(store, &index).map_err(|e| e.to_string())?;

    let result = if words.len() == 1 {
        match timeout_ms {
            Some(_) if top_k.is_some() => {
                return Err("--timeout-ms and --top cannot be combined".into())
            }
            Some(ms) => {
                let (postings, trace) = searcher
                    .lookup_with_timeout(
                        &words[0],
                        airphant_storage::SimDuration::from_millis(ms),
                    )
                    .map_err(|e| e.to_string())?;
                println!(
                    "lookup({:?}) with {ms}ms timeout: {} candidate(s) in {}",
                    words[0],
                    postings.len(),
                    trace.total()
                );
                return Ok(());
            }
            None => searcher
                .search(&words[0], top_k)
                .map_err(|e| e.to_string())?,
        }
    } else {
        let query = BoolQuery::and(words.iter().map(BoolQuery::term));
        searcher.search_boolean(&query).map_err(|e| e.to_string())?
    };

    println!(
        "{} hit(s) in {} simulated ({} requests, {} bytes, {} FP filtered)",
        result.hits.len(),
        result.latency(),
        result.trace.requests(),
        result.trace.bytes(),
        result.false_positives_removed,
    );
    for hit in &result.hits {
        println!("{}@{}+{}\t{}", hit.blob, hit.offset, hit.len, hit.text);
    }
    Ok(())
}

fn stats(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let corpus = open_corpus(args, store)?;
    args.finish()?;
    let p = corpus.profile().map_err(|e| e.to_string())?;
    println!("documents: {}", p.n_docs);
    println!("terms:     {}", p.n_terms);
    println!("words:     {}", p.n_words);
    println!("bytes:     {}", p.total_bytes);
    println!("mean distinct words/doc: {:.1}", p.mean_distinct_words());
    println!("max  distinct words/doc: {}", p.max_distinct_words());
    println!("top terms by document frequency:");
    for (word, df) in p.vocabulary_by_frequency().into_iter().take(10) {
        println!("  {df:>8}  {word}");
    }
    Ok(())
}
