//! `airphant` — build and query IoU Sketch indexes from the command line.
//!
//! The store is a directory (the [`LocalFsStore`] backend); blob names map
//! to file paths, the way the paper's gcsfuse mount exposes a bucket.
//!
//! ```text
//! airphant build       --store DIR --corpus PREFIX --index PREFIX
//!                      [--bins N] [--f0 F] [--layers L] [--ngram N]
//! airphant search      --store DIR --index PREFIX [WORD...]
//!                      [--or] [--ngram N] [--substring PATTERN] [--gram N]
//!                      [--prefix P] [--fuzzy WORD] [--max-edits K]
//!                      [--top K] [--simulate-cloud]
//! airphant bench-serve --store DIR --index PREFIX [WORD...]
//!                      [--corpus PREFIX] [--workers N] [--queue CAP]
//!                      [--queries M] [--cache-kb KB] [--deadline-ms MS]
//!                      [--ngram N] [--top K] [--clients N]
//!                      [--priority-mix H:N:L] [--hedge-pct P]
//! airphant stats       --store DIR --corpus PREFIX
//! ```

use airphant::{
    AdmissionConfig, AirphantConfig, AsyncQueryServer, AsyncServerConfig, Builder,
    CompactionPolicy, Compactor, FlushPolicy, Flusher, HedgeConfig, LiveIndex, Priority, Query,
    QueryOptions, QueryServer, SearchEngine, Searcher, SegmentManager, ServerConfig, ServerStats,
    ShardRouter, StagedEngine, SubmitError, SubmitSpec,
};
use airphant_corpus::{Corpus, LineSplitter, NgramTokenizer, Tokenizer, WhitespaceTokenizer};
use airphant_storage::{
    CachedStore, CoalescingStore, LatencyModel, LocalFsStore, ObjectStore, SchedulerConfig,
    SimDuration, SimulatedCloudStore,
};
use std::process::ExitCode;
use std::sync::Arc;

mod args;
use args::Args;

const USAGE: &str = "usage:
  airphant build       --store DIR --corpus PREFIX --index PREFIX [--append]
                       [--shards N] [--bins N] [--f0 F] [--layers L]
                       [--common FRAC] [--ngram N] [--format v1|v2]
  airphant append      --store DIR --index PREFIX [LINE...]
                       [--probe WORD] [--batch N] [--ngram N]
                       [--bins N] [--f0 F] [--layers L] [--common FRAC]
  airphant search      --store DIR --index PREFIX [WORD...]
                       [--or] [--ngram N] [--substring PATTERN] [--gram N]
                       [--prefix P] [--fuzzy WORD] [--max-edits K]
                       [--top K] [--simulate-cloud] [--coalesce]
                       [--timeout-ms MS]
  airphant segments    --store DIR --index PREFIX
  airphant compact     --store DIR --index PREFIX
                       [--max-live N] [--merge K] [--sweep] [--ngram N]
                       [--bins N] [--f0 F] [--layers L] [--common FRAC]
  airphant reshard     --store DIR --index PREFIX (--split | --merge)
                       [--gc] [--ngram N] [--bins N] [--f0 F] [--layers L]
                       [--common FRAC]
  airphant bench-serve --store DIR --index PREFIX [WORD...]
                       [--corpus PREFIX] [--workers N] [--queue CAP]
                       [--queries M] [--cache-kb KB] [--deadline-ms MS]
                       [--ngram N] [--top K] [--coalesce] [--clients N]
                       [--priority-mix H:N:L] [--hedge-pct P]
  airphant bench-ingest --store DIR --index PREFIX [--docs N] [--batch N]
                       [--flush-ms MS] [--bins N] [--f0 F] [--layers L]
                       [--common FRAC]
  airphant stats       --store DIR --corpus PREFIX

Multiple WORDs are combined with AND (--or combines them with OR).
--substring adds a literal-substring predicate; it needs an index built
with --ngram N, and search must pass the same --ngram N (the pattern's
gram size defaults to it, override with --gram). --prefix P matches any
indexed word starting with P (typeahead) and --fuzzy WORD matches words
within --max-edits edits (default 1); both resolve through the v2
segment vocabulary, so they need indexes built with --format v2 (the
default). However the query is
composed, its index lookup is a single batch of concurrent reads. The
store directory is a local object store (one file per blob); a corpus
PREFIX selects every blob under it, parsed as newline-delimited
documents of whitespace keywords (or N-grams under --ngram).

build --append treats --index as a *segmented* index base: the corpus
becomes a new immutable segment published atomically in the manifest
(search then opens the whole live set). build --shards N hash-partitions
the corpus across N independent segmented indexes under --index (each
append adds one segment per non-empty shard); search auto-detects the
sharded layout and fans every query out to all shards in parallel,
merging results in stable doc-id order. `segments` shows the manifest —
generation plus each live segment's prefix, size, source blobs, on-wire
format version, and (for v2 segments) the layer directory's per-section
byte breakdown (per shard for sharded layouts).

--format selects the on-wire segment format the Builder writes
(default v2: an 8-aligned section table readable in place, with a layer
directory that classifies every byte range as Index or Data so tiered
caches can pin the hot index structures). Readers accept both formats
transparently; v1 remains for compatibility with old indexes.
`compact` merges the smallest segments until at most --max-live remain
(--merge at a time, default 4), publishes each swap atomically, then
garbage-collects the superseded blobs; --sweep additionally reclaims
orphaned blobs from crashed builds (only use it when nothing is
appending concurrently). compact's config knobs must match what the
segments were built with.

`reshard` changes a sharded index's partition count *online*
(docs/adr/010-multi-region-replication.md): --split doubles the shards,
--merge halves them (the count must be even). The documents are
migrated into a complete new shard set under the next layout
generation, then one conditional write swings the layout blob — open
searchers keep serving the old generation until they reopen, and a
concurrent reshard loses the CAS with a typed error. The config knobs
must match what the shards were built with. --gc additionally deletes
the superseded generation's blobs right after the cutover; omit it
while readers may still hold the old layout (their queries keep
working against the old blobs until they reopen).

bench-serve drives a closed-loop workload through a QueryServer (a fixed
worker pool over one shared Searcher and one shared byte-budgeted cache,
on a simulated gcs-like cloud link) and prints throughput + tail latency.
The workload cycles the given WORDs, or samples the vocabulary of
--corpus PREFIX when no WORDs are given.

--clients N switches bench-serve to the *async* admission-controlled
core (docs/adr/006-async-admission-core.md): N simulated clients submit
at once and suspend as event-driven state machines over --workers
executor threads, with --queue capping the admitted in-flight set
(watermark load-shedding: Low sheds at 50%, Normal at 80%, High only at
the cap). --priority-mix H:N:L weights the submission classes (default
0:1:0, all Normal); --hedge-pct P re-dispatches a storage batch that
straggles past its observed Pth latency percentile against a replica
backend below the cache. Shed and hedge counters print after the run.

`append` streams documents into the index's in-memory memtable tail
(docs/adr/007-streaming-ingestion.md): each LINE (positional, or one per
stdin line when no positionals are given) is searchable the moment it is
appended — before any durability — and a group-commit flush then
publishes the batches as real segments in the manifest, exactly as
build --append would. --probe WORD searches the live index after the
appends but *before* the flush, demonstrating freshness; --batch N seals
the memtable every N docs (default 4096). The config knobs must match
the existing segments.

bench-ingest drives a synthetic log stream through the same live index
with a background flusher thread (--flush-ms, default 50) and prints
sustained ingest throughput, freshness-probe latency, and the flush
counters. --docs N sizes the stream (default 20000); --batch N is the
group-commit seal threshold (default 1024).

--coalesce inserts the cross-query I/O scheduler below the cache: each
batch's overlapping/adjacent ranges merge into fewer larger reads, and
concurrent workers' batches fuse into one shared backend round trip
(see docs/adr/005-io-scheduler.md). The scheduler's counters are
printed after the run.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::parse(argv)?;
    match args.command() {
        "build" => build(&mut args),
        "append" => append(&mut args),
        "search" => search(&mut args),
        "segments" => segments(&mut args),
        "compact" => compact(&mut args),
        "reshard" => reshard(&mut args),
        "bench-serve" => bench_serve(&mut args),
        "bench-ingest" => bench_ingest(&mut args),
        "stats" => stats(&mut args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn open_store(args: &mut Args) -> Result<Arc<dyn ObjectStore>, String> {
    let dir = args.required("--store")?;
    let store = LocalFsStore::new(dir).map_err(|e| e.to_string())?;
    Ok(Arc::new(store))
}

/// The document-word parser selected by `--ngram N` (whitespace keywords
/// when absent). Build and search must agree on it.
fn tokenizer_for(ngram: Option<usize>) -> Result<Arc<dyn Tokenizer>, String> {
    match ngram {
        None => Ok(Arc::new(WhitespaceTokenizer)),
        Some(0) => Err("--ngram must be at least 1".into()),
        Some(n) => Ok(Arc::new(NgramTokenizer::new(n))),
    }
}

fn open_corpus(
    args: &mut Args,
    store: Arc<dyn ObjectStore>,
    tokenizer: Arc<dyn Tokenizer>,
) -> Result<Corpus, String> {
    let prefix = args.required("--corpus")?;
    let blobs = store.list(&prefix).map_err(|e| e.to_string())?;
    if blobs.is_empty() {
        return Err(format!("no blobs under corpus prefix {prefix}"));
    }
    Ok(Corpus::new(store, blobs, Arc::new(LineSplitter), tokenizer))
}

/// The shared `--bins/--f0/--layers/--common/--format` config knobs
/// (build and compact must describe the same structure).
fn config_from(args: &mut Args) -> Result<AirphantConfig, String> {
    let mut config = AirphantConfig::default();
    if let Some(bins) = args.optional_parse::<usize>("--bins")? {
        config = config.with_total_bins(bins);
    }
    if let Some(f0) = args.optional_parse::<f64>("--f0")? {
        config = config.with_accuracy(f0);
    }
    if let Some(layers) = args.optional_parse::<usize>("--layers")? {
        config = config.with_manual_layers(layers);
    }
    if let Some(frac) = args.optional_parse::<f64>("--common")? {
        config = config.with_common_fraction(frac);
    }
    if let Some(fmt) = args.optional_parse::<String>("--format")? {
        let format = fmt
            .parse::<airphant::FormatVersion>()
            .map_err(|e| e.to_string())?;
        config = config.with_format(format);
    }
    Ok(config)
}

fn build(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let corpus = open_corpus(args, store.clone(), tokenizer_for(ngram)?)?;
    let index = args.required("--index")?;
    let append = args.flag("--append");
    let shards = args.optional_parse::<usize>("--shards")?;
    let config = config_from(args)?;
    args.finish()?;

    // A shard layout under --index (or an explicit --shards N) routes
    // the corpus through the ShardRouter: each non-empty shard gains one
    // segment, published atomically in that shard's manifest.
    if shards.is_some() || ShardRouter::is_sharded(&store, &index) {
        let router = match shards {
            Some(n) => ShardRouter::create(store, &index, n).map_err(|e| e.to_string())?,
            None => ShardRouter::open(store, &index).map_err(|e| e.to_string())?,
        };
        let appends = router.append(&corpus, &config).map_err(|e| e.to_string())?;
        let generations = router.generations().map_err(|e| e.to_string())?;
        println!(
            "sharded {index} across {} shard(s): {} document(s) routed",
            router.shards(),
            appends.iter().map(|a| a.docs).sum::<u64>(),
        );
        for a in &appends {
            match (&a.report, &a.segment_prefix) {
                (Some(report), Some(prefix)) => println!(
                    "  shard {:>3}  {} doc(s) -> {prefix} ({} bytes, generation {})",
                    a.shard,
                    a.docs,
                    report.index_bytes(),
                    generations[a.shard],
                ),
                _ => println!(
                    "  shard {:>3}  0 doc(s) -> no new segment (generation {})",
                    a.shard, generations[a.shard],
                ),
            }
        }
        return Ok(());
    }

    let (report, built_prefix) = if append {
        let mgr = SegmentManager::new(store, &index);
        let (report, prefix) = mgr.append(&corpus, &config).map_err(|e| e.to_string())?;
        let manifest = mgr.manifest().map_err(|e| e.to_string())?;
        println!(
            "appended segment {prefix} (generation {}, {} live segment(s))",
            manifest.generation,
            manifest.segments.len(),
        );
        (report, prefix)
    } else {
        let report = Builder::new(config)
            .build(&corpus, &index)
            .map_err(|e| e.to_string())?;
        (report, index.clone())
    };
    println!(
        "built {built_prefix}: {} docs, {} words, L = {} (L* = {}), expected FP = {}",
        report.docs,
        report.words,
        report.layers,
        report.optimal_layers,
        report
            .expected_fp
            .map(|f| format!("{f:.4}/query"))
            .unwrap_or_else(|| "n/a".into()),
    );
    println!(
        "persisted {} superpost block(s), {} bytes total ({} header, format {})",
        report.blocks,
        report.index_bytes(),
        report.header_bytes,
        report.format,
    );
    Ok(())
}

/// `append`: stream documents into the live memtable tail, prove they
/// are searchable pre-durability, then group-commit them as segments.
fn append(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let probe = args.optional_parse::<String>("--probe")?;
    let batch = args.optional_parse::<usize>("--batch")?.unwrap_or(4096);
    let config = config_from(args)?;
    let lines = args.positional();
    args.finish()?;

    let idx = LiveIndex::open_with_tokenizer(store, &index, config, tokenizer_for(ngram)?)
        .map_err(|e| e.to_string())?
        .with_policy(FlushPolicy {
            max_docs: batch,
            max_bytes: u64::MAX,
        });
    let mut appended = 0usize;
    if lines.is_empty() {
        for line in std::io::stdin().lines() {
            let line = line.map_err(|e| e.to_string())?;
            if line.is_empty() {
                continue;
            }
            idx.append(&line).map_err(|e| e.to_string())?;
            appended += 1;
        }
    } else {
        for line in &lines {
            idx.append(line).map_err(|e| e.to_string())?;
            appended += 1;
        }
    }
    println!(
        "appended {appended} doc(s): searchable now, {} pending durability",
        idx.pending_docs(),
    );
    if let Some(word) = probe {
        let result = idx
            .execute(&Query::term(&word), &QueryOptions::new())
            .map_err(|e| e.to_string())?;
        println!("pre-flush probe {word:?}: {} hit(s)", result.hits.len());
        for hit in result.hits.iter().take(5) {
            println!("  {}", hit.text);
        }
    }
    let report = idx.flush().map_err(|e| e.to_string())?;
    println!(
        "flushed {} batch(es): {} doc(s), {} corpus byte(s) -> generation {}",
        report.batches, report.docs, report.corpus_bytes, report.generation,
    );
    Ok(())
}

/// `bench-ingest`: a synthetic log stream through the live index with a
/// background flusher, reporting throughput and freshness.
fn bench_ingest(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let n_docs = args.optional_parse::<usize>("--docs")?.unwrap_or(20_000);
    let batch = args.optional_parse::<usize>("--batch")?.unwrap_or(1_024);
    let flush_ms = args.optional_parse::<u64>("--flush-ms")?.unwrap_or(50);
    let config = config_from(args)?;
    args.finish()?;

    let idx = Arc::new(
        LiveIndex::open(store, &index, config)
            .map_err(|e| e.to_string())?
            .with_policy(FlushPolicy {
                max_docs: batch,
                max_bytes: u64::MAX,
            }),
    );
    let flusher = Flusher::start(idx.clone(), std::time::Duration::from_millis(flush_ms));
    let started = std::time::Instant::now();
    let mut probe_total = std::time::Duration::ZERO;
    let mut probes = 0u32;
    for i in 0..n_docs {
        idx.append(&format!(
            "req{i} svc{} code{} latency{}",
            i % 37,
            i % 7,
            (i * 13) % 113,
        ))
        .map_err(|e| e.to_string())?;
        // Every 512th append, verify the newest doc is already
        // searchable and time the probe.
        if i % 512 == 511 {
            let t = std::time::Instant::now();
            let result = idx
                .execute(&Query::term(format!("req{i}")), &QueryOptions::new())
                .map_err(|e| e.to_string())?;
            probe_total += t.elapsed();
            probes += 1;
            if result.hits.len() != 1 {
                return Err(format!("freshness probe req{i} missed the newest doc"));
            }
        }
    }
    let ingest_wall = started.elapsed();
    let stats = flusher.stop();
    let total_wall = started.elapsed();
    println!(
        "ingested {n_docs} doc(s) in {:.2}s ({:.0} docs/s appended, {:.0} docs/s durable)",
        total_wall.as_secs_f64(),
        n_docs as f64 / ingest_wall.as_secs_f64(),
        n_docs as f64 / total_wall.as_secs_f64(),
    );
    println!(
        "freshness: {probes} probe(s), all served pre-durability, mean {:.2}ms",
        probe_total.as_secs_f64() * 1e3 / f64::from(probes.max(1)),
    );
    println!(
        "flusher: {} flush round(s), {} failure(s), {} doc(s) committed -> generation {}",
        stats.flushes,
        stats.failures,
        stats.docs_flushed,
        idx.generation(),
    );
    if idx.pending_docs() != 0 {
        return Err(format!(
            "{} doc(s) still pending after the final flush",
            idx.pending_docs()
        ));
    }
    Ok(())
}

/// `segments` and `compact` are read-modify commands over an existing
/// segmented index: a missing manifest means a typo'd prefix or a plain
/// (non-`--append`) index, not a healthy empty one.
fn require_manifest(store: &Arc<dyn ObjectStore>, index: &str) -> Result<(), String> {
    if !store.exists(&format!("{index}/manifest")) {
        return Err(format!(
            "no segment manifest under {index} (segmented indexes are created with build --append)"
        ));
    }
    Ok(())
}

/// Print one segmented index's manifest: every live segment's full
/// (shard-qualified, for sharded layouts) prefix, size, and source
/// blobs. `indent` nests shard listings under the layout header.
fn print_manifest(store: &Arc<dyn ObjectStore>, base: &str, indent: &str) -> Result<(), String> {
    let mgr = SegmentManager::new(store.clone(), base);
    let manifest = mgr.manifest().map_err(|e| e.to_string())?;
    println!(
        "{indent}{base}: generation {}, {} live segment(s)",
        manifest.generation,
        manifest.segments.len(),
    );
    for seg in &manifest.segments {
        let prefix = seg.prefix(base);
        let bytes = store
            .usage(&format!("{prefix}/"))
            .map_err(|e| e.to_string())?;
        println!(
            "{indent}  {prefix}  {bytes:>10} bytes  {} corpus blob(s): {}",
            seg.corpus_blobs.len(),
            seg.corpus_blobs.join(", "),
        );
        print_segment_format(store, &prefix, indent)?;
    }
    Ok(())
}

/// Print one segment's on-wire format version and, for v2, the layer
/// directory's per-section byte breakdown.
fn print_segment_format(
    store: &Arc<dyn ObjectStore>,
    prefix: &str,
    indent: &str,
) -> Result<(), String> {
    let searcher = Searcher::open(store.clone(), prefix).map_err(|e| e.to_string())?;
    let fmt = searcher.format();
    match &fmt.directory {
        Some(dir) => {
            println!(
                "{indent}    format v{}: {} index byte(s), {} data byte(s) \
                 in {} superpost block(s)",
                fmt.version,
                dir.index_bytes(),
                dir.data_bytes(),
                dir.data_blocks.len(),
            );
            for s in &dir.sections {
                println!(
                    "{indent}      {:<8} {:>8} B  @{:<8} {:?}",
                    s.kind.name(),
                    s.len,
                    s.offset,
                    s.class,
                );
            }
        }
        None => println!("{indent}    format v{}", fmt.version),
    }
    Ok(())
}

fn segments(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    args.finish()?;
    if ShardRouter::is_sharded(&store, &index) {
        let router = ShardRouter::open(store.clone(), &index).map_err(|e| e.to_string())?;
        // A hole in the layout surfaces as the shard-naming error.
        let bases = router.shard_bases().map_err(|e| e.to_string())?;
        println!("{index}: {} shard(s)", bases.len());
        for base in &bases {
            print_manifest(&store, base, "  ")?;
        }
        return Ok(());
    }
    require_manifest(&store, &index)?;
    print_manifest(&store, &index, "")
}

fn compact(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let max_live = args.optional_parse::<usize>("--max-live")?.unwrap_or(8);
    let merge = args.optional_parse::<usize>("--merge")?.unwrap_or(4);
    let sweep = args.flag("--sweep");
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let config = config_from(args)?;
    args.finish()?;
    if max_live < 1 {
        return Err("--max-live must be at least 1".into());
    }
    let policy = CompactionPolicy::new()
        .with_max_live_segments(max_live)
        .with_merge_factor(merge)
        .with_orphan_sweep(sweep);

    // Sharded layout: compact every shard (each with its routing filter,
    // so merged rebuilds keep only that shard's slice of shared blobs).
    if ShardRouter::is_sharded(&store, &index) {
        let router = ShardRouter::open(store, &index).map_err(|e| e.to_string())?;
        let bases = router.shard_bases().map_err(|e| e.to_string())?;
        let reports = router
            .compact_with_tokenizer(&config, &policy, tokenizer_for(ngram)?)
            .map_err(|e| e.to_string())?;
        println!("compacted {index}: {} shard(s)", reports.len());
        for (base, report) in bases.iter().zip(&reports) {
            println!(
                "  {base}: {} -> {} live segment(s) in {} round(s), generation {}, \
                 deleted {} superseded + {} orphan blob(s)",
                report.live_before,
                report.live_after,
                report.rounds,
                report.generation,
                report.superseded_blobs_deleted,
                report.orphan_blobs_deleted,
            );
        }
        return Ok(());
    }

    require_manifest(&store, &index)?;
    let mgr = SegmentManager::new(store, &index);
    let report = Compactor::new(&mgr, config)
        .with_tokenizer(tokenizer_for(ngram)?)
        .with_policy(policy)
        .compact()
        .map_err(|e| e.to_string())?;
    println!(
        "compacted {index}: {} -> {} live segment(s) in {} round(s), generation {}",
        report.live_before, report.live_after, report.rounds, report.generation,
    );
    println!(
        "merged away {} segment(s), built {} replacement(s), deleted {} superseded + {} orphan blob(s)",
        report.merged_segment_ids.len(),
        report.new_segment_ids.len(),
        report.superseded_blobs_deleted,
        report.orphan_blobs_deleted,
    );
    Ok(())
}

/// `reshard`: publish a new shard-layout generation with double
/// (`--split`) or half (`--merge`) the partitions, migrating every
/// document through the per-shard routing-filter rebuild path. The old
/// generation keeps serving already-open searchers; `--gc` reclaims it.
fn reshard(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let split = args.flag("--split");
    let merge = args.flag("--merge");
    let gc = args.flag("--gc");
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let config = config_from(args)?;
    args.finish()?;
    if split == merge {
        return Err("reshard needs exactly one of --split or --merge".into());
    }
    if !ShardRouter::is_sharded(&store, &index) {
        return Err(format!(
            "no shard layout under {index} (sharded indexes are created with build --shards N)"
        ));
    }
    let router = ShardRouter::open(store, &index).map_err(|e| e.to_string())?;
    let splitter: Arc<dyn airphant_corpus::DocSplitter> = Arc::new(LineSplitter);
    let (next, old) = if split {
        router.split(&config, splitter, tokenizer_for(ngram)?)
    } else {
        router.merge(&config, splitter, tokenizer_for(ngram)?)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "resharded {index}: generation {} ({} shard(s)) -> generation {} ({} shard(s))",
        old.generation,
        old.shards,
        next.generation(),
        next.shards(),
    );
    if gc {
        let deleted = next.gc_generation(&old).map_err(|e| e.to_string())?;
        println!(
            "reclaimed generation {}: deleted {deleted} blob(s)",
            old.generation,
        );
    } else {
        println!(
            "generation {} left in place for still-open searchers (pass --gc to reclaim it)",
            old.generation,
        );
    }
    Ok(())
}

/// Compose the [`Query`] AST from the command line's words and options.
///
/// Under `--ngram N` the index holds grams, not whole words, so a bare
/// WORD becomes a substring predicate (its grams prefilter, the verify
/// pass does the exact `contains`); without it, WORDs are exact terms.
#[allow(clippy::too_many_arguments)]
fn compose_query(
    words: &[String],
    any: bool,
    substring: Option<String>,
    ngram: Option<usize>,
    gram: usize,
    prefix: Option<String>,
    fuzzy: Option<String>,
    max_edits: u32,
) -> Result<Query, String> {
    let mut parts: Vec<Query> = Vec::new();
    if !words.is_empty() {
        let terms: Vec<Query> = words
            .iter()
            .map(|w| match ngram {
                Some(n) => Query::substring(w, n),
                None => Query::term(w),
            })
            .collect();
        parts.push(if any {
            Query::any(terms)
        } else {
            Query::all(terms)
        });
    }
    if let Some(pattern) = substring {
        parts.push(Query::substring(pattern, gram));
    }
    if let Some(p) = prefix {
        parts.push(Query::prefix(p));
    }
    if let Some(w) = fuzzy {
        parts.push(Query::fuzzy(w, max_edits));
    }
    match parts.len() {
        0 => Err("search needs at least one WORD, --substring, --prefix, or --fuzzy".into()),
        1 => Ok(parts.pop().expect("one part")),
        _ => Ok(Query::all(parts)),
    }
}

fn search(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let top_k = args.optional_parse::<usize>("--top")?;
    let simulate = args.flag("--simulate-cloud");
    let coalesce = args.flag("--coalesce");
    let any = args.flag("--or");
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let substring = args.optional_parse::<String>("--substring")?;
    let gram = args
        .optional_parse::<usize>("--gram")?
        .or(ngram)
        .unwrap_or(3);
    let prefix = args.optional_parse::<String>("--prefix")?;
    let fuzzy = args.optional_parse::<String>("--fuzzy")?;
    let max_edits_opt = args.optional_parse::<u32>("--max-edits")?;
    let timeout_ms = args.optional_parse::<u64>("--timeout-ms")?;
    let words = args.positional();
    args.finish()?;
    if substring.is_some() && ngram.is_none() {
        return Err("--substring needs an N-gram index: pass --ngram N matching the build".into());
    }
    if max_edits_opt.is_some() && fuzzy.is_none() {
        return Err("--max-edits only applies together with --fuzzy WORD".into());
    }
    let max_edits = max_edits_opt.unwrap_or(1);

    let store: Arc<dyn ObjectStore> = if simulate {
        Arc::new(SimulatedCloudStore::new(
            store,
            LatencyModel::gcs_like(),
            0xC0FFEE,
        ))
    } else {
        store
    };
    // The I/O scheduler merges each planner batch's overlapping/adjacent
    // ranges into fewer backend reads. A single CLI query has no
    // concurrent peers to fuse with, so the window stays closed.
    let scheduler = coalesce.then(|| {
        Arc::new(CoalescingStore::with_config(
            store.clone(),
            SchedulerConfig::new().coalesce_only(),
        ))
    });
    let store: Arc<dyn ObjectStore> = match &scheduler {
        Some(s) => s.clone(),
        None => store,
    };
    // A shard layout under the prefix means a *sharded* index (created
    // via build --shards): scatter the query across every shard. A
    // manifest means a *segmented* index (build --append): open the
    // whole live set instead of one header.
    let sharded = ShardRouter::is_sharded(&store, &index);
    let segmented = store.exists(&format!("{index}/manifest"));

    if let Some(ms) = timeout_ms {
        if top_k.is_some() {
            return Err("--timeout-ms and --top cannot be combined".into());
        }
        if words.len() != 1 || substring.is_some() || prefix.is_some() || fuzzy.is_some() {
            return Err("--timeout-ms applies to a single WORD lookup".into());
        }
        if segmented || sharded {
            return Err("--timeout-ms applies to a single-segment index".into());
        }
        let searcher = Searcher::open_with_tokenizer(store, &index, tokenizer_for(ngram)?)
            .map_err(|e| e.to_string())?;
        let (postings, trace) = searcher
            .lookup_with_timeout(&words[0], airphant_storage::SimDuration::from_millis(ms))
            .map_err(|e| e.to_string())?;
        println!(
            "lookup({:?}) with {ms}ms timeout: {} candidate(s) in {}",
            words[0],
            postings.len(),
            trace.total()
        );
        return Ok(());
    }

    let query = compose_query(
        &words, any, substring, ngram, gram, prefix, fuzzy, max_edits,
    )?;
    let opts = QueryOptions::new().with_top_k(top_k);
    let result = if sharded {
        let router = ShardRouter::open(store, &index).map_err(|e| e.to_string())?;
        let searcher = router
            .open_searcher_with_tokenizer(tokenizer_for(ngram)?)
            .map_err(|e| e.to_string())?;
        searcher.execute(&query, &opts).map_err(|e| e.to_string())?
    } else if segmented {
        let mgr = SegmentManager::new(store, &index);
        let searcher = mgr
            .open_with_tokenizer(tokenizer_for(ngram)?)
            .map_err(|e| e.to_string())?;
        searcher.execute(&query, &opts).map_err(|e| e.to_string())?
    } else {
        let searcher = Searcher::open_with_tokenizer(store, &index, tokenizer_for(ngram)?)
            .map_err(|e| e.to_string())?;
        searcher.execute(&query, &opts).map_err(|e| e.to_string())?
    };

    println!(
        "{} hit(s) in {} simulated ({} round trip(s), {} requests, {} bytes, {} FP filtered)",
        result.hits.len(),
        result.latency(),
        result.trace.round_trips(),
        result.trace.requests(),
        result.trace.bytes(),
        result.false_positives_removed,
    );
    for hit in &result.hits {
        println!("{}@{}+{}\t{}", hit.blob, hit.offset, hit.len, hit.text);
    }
    if let Some(s) = &scheduler {
        let st = s.stats();
        println!(
            "scheduler: {} range(s) merged away, {} bytes saved, {} backend batch(es)",
            st.merged_ranges, st.bytes_saved, st.backend_batches,
        );
    }
    Ok(())
}

/// Parse `--priority-mix H:N:L` into a repeating class pattern, e.g.
/// `1:2:1` submits High, Normal, Normal, Low, High, ...
fn parse_priority_mix(mix: &str) -> Result<Vec<Priority>, String> {
    let parts: Vec<&str> = mix.split(':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "--priority-mix wants three counts H:N:L, got {mix}"
        ));
    }
    let mut pattern = Vec::new();
    for (class, part) in [Priority::High, Priority::Normal, Priority::Low]
        .into_iter()
        .zip(parts)
    {
        let n: usize = part
            .parse()
            .map_err(|_| format!("bad count in --priority-mix: {part}"))?;
        for _ in 0..n {
            pattern.push(class);
        }
    }
    if pattern.is_empty() {
        return Err("--priority-mix must weight at least one class".into());
    }
    Ok(pattern)
}

/// The latency/cache lines shared by the sync and async bench-serve
/// report.
fn print_latency_and_cache(stats: &ServerStats) {
    println!(
        "latency ms: p50 {:.1}  p95 {:.1}  p99 {:.1}  (lookup wait p50 {:.1}, p99 {:.1})",
        stats.latency_p50_ms,
        stats.latency_p95_ms,
        stats.latency_p99_ms,
        stats.wait_p50_ms,
        stats.wait_p99_ms,
    );
    match stats.cache_hit_rate() {
        Some(rate) => {
            let (h, m) = stats.cache.expect("rate implies counters");
            println!(
                "shared cache: {:.1}% hit rate ({h} hits / {m} misses)",
                rate * 100.0
            );
        }
        None => println!("shared cache: no traffic"),
    }
}

fn bench_serve(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let index = args.required("--index")?;
    let corpus_prefix = args.optional_parse::<String>("--corpus")?;
    let workers = args.optional_parse::<usize>("--workers")?.unwrap_or(4);
    let queue_cap = args.optional_parse::<usize>("--queue")?;
    let queue = queue_cap.unwrap_or(workers * 4);
    let queries = args.optional_parse::<usize>("--queries")?.unwrap_or(200);
    let cache_kb = args.optional_parse::<usize>("--cache-kb")?.unwrap_or(1024);
    let deadline_ms = args.optional_parse::<u64>("--deadline-ms")?;
    let top_k = args.optional_parse::<usize>("--top")?;
    let ngram = args.optional_parse::<usize>("--ngram")?;
    let coalesce = args.flag("--coalesce");
    let clients = args.optional_parse::<usize>("--clients")?;
    let priority_mix = args.optional_parse::<String>("--priority-mix")?;
    let hedge_pct = args.optional_parse::<f64>("--hedge-pct")?;
    let mut words = args.positional();

    // No explicit WORDs: sample the vocabulary of --corpus.
    if words.is_empty() {
        let prefix = corpus_prefix
            .clone()
            .ok_or("bench-serve needs WORDs or --corpus PREFIX to draw a workload from")?;
        let blobs = store.list(&prefix).map_err(|e| e.to_string())?;
        if blobs.is_empty() {
            return Err(format!("no blobs under corpus prefix {prefix}"));
        }
        let corpus = Corpus::new(
            store.clone(),
            blobs,
            Arc::new(LineSplitter),
            tokenizer_for(ngram)?,
        );
        let profile = corpus.profile().map_err(|e| e.to_string())?;
        if profile.n_terms == 0 {
            return Err(format!(
                "corpus under {prefix} has no words to sample a workload from"
            ));
        }
        words = airphant_corpus::QueryWorkload::frequency_weighted(&profile, queries, 7)
            .words()
            .to_vec();
    }
    args.finish()?;

    if let Some(clients) = clients {
        if coalesce {
            return Err(
                "--coalesce applies to the sync worker pool; drop it with --clients".into(),
            );
        }
        return bench_serve_async(BenchServeAsync {
            store,
            index,
            words,
            clients,
            pattern: parse_priority_mix(priority_mix.as_deref().unwrap_or("0:1:0"))?,
            hedge_pct,
            workers,
            queue_cap,
            cache_kb,
            deadline_ms,
            top_k,
            ngram,
        });
    }
    if priority_mix.is_some() || hedge_pct.is_some() {
        return Err("--priority-mix and --hedge-pct need --clients (the async core)".into());
    }

    // The serving stack: local blobs → simulated cloud link → (optional
    // cross-query I/O scheduler) → one shared byte-budgeted cache → one
    // shared Searcher → the worker pool. The scheduler sits BELOW the
    // cache so that only misses coalesce and fuse (ADR-005).
    let sim: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        store,
        LatencyModel::gcs_like(),
        0xC0FFEE,
    ));
    let scheduler = coalesce.then(|| Arc::new(CoalescingStore::new(sim.clone())));
    let below_cache: Arc<dyn ObjectStore> = match &scheduler {
        Some(s) => s.clone(),
        None => sim,
    };
    let cache = Arc::new(CachedStore::new(below_cache, cache_kb << 10));
    let searcher = Searcher::open_with_tokenizer(
        cache.clone() as Arc<dyn ObjectStore>,
        &index,
        tokenizer_for(ngram)?,
    )
    .map_err(|e| e.to_string())?;

    let mut config = ServerConfig::new()
        .with_workers(workers)
        .with_queue_capacity(queue);
    if let Some(ms) = deadline_ms {
        config = config.with_deadline(SimDuration::from_millis(ms));
    }
    let cache_for_stats = cache.clone();
    let mut server = QueryServer::start(Arc::new(searcher), config)
        .with_cache_stats(move || cache_for_stats.hit_stats());
    if let Some(s) = &scheduler {
        let s = s.clone();
        server = server.with_scheduler_stats(move || s.stats());
    }

    let opts = QueryOptions::new().with_top_k(top_k);
    let mut tickets = Vec::with_capacity(queries);
    for i in 0..queries {
        let word = &words[i % words.len()];
        tickets.push(
            server
                .submit(Query::term(word), opts.clone())
                .map_err(|e| e.to_string())?,
        );
    }
    let mut timeouts = 0usize;
    for t in tickets {
        if t.wait().is_err() {
            timeouts += 1;
        }
    }
    let stats = server.shutdown();

    println!(
        "served {} queries on {} worker(s) (queue {queue}, cache {cache_kb} KiB)",
        stats.completed + stats.timed_out + stats.failed,
        stats.workers,
    );
    println!(
        "throughput: {:.1} q/s simulated ({:.1} q/s wall), makespan {}",
        stats.qps_sim, stats.qps_wall, stats.sim_makespan,
    );
    print_latency_and_cache(&stats);
    if let Some(sched) = stats.scheduler {
        println!(
            "i/o scheduler: {} range(s) merged, {} fused cross-query batch(es), \
             {} bytes saved, {} backend batch(es)",
            sched.merged_ranges, sched.fused_batches, sched.bytes_saved, sched.backend_batches,
        );
    }
    println!(
        "outcomes: {} ok, {} past deadline, {} failed, {} rejected",
        stats.completed, stats.timed_out, stats.failed, stats.rejected,
    );
    if timeouts != (stats.timed_out + stats.failed) as usize {
        return Err("ticket outcomes disagree with server counters".into());
    }
    Ok(())
}

/// Everything `bench-serve --clients N` needs after flag parsing.
struct BenchServeAsync {
    store: Arc<dyn ObjectStore>,
    index: String,
    words: Vec<String>,
    clients: usize,
    pattern: Vec<Priority>,
    hedge_pct: Option<f64>,
    workers: usize,
    queue_cap: Option<usize>,
    cache_kb: usize,
    deadline_ms: Option<u64>,
    top_k: Option<usize>,
    ngram: Option<usize>,
}

/// `bench-serve --clients N`: burst N simulated clients through the
/// async admission-controlled core (one event-driven state machine per
/// query, suspended while storage batches are in flight) and print the
/// shed/hedge counters next to the usual throughput and tail latency.
fn bench_serve_async(p: BenchServeAsync) -> Result<(), String> {
    // The same stack as the sync pool — local blobs → simulated cloud →
    // one shared byte-budgeted cache — but served by the async core.
    // The hedge replica sits BELOW the cache (a duplicate dispatch must
    // race the backend, not the cache it shares with the original).
    let sim: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        p.store.clone(),
        LatencyModel::gcs_like(),
        0xC0FFEE,
    ));
    let cache = Arc::new(CachedStore::new(sim, p.cache_kb << 10));
    let searcher = Searcher::open_with_tokenizer(
        cache.clone() as Arc<dyn ObjectStore>,
        &p.index,
        tokenizer_for(p.ngram)?,
    )
    .map_err(|e| e.to_string())?;

    let mut config = AsyncServerConfig::new().with_executor_threads(p.workers);
    if let Some(cap) = p.queue_cap {
        config = config.with_admission(AdmissionConfig::with_max_in_flight(cap));
    }
    if let Some(ms) = p.deadline_ms {
        config = config.with_deadline(SimDuration::from_millis(ms));
    }
    if let Some(pct) = p.hedge_pct {
        if !(0.0..100.0).contains(&pct) || pct == 0.0 {
            return Err("--hedge-pct must be a percentile in (0, 100)".into());
        }
        config = config.with_hedge(HedgeConfig {
            percentile: pct / 100.0,
            ..HedgeConfig::default()
        });
    }
    let cache_for_stats = cache.clone();
    let mut server = AsyncQueryServer::start(Arc::new(searcher) as Arc<dyn StagedEngine>, config)
        .with_cache_stats(move || cache_for_stats.hit_stats());
    if p.hedge_pct.is_some() {
        let replica: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
            p.store,
            LatencyModel::gcs_like(),
            0xBEEF,
        ));
        server = server.with_hedge_backend(replica);
    }

    let opts = QueryOptions::new().with_top_k(p.top_k);
    let mut tickets = Vec::with_capacity(p.clients);
    let mut shed = 0u64;
    for i in 0..p.clients {
        let word = &p.words[i % p.words.len()];
        let class = p.pattern[i % p.pattern.len()];
        match server.try_submit(
            Query::term(word),
            opts.clone(),
            SubmitSpec::new().with_class(class),
        ) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded { .. }) => shed += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut failures = 0usize;
    for t in tickets {
        if t.wait().result.is_err() {
            failures += 1;
        }
    }
    let stats = server.shutdown();

    println!(
        "served {} of {} client(s) through the async core on {} executor thread(s)",
        stats.completed, p.clients, p.workers,
    );
    println!(
        "throughput: {:.1} q/s simulated ({:.1} q/s wall), makespan {}, peak in flight {}",
        stats.qps_sim, stats.qps_wall, stats.sim_makespan, stats.peak_in_flight,
    );
    print_latency_and_cache(&stats);
    if let Some(adm) = &stats.admission {
        println!(
            "admission: {} submitted, {} admitted, {} shed \
             (H {} / N {} / L {}, quota {}, deadline {})",
            adm.submitted,
            adm.admitted,
            adm.shed_total(),
            adm.shed_high,
            adm.shed_normal,
            adm.shed_low,
            adm.shed_quota,
            adm.shed_deadline,
        );
    }
    println!(
        "hedging: {} duplicate dispatch(es), {} won the race",
        stats.hedges, stats.hedge_wins,
    );
    println!(
        "outcomes: {} ok, {} past deadline, {} failed, {} shed at submit",
        stats.completed, stats.timed_out, stats.failed, stats.rejected,
    );
    if shed != stats.rejected || failures != (stats.timed_out + stats.failed) as usize {
        return Err("ticket outcomes disagree with server counters".into());
    }
    Ok(())
}

fn stats(args: &mut Args) -> Result<(), String> {
    let store = open_store(args)?;
    let corpus = open_corpus(args, store, Arc::new(WhitespaceTokenizer))?;
    args.finish()?;
    let p = corpus.profile().map_err(|e| e.to_string())?;
    println!("documents: {}", p.n_docs);
    println!("terms:     {}", p.n_terms);
    println!("words:     {}", p.n_words);
    println!("bytes:     {}", p.total_bytes);
    println!("mean distinct words/doc: {:.1}", p.mean_distinct_words());
    println!("max  distinct words/doc: {}", p.max_distinct_words());
    println!("top terms by document frequency:");
    for (word, df) in p.vocabulary_by_frequency().into_iter().take(10) {
        println!("  {df:>8}  {word}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    fn compose(
        words: &[String],
        any: bool,
        substring: Option<String>,
        ngram: Option<usize>,
        gram: usize,
    ) -> Result<Query, String> {
        compose_query(words, any, substring, ngram, gram, None, None, 1)
    }

    #[test]
    fn compose_words_default_and() {
        let q = compose(&owned(&["a", "b"]), false, None, None, 3).unwrap();
        assert_eq!(q, Query::all([Query::term("a"), Query::term("b")]));
    }

    #[test]
    fn compose_words_or_flag() {
        let q = compose(&owned(&["a", "b"]), true, None, None, 3).unwrap();
        assert_eq!(q, Query::any([Query::term("a"), Query::term("b")]));
    }

    #[test]
    fn compose_substring_alone_and_mixed() {
        let q = compose(&[], false, Some("blk_".into()), Some(3), 3).unwrap();
        assert_eq!(q, Query::substring("blk_", 3));
        let q = compose(&owned(&["err"]), false, Some("disk".into()), None, 4).unwrap();
        assert_eq!(
            q,
            Query::all([
                Query::all([Query::term("err")]),
                Query::substring("disk", 4)
            ])
        );
    }

    #[test]
    fn compose_prefix_and_fuzzy() {
        let q = compose_query(&[], false, None, None, 3, Some("typ".into()), None, 1).unwrap();
        assert_eq!(q, Query::prefix("typ"));
        let q = compose_query(
            &owned(&["err"]),
            false,
            None,
            None,
            3,
            None,
            Some("disk".into()),
            2,
        )
        .unwrap();
        assert_eq!(
            q,
            Query::all([Query::all([Query::term("err")]), Query::fuzzy("disk", 2)])
        );
    }

    #[test]
    fn compose_empty_is_an_error() {
        assert!(compose(&[], false, None, None, 3).is_err());
    }
}
