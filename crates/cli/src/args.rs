//! Minimal argument parser: `command --flag value ... positionals`.
//! (The offline crate allowlist has no clap; this keeps the CLI dependency
//! free.)

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command line.
pub struct Args {
    command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
    consumed: Vec<String>,
}

impl Args {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let command = argv
            .first()
            .ok_or_else(|| "missing command".to_string())?
            .clone();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut i = 1;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean flags take no value; everything else takes one.
                // `--split/--merge/--gc` are boolean only under `reshard`
                // (`compact --merge K` takes a value).
                let boolean = matches!(
                    name,
                    "simulate-cloud" | "or" | "append" | "sweep" | "coalesce"
                ) || (command == "reshard"
                    && matches!(name, "split" | "merge" | "gc"));
                if boolean {
                    flags.push(arg.clone());
                    i += 1;
                } else {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("{arg} needs a value"))?;
                    if options.insert(arg.clone(), value.clone()).is_some() {
                        return Err(format!("{arg} given twice"));
                    }
                    i += 2;
                }
            } else {
                positional.push(arg.clone());
                i += 1;
            }
        }
        Ok(Args {
            command,
            options,
            flags,
            positional,
            consumed: Vec::new(),
        })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A required `--name value` option.
    pub fn required(&mut self, name: &str) -> Result<String, String> {
        self.consumed.push(name.to_string());
        self.options
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required option {name}"))
    }

    /// An optional `--name value` option, parsed.
    pub fn optional_parse<T: FromStr>(&mut self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.consumed.push(name.to_string());
        match self.options.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("invalid value for {name}: {e}")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&mut self, name: &str) -> bool {
        self.consumed.push(name.to_string());
        self.flags.iter().any(|f| f == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> Vec<String> {
        self.positional.clone()
    }

    /// Error out on unrecognized options (catches typos).
    pub fn finish(&self) -> Result<(), String> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !self.consumed.contains(key) {
                return Err(format!("unrecognized option {key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_options_positionals() {
        let mut a = Args::parse(&argv("search --store /tmp --top 5 hello world")).unwrap();
        assert_eq!(a.command(), "search");
        assert_eq!(a.required("--store").unwrap(), "/tmp");
        assert_eq!(a.optional_parse::<usize>("--top").unwrap(), Some(5));
        assert_eq!(a.positional(), vec!["hello", "world"]);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_required_and_value_errors() {
        let mut a = Args::parse(&argv("build")).unwrap();
        assert!(a.required("--store").is_err());
        assert!(Args::parse(&argv("build --bins")).is_err());
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn duplicate_option_errors() {
        assert!(Args::parse(&argv("build --bins 1 --bins 2")).is_err());
    }

    #[test]
    fn boolean_flag_takes_no_value() {
        let mut a = Args::parse(&argv("search --simulate-cloud --store /tmp w")).unwrap();
        assert!(a.flag("--simulate-cloud"));
        assert_eq!(a.required("--store").unwrap(), "/tmp");
        assert_eq!(a.positional(), vec!["w"]);
    }

    #[test]
    fn reshard_flags_are_boolean_but_compact_merge_takes_a_value() {
        let mut a = Args::parse(&argv("reshard --store /tmp --index idx --split --gc")).unwrap();
        assert!(a.flag("--split"));
        assert!(a.flag("--gc"));
        assert!(!a.flag("--merge"));
        let mut a = Args::parse(&argv("compact --store /tmp --merge 4")).unwrap();
        assert_eq!(a.optional_parse::<usize>("--merge").unwrap(), Some(4));
    }

    #[test]
    fn unrecognized_option_is_caught() {
        let mut a = Args::parse(&argv("build --store /tmp --bogus 1")).unwrap();
        let _ = a.required("--store");
        assert!(a.finish().is_err());
    }

    #[test]
    fn bad_parse_reports_option_name() {
        let mut a = Args::parse(&argv("build --bins abc")).unwrap();
        let err = a.optional_parse::<usize>("--bins").unwrap_err();
        assert!(err.contains("--bins"));
    }
}
