//! Synthetic dataset generators (§V-A): `diag`, `unif`, and `zipf`.
//!
//! The paper denotes sizes by `(log10 n_d, log10 n_w, log10 n_l)` for the
//! numbers of documents, vocabulary words, and words per document:
//!
//! * `diag` — document `i` contains only word `w_i` (so `n_l = 1`);
//! * `unif` — each word uniformly sampled from the `n_w`-word dictionary;
//! * `zipf` — like `unif` but Zipfian with exponent 1.07.
//!
//! "Note that `unif` and `zipf` can under-generate the actual set of
//! distinct words from `n_w` due to \[the\] Coupon collector's problem" —
//! our generators reproduce that behaviour faithfully (they sample, they
//! don't force coverage).

use crate::corpus::Corpus;
use crate::parse::{LineSplitter, WhitespaceTokenizer};
use airphant_storage::ObjectStore;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Size parameters of a synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Number of documents `n_d`.
    pub n_docs: u64,
    /// Vocabulary size `n_w`.
    pub n_vocab: u64,
    /// Words per document `n_l`.
    pub words_per_doc: u64,
}

impl SyntheticSpec {
    /// Construct from the paper's `(log10 n_d, log10 n_w, log10 n_l)`
    /// notation, e.g. `from_log10(8, 8, 1)` for `zipf(8,8,1)`.
    pub fn from_log10(d: u32, w: u32, l: u32) -> Self {
        SyntheticSpec {
            n_docs: 10u64.pow(d),
            n_vocab: 10u64.pow(w),
            words_per_doc: 10u64.pow(l),
        }
    }

    /// Display name in the paper's tuple notation.
    pub fn tuple_name(&self, family: &str) -> String {
        format!(
            "{family}({},{},{})",
            (self.n_docs as f64).log10().round() as u32,
            (self.n_vocab as f64).log10().round() as u32,
            (self.words_per_doc as f64).log10().round() as u32,
        )
    }
}

/// Number of documents written per blob. Multiple documents share a blob
/// (delimited by line breaks), as §III-A describes.
const DOCS_PER_BLOB: u64 = 50_000;

/// Zero-padded word string for index `j`, so every index is a distinct
/// whitespace token.
#[inline]
pub fn word_token(j: u64) -> String {
    format!("w{j:07}")
}

/// A seeded Zipf(α) sampler over ranks `1..=n` using inverse-CDF binary
/// search on the precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `alpha` (the paper
    /// uses 1.07).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for j in 1..=n {
            acc += 1.0 / (j as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Sample a rank in `[0, n)` (0-based; rank 0 is the most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(idx) | Err(idx) => (idx as u64).min(self.cdf.len() as u64 - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

fn write_lines(
    store: Arc<dyn ObjectStore>,
    prefix: &str,
    n_docs: u64,
    mut line_of: impl FnMut(u64, &mut String),
) -> Corpus {
    let mut blobs = Vec::new();
    let mut buf = String::new();
    let mut line = String::new();
    let mut blob_idx = 0u64;
    for doc in 0..n_docs {
        line.clear();
        line_of(doc, &mut line);
        buf.push_str(&line);
        buf.push('\n');
        let last = doc + 1 == n_docs;
        if (doc + 1) % DOCS_PER_BLOB == 0 || last {
            let name = format!("{prefix}/part-{blob_idx:05}");
            store
                .put(&name, Bytes::from(std::mem::take(&mut buf)))
                .expect("corpus blob write");
            blobs.push(name);
            blob_idx += 1;
        }
    }
    Corpus::new(
        store,
        blobs,
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

/// Generate a `diag` corpus: document `i` contains exactly the word `w_i`.
/// (`words_per_doc` and `n_vocab` are tied to `n_docs` by construction.)
pub fn diag(spec: SyntheticSpec, store: Arc<dyn ObjectStore>, prefix: &str) -> Corpus {
    write_lines(store, prefix, spec.n_docs, |doc, line| {
        line.push_str(&word_token(doc % spec.n_vocab));
    })
}

/// Generate a `unif` corpus: each of the `words_per_doc` words is sampled
/// uniformly from the `n_vocab`-word dictionary.
pub fn unif(spec: SyntheticSpec, store: Arc<dyn ObjectStore>, prefix: &str, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    write_lines(store, prefix, spec.n_docs, move |_, line| {
        for k in 0..spec.words_per_doc {
            if k > 0 {
                line.push(' ');
            }
            line.push_str(&word_token(rng.gen_range(0..spec.n_vocab)));
        }
    })
}

/// Generate a `zipf` corpus: word `w_j` appears with probability
/// proportional to `1/j^1.07` (the paper's exponent).
pub fn zipf(spec: SyntheticSpec, store: Arc<dyn ObjectStore>, prefix: &str, seed: u64) -> Corpus {
    let sampler = ZipfSampler::new(spec.n_vocab, 1.07);
    let mut rng = StdRng::seed_from_u64(seed);
    write_lines(store, prefix, spec.n_docs, move |_, line| {
        for k in 0..spec.words_per_doc {
            if k > 0 {
                line.push(' ');
            }
            line.push_str(&word_token(sampler.sample(&mut rng)));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_storage::InMemoryStore;

    fn mem() -> Arc<dyn ObjectStore> {
        Arc::new(InMemoryStore::new())
    }

    #[test]
    fn spec_from_log10() {
        let s = SyntheticSpec::from_log10(3, 2, 1);
        assert_eq!(s.n_docs, 1_000);
        assert_eq!(s.n_vocab, 100);
        assert_eq!(s.words_per_doc, 10);
        assert_eq!(s.tuple_name("zipf"), "zipf(3,2,1)");
    }

    #[test]
    fn diag_profile_matches_table_ii_shape() {
        // diag(x,x,0): #documents = #terms = #words, every |Wi| = 1.
        let spec = SyntheticSpec {
            n_docs: 500,
            n_vocab: 500,
            words_per_doc: 1,
        };
        let corpus = diag(spec, mem(), "diag-test");
        let p = corpus.profile().unwrap();
        assert_eq!(p.n_docs, 500);
        assert_eq!(p.n_terms, 500);
        assert_eq!(p.n_words, 500);
        assert!(p.doc_distinct_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn unif_profile_undergenerates_vocab() {
        // Coupon collector: 2000 draws from 1000 words misses some words.
        let spec = SyntheticSpec {
            n_docs: 200,
            n_vocab: 1_000,
            words_per_doc: 10,
        };
        let corpus = unif(spec, mem(), "unif-test", 7);
        let p = corpus.profile().unwrap();
        assert_eq!(p.n_docs, 200);
        assert_eq!(p.n_words, 2_000);
        assert!(p.n_terms < 1_000, "coupon collector must bite");
        assert!(p.n_terms > 500, "but most words should appear");
    }

    #[test]
    fn zipf_is_more_skewed_than_unif() {
        let spec = SyntheticSpec {
            n_docs: 300,
            n_vocab: 500,
            words_per_doc: 10,
        };
        let pu = unif(spec, mem(), "u", 3).profile().unwrap();
        let pz = zipf(spec, mem(), "z", 3).profile().unwrap();
        // Zipf concentrates mass: its most frequent word has a much higher
        // document frequency, and its realized vocabulary is smaller.
        let max_u = pu.doc_freqs.values().copied().max().unwrap();
        let max_z = pz.doc_freqs.values().copied().max().unwrap();
        assert!(max_z > 2 * max_u, "zipf max df {max_z} vs unif {max_u}");
        assert!(pz.n_terms < pu.n_terms);
    }

    #[test]
    fn zipf_sampler_rank_frequencies_decay() {
        let sampler = ZipfSampler::new(100, 1.07);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Ratio rank1/rank2 ≈ 2^1.07 ≈ 2.1; allow generous noise.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = SyntheticSpec {
            n_docs: 50,
            n_vocab: 40,
            words_per_doc: 5,
        };
        let c1 = zipf(spec, mem(), "a", 42).profile().unwrap();
        let c2 = zipf(spec, mem(), "a", 42).profile().unwrap();
        assert_eq!(c1.doc_freqs, c2.doc_freqs);
        let c3 = zipf(spec, mem(), "a", 43).profile().unwrap();
        assert_ne!(c1.doc_freqs, c3.doc_freqs, "different seed differs");
    }

    #[test]
    fn blobs_shard_every_50k_docs() {
        let spec = SyntheticSpec {
            n_docs: 120_000,
            n_vocab: 100,
            words_per_doc: 1,
        };
        let corpus = diag(spec, mem(), "shard");
        assert_eq!(corpus.blobs().len(), 3);
        let p = corpus.profile().unwrap();
        assert_eq!(p.n_docs, 120_000);
    }
}
