//! The [`Corpus`]: a set of blobs plus parser choices, with document
//! iteration, profiling, and ground-truth postings computation.

use crate::parse::{DocSplitter, Tokenizer};
use crate::profile::CorpusProfile;
use airphant_storage::ObjectStore;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One parsed document: where it lives and what it says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Blob the document lives in.
    pub blob: String,
    /// Byte offset within the blob.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// The document's text.
    pub text: String,
}

/// A document predicate restricting corpus iteration (e.g. one shard of
/// a hash-partitioned build).
pub type DocFilter = Arc<dyn Fn(&Document) -> bool + Send + Sync>;

/// A corpus: named blobs in an object store, a document splitter, and a
/// tokenizer.
pub struct Corpus {
    store: Arc<dyn ObjectStore>,
    blobs: Vec<String>,
    splitter: Arc<dyn DocSplitter>,
    tokenizer: Arc<dyn Tokenizer>,
    filter: Option<DocFilter>,
}

impl Corpus {
    /// Assemble a corpus over `blobs` (in the given order).
    pub fn new(
        store: Arc<dyn ObjectStore>,
        blobs: Vec<String>,
        splitter: Arc<dyn DocSplitter>,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Self {
        Corpus {
            store,
            blobs,
            splitter,
            tokenizer,
            filter: None,
        }
    }

    /// A view of this corpus restricted to documents passing `filter`
    /// (e.g. the slice of a hash-partitioned build that one shard
    /// indexes). The blob list, splitter, and tokenizer are shared;
    /// only document iteration — and therefore profiling, building,
    /// and ground truth — is filtered. Filters compose: a view of a
    /// view keeps both predicates.
    pub fn with_doc_filter(&self, filter: DocFilter) -> Corpus {
        let filter = match self.filter.clone() {
            Some(existing) => Arc::new(move |doc: &Document| existing(doc) && filter(doc)) as _,
            None => filter,
        };
        Corpus {
            store: self.store.clone(),
            blobs: self.blobs.clone(),
            splitter: self.splitter.clone(),
            tokenizer: self.tokenizer.clone(),
            filter: Some(filter),
        }
    }

    /// The object store holding the corpus.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// Blob names, in corpus order.
    pub fn blobs(&self) -> &[String] {
        &self.blobs
    }

    /// The tokenizer in use.
    pub fn tokenizer(&self) -> &Arc<dyn Tokenizer> {
        &self.tokenizer
    }

    /// Visit every document in corpus order. The visitor receives the
    /// parsed [`Document`]; this is the Builder's single pass.
    pub fn for_each_document<F>(&self, mut f: F) -> airphant_storage::Result<()>
    where
        F: FnMut(&Document),
    {
        for blob_name in &self.blobs {
            let fetched = self.store.get(blob_name)?;
            let data = fetched.bytes;
            for span in self.splitter.split(&data) {
                let start = span.offset as usize;
                let end = start + span.len as usize;
                let text = String::from_utf8_lossy(&data[start..end]).into_owned();
                let doc = Document {
                    blob: blob_name.clone(),
                    offset: span.offset,
                    len: span.len,
                    text,
                };
                if self.filter.as_ref().is_none_or(|keep| keep(&doc)) {
                    f(&doc);
                }
            }
        }
        Ok(())
    }

    /// Tokenize a document's text with the corpus tokenizer.
    pub fn tokens(&self, doc: &Document) -> Vec<String> {
        self.tokenizer.tokens(&doc.text)
    }

    /// Single-pass profiling (§III-C): totals, per-document distinct-word
    /// counts, and document frequencies.
    pub fn profile(&self) -> airphant_storage::Result<CorpusProfile> {
        let mut n_docs = 0u64;
        let mut n_words = 0u64;
        let mut doc_sizes = Vec::new();
        let mut doc_freqs: HashMap<String, u64> = HashMap::new();
        let mut total_bytes = 0u64;
        self.for_each_document(|doc| {
            n_docs += 1;
            total_bytes += doc.len as u64;
            let tokens = self.tokenizer.tokens(&doc.text);
            n_words += tokens.len() as u64;
            let distinct: BTreeSet<String> = tokens.into_iter().collect();
            doc_sizes.push(distinct.len() as u64);
            for w in distinct {
                *doc_freqs.entry(w).or_insert(0) += 1;
            }
        })?;
        Ok(CorpusProfile {
            n_docs,
            n_terms: doc_freqs.len() as u64,
            n_words,
            total_bytes,
            doc_distinct_sizes: doc_sizes,
            doc_freqs,
        })
    }

    /// Ground-truth postings for `word`: the `(blob, offset, len)` of every
    /// document containing it. Linear scan — used by tests and the
    /// false-positive measurements, not by the engines.
    pub fn truth_postings(&self, word: &str) -> airphant_storage::Result<Vec<Document>> {
        let mut out = Vec::new();
        self.for_each_document(|doc| {
            if self.tokenizer.tokens(&doc.text).iter().any(|t| t == word) {
                out.push(doc.clone());
            }
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{LineSplitter, WhitespaceTokenizer};
    use airphant_storage::InMemoryStore;
    use bytes::Bytes;

    fn tiny_corpus() -> Corpus {
        let store = Arc::new(InMemoryStore::new());
        store
            .put("part-0", Bytes::from_static(b"hello world\nhello airphant"))
            .unwrap();
        store
            .put("part-1", Bytes::from_static(b"cloud index\n"))
            .unwrap();
        Corpus::new(
            store,
            vec!["part-0".into(), "part-1".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn iterates_documents_in_order() {
        let corpus = tiny_corpus();
        let mut docs = Vec::new();
        corpus.for_each_document(|d| docs.push(d.clone())).unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].text, "hello world");
        assert_eq!(docs[1].text, "hello airphant");
        assert_eq!((docs[1].blob.as_str(), docs[1].offset), ("part-0", 12));
        assert_eq!(docs[2].text, "cloud index");
    }

    #[test]
    fn profile_counts_match() {
        let corpus = tiny_corpus();
        let p = corpus.profile().unwrap();
        assert_eq!(p.n_docs, 3);
        assert_eq!(p.n_words, 6);
        // Distinct terms: hello, world, airphant, cloud, index.
        assert_eq!(p.n_terms, 5);
        assert_eq!(p.doc_distinct_sizes, vec![2, 2, 2]);
        assert_eq!(p.doc_freqs["hello"], 2);
        assert_eq!(p.doc_freqs["cloud"], 1);
    }

    #[test]
    fn truth_postings_finds_exact_matches() {
        let corpus = tiny_corpus();
        let hits = corpus.truth_postings("hello").unwrap();
        assert_eq!(hits.len(), 2);
        let none = corpus.truth_postings("hell").unwrap();
        assert!(none.is_empty(), "substring must not match");
    }

    #[test]
    fn doc_filter_restricts_iteration_profile_and_truth() {
        let corpus = tiny_corpus();
        let view = corpus.with_doc_filter(Arc::new(|d: &Document| d.offset == 0));
        let mut docs = Vec::new();
        view.for_each_document(|d| docs.push(d.clone())).unwrap();
        // Only the first document of each blob survives.
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().all(|d| d.offset == 0));
        let p = view.profile().unwrap();
        assert_eq!(p.n_docs, 2);
        assert_eq!(view.truth_postings("hello").unwrap().len(), 1);
        // Filters compose: a view of a view applies both predicates.
        let narrower = view.with_doc_filter(Arc::new(|d: &Document| d.blob == "part-0"));
        let mut n = 0;
        narrower.for_each_document(|_| n += 1).unwrap();
        assert_eq!(n, 1);
        // The original corpus is untouched.
        assert_eq!(corpus.profile().unwrap().n_docs, 3);
    }

    #[test]
    fn document_byte_ranges_slice_back_to_text() {
        let corpus = tiny_corpus();
        let store = corpus.store().clone();
        corpus
            .for_each_document(|d| {
                let f = store.get_range(&d.blob, d.offset, d.len as u64).unwrap();
                assert_eq!(String::from_utf8_lossy(&f.bytes), d.text);
            })
            .unwrap();
    }
}
