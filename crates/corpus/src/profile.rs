//! Corpus profile: the statistics of Table II, collected in a single pass.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics the Builder collects while profiling (§III-C): "the total
/// numbers of documents and words, document lengths, and document
/// frequencies". These drive the IoU structural optimization (§IV-A, §IV-E).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorpusProfile {
    /// Number of documents (`#documents` in Table II).
    pub n_docs: u64,
    /// Number of distinct words (`#terms`).
    pub n_terms: u64,
    /// Total number of words across documents (`#words`).
    pub n_words: u64,
    /// Total corpus bytes.
    pub total_bytes: u64,
    /// Per-document distinct-word counts `|W_i|`, in document order.
    pub doc_distinct_sizes: Vec<u64>,
    /// Document frequency of each word (number of documents containing it).
    pub doc_freqs: HashMap<String, u64>,
}

impl CorpusProfile {
    /// Average distinct words per document.
    pub fn mean_distinct_words(&self) -> f64 {
        if self.doc_distinct_sizes.is_empty() {
            return 0.0;
        }
        self.doc_distinct_sizes.iter().sum::<u64>() as f64 / self.doc_distinct_sizes.len() as f64
    }

    /// Largest per-document distinct-word count.
    pub fn max_distinct_words(&self) -> u64 {
        self.doc_distinct_sizes.iter().copied().max().unwrap_or(0)
    }

    /// The vocabulary, sorted by descending document frequency then word.
    pub fn vocabulary_by_frequency(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .doc_freqs
            .iter()
            .map(|(w, &f)| (w.clone(), f))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// All distinct words, unsorted.
    pub fn vocabulary(&self) -> Vec<String> {
        self.doc_freqs.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusProfile {
        let mut doc_freqs = HashMap::new();
        doc_freqs.insert("error".to_string(), 30);
        doc_freqs.insert("warn".to_string(), 10);
        doc_freqs.insert("info".to_string(), 60);
        CorpusProfile {
            n_docs: 100,
            n_terms: 3,
            n_words: 250,
            total_bytes: 5_000,
            doc_distinct_sizes: vec![1, 2, 3, 2],
            doc_freqs,
        }
    }

    #[test]
    fn mean_and_max_distinct() {
        let p = sample();
        assert_eq!(p.mean_distinct_words(), 2.0);
        assert_eq!(p.max_distinct_words(), 3);
        assert_eq!(CorpusProfile::default().mean_distinct_words(), 0.0);
    }

    #[test]
    fn vocabulary_by_frequency_sorted() {
        let p = sample();
        let v = p.vocabulary_by_frequency();
        assert_eq!(
            v,
            vec![
                ("info".to_string(), 60),
                ("error".to_string(), 30),
                ("warn".to_string(), 10)
            ]
        );
    }
}
