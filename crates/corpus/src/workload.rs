//! Query workload generation.
//!
//! §IV-B: "Airphant assumes a uniform distribution by default; in other
//! words, a query equally likely contains words in the corpus" — the
//! benchmarks sample query words uniformly from the realized vocabulary.
//! A frequency-weighted sampler is provided for the non-uniform prior
//! variants the paper defers to future work.

use crate::profile::CorpusProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed sequence of query words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    words: Vec<String>,
}

impl QueryWorkload {
    /// Sample `n` query words uniformly from the corpus vocabulary
    /// (the paper's default prior).
    pub fn uniform(profile: &CorpusProfile, n: usize, seed: u64) -> Self {
        let mut vocab = profile.vocabulary();
        vocab.sort(); // HashMap order is nondeterministic; sort for replay
        let mut rng = StdRng::seed_from_u64(seed);
        let words = (0..n)
            .map(|_| vocab[rng.gen_range(0..vocab.len())].clone())
            .collect();
        QueryWorkload { words }
    }

    /// Sample `n` query words proportionally to document frequency
    /// (§IV-B alternative (a): `p_w = occurrences(w)`).
    pub fn frequency_weighted(profile: &CorpusProfile, n: usize, seed: u64) -> Self {
        let vocab = profile.vocabulary_by_frequency();
        let total: u64 = vocab.iter().map(|(_, f)| f).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let words = (0..n)
            .map(|_| {
                let mut target = rng.gen_range(0..total);
                for (w, f) in &vocab {
                    if target < *f {
                        return w.clone();
                    }
                    target -= f;
                }
                vocab.last().expect("non-empty vocab").0.clone()
            })
            .collect();
        QueryWorkload { words }
    }

    /// An explicit word list.
    pub fn from_words(words: Vec<String>) -> Self {
        QueryWorkload { words }
    }

    /// The query words, in order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate the query words.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn profile() -> CorpusProfile {
        let mut doc_freqs = HashMap::new();
        doc_freqs.insert("alpha".to_string(), 100);
        doc_freqs.insert("beta".to_string(), 10);
        doc_freqs.insert("gamma".to_string(), 1);
        CorpusProfile {
            n_docs: 100,
            n_terms: 3,
            n_words: 111,
            total_bytes: 0,
            doc_distinct_sizes: vec![],
            doc_freqs,
        }
    }

    #[test]
    fn uniform_draws_only_vocab_words() {
        let w = QueryWorkload::uniform(&profile(), 50, 1);
        assert_eq!(w.len(), 50);
        assert!(w.iter().all(|q| ["alpha", "beta", "gamma"].contains(&q)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let p = profile();
        assert_eq!(
            QueryWorkload::uniform(&p, 20, 9),
            QueryWorkload::uniform(&p, 20, 9)
        );
        assert_ne!(
            QueryWorkload::uniform(&p, 20, 9),
            QueryWorkload::uniform(&p, 20, 10)
        );
    }

    #[test]
    fn frequency_weighted_prefers_common_words() {
        let w = QueryWorkload::frequency_weighted(&profile(), 300, 5);
        let alpha = w.iter().filter(|&q| q == "alpha").count();
        let gamma = w.iter().filter(|&q| q == "gamma").count();
        assert!(alpha > 200, "alpha drawn {alpha}/300");
        assert!(gamma < 30, "gamma drawn {gamma}/300");
    }

    #[test]
    fn uniform_covers_vocabulary_roughly_evenly() {
        let w = QueryWorkload::uniform(&profile(), 600, 3);
        for word in ["alpha", "beta", "gamma"] {
            let c = w.iter().filter(|&q| q == word).count();
            assert!((120..280).contains(&c), "{word} drawn {c}/600");
        }
    }

    #[test]
    fn explicit_words() {
        let w = QueryWorkload::from_words(vec!["x".into()]);
        assert_eq!(w.words(), ["x"]);
        assert!(!w.is_empty());
    }
}
