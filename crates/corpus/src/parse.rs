//! Parsers (§III-C): corpus-document parsers that split a blob into
//! documents, and document-word parsers that extract keywords.
//!
//! "Builder uses a corpus-document parser to unwrap a blob into documents
//! and generate postings that refer to their documents' byte ranges …
//! Builder then uses a document-word parser to extract words. The user can
//! select both … for each corpus."

/// A document's byte range inside a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocSpan {
    /// Byte offset of the document's first byte.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

/// Splits a blob into document byte ranges.
pub trait DocSplitter: Send + Sync {
    /// Return the document spans of `blob` in offset order.
    fn split(&self, blob: &[u8]) -> Vec<DocSpan>;
}

/// One document per line, newline-delimited (the paper's default: "a single
/// blob may contain multiple documents", e.g. log files). Empty lines are
/// skipped. The trailing newline is not part of the document.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineSplitter;

impl DocSplitter for LineSplitter {
    fn split(&self, blob: &[u8]) -> Vec<DocSpan> {
        let mut spans = Vec::new();
        let mut start = 0usize;
        for (i, &b) in blob.iter().enumerate() {
            if b == b'\n' {
                if i > start {
                    spans.push(DocSpan {
                        offset: start as u64,
                        len: (i - start) as u32,
                    });
                }
                start = i + 1;
            }
        }
        if blob.len() > start {
            spans.push(DocSpan {
                offset: start as u64,
                len: (blob.len() - start) as u32,
            });
        }
        spans
    }
}

/// The whole blob is one document (the "different blobs" layout of §III-A).
#[derive(Debug, Clone, Copy, Default)]
pub struct WholeBlobSplitter;

impl DocSplitter for WholeBlobSplitter {
    fn split(&self, blob: &[u8]) -> Vec<DocSpan> {
        if blob.is_empty() {
            return Vec::new();
        }
        vec![DocSpan {
            offset: 0,
            len: blob.len() as u32,
        }]
    }
}

/// Extracts search keywords from a document's text.
pub trait Tokenizer: Send + Sync {
    /// The keywords of `text`, in occurrence order (duplicates included).
    fn tokens(&self, text: &str) -> Vec<String>;

    /// `Some(n)` when this tokenizer emits character `n`-grams — the
    /// signal that every length-`< n` substring of a document is contained
    /// in some token, which is what makes the planner's short-pattern
    /// vocabulary fallback exact. Word-oriented tokenizers return `None`.
    fn gram_size(&self) -> Option<usize> {
        None
    }
}

/// Splits on ASCII whitespace, keeping tokens verbatim — equivalent to the
/// `WhitespaceAnalyzer` the paper configures for Lucene and Elasticsearch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceTokenizer;

impl Tokenizer for WhitespaceTokenizer {
    fn tokens(&self, text: &str) -> Vec<String> {
        text.split_ascii_whitespace().map(str::to_owned).collect()
    }
}

/// Splits on any non-alphanumeric byte and lowercases — a simple normalizing
/// analyzer for prose-like corpora (Cranfield abstracts).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlnumLowerTokenizer;

impl Tokenizer for AlnumLowerTokenizer {
    fn tokens(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_ascii_lowercase)
            .collect()
    }
}

/// Indexes every character `n`-gram of the document (§IV-F: "regular
/// expression (RegEx) can benefit from IoU Sketch as inverted index by
/// considering indexing N-grams"). Grams are lowercased; documents shorter
/// than `n` contribute their whole text as one gram.
///
/// Queries tokenize a *pattern* the same way, intersect the grams'
/// postings, and verify candidates against the raw pattern — the
/// filter-then-verify structure of trigram regex engines.
#[derive(Debug, Clone, Copy)]
pub struct NgramTokenizer {
    n: usize,
}

impl NgramTokenizer {
    /// Build an `n`-gram tokenizer (`n ≥ 1`; 3 for classic trigrams).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "n-gram size must be at least 1");
        NgramTokenizer { n }
    }

    /// The gram size.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Tokenizer for NgramTokenizer {
    fn gram_size(&self) -> Option<usize> {
        Some(self.n)
    }

    fn tokens(&self, text: &str) -> Vec<String> {
        let lowered = text.to_ascii_lowercase();
        let chars: Vec<char> = lowered.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        if chars.len() <= self.n {
            return vec![lowered];
        }
        chars.windows(self.n).map(|w| w.iter().collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_splitter_basic() {
        let blob = b"hello world\nfoo bar\nbaz";
        let spans = LineSplitter.split(blob);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], DocSpan { offset: 0, len: 11 });
        assert_eq!(spans[1], DocSpan { offset: 12, len: 7 });
        assert_eq!(spans[2], DocSpan { offset: 20, len: 3 });
        // Slicing back gives the lines.
        let doc1 =
            &blob[spans[1].offset as usize..(spans[1].offset + spans[1].len as u64) as usize];
        assert_eq!(doc1, b"foo bar");
    }

    #[test]
    fn line_splitter_skips_empty_lines() {
        let spans = LineSplitter.split(b"\n\na\n\nb\n");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].len, 1);
        assert_eq!(spans[1].len, 1);
    }

    #[test]
    fn line_splitter_trailing_newline_and_empty() {
        assert_eq!(LineSplitter.split(b"one\n").len(), 1);
        assert!(LineSplitter.split(b"").is_empty());
        assert!(LineSplitter.split(b"\n").is_empty());
    }

    #[test]
    fn whole_blob_splitter() {
        assert_eq!(
            WholeBlobSplitter.split(b"entire doc"),
            vec![DocSpan { offset: 0, len: 10 }]
        );
        assert!(WholeBlobSplitter.split(b"").is_empty());
    }

    #[test]
    fn whitespace_tokenizer_keeps_case() {
        let t = WhitespaceTokenizer.tokens("Hello  WORLD\tfoo\nbar");
        assert_eq!(t, vec!["Hello", "WORLD", "foo", "bar"]);
        assert!(WhitespaceTokenizer.tokens("   ").is_empty());
    }

    #[test]
    fn alnum_tokenizer_normalizes() {
        let t = AlnumLowerTokenizer.tokens("The quick-brown FOX, (v2)!");
        assert_eq!(t, vec!["the", "quick", "brown", "fox", "v2"]);
    }

    #[test]
    fn tokenizers_preserve_duplicates() {
        let t = WhitespaceTokenizer.tokens("a b a");
        assert_eq!(t, vec!["a", "b", "a"]);
    }

    #[test]
    fn ngram_tokenizer_trigrams() {
        let t = NgramTokenizer::new(3).tokens("Hello");
        assert_eq!(t, vec!["hel", "ell", "llo"]);
    }

    #[test]
    fn ngram_tokenizer_short_texts() {
        let t = NgramTokenizer::new(3);
        assert_eq!(t.tokens("ab"), vec!["ab"]);
        assert_eq!(t.tokens("abc"), vec!["abc"]);
        assert!(t.tokens("").is_empty());
    }

    #[test]
    fn ngram_tokenizer_spans_spaces() {
        // Grams cross word boundaries — that's what makes substring
        // queries over multi-word patterns work.
        let t = NgramTokenizer::new(3).tokens("a b");
        assert_eq!(t, vec!["a b"]);
        let t = NgramTokenizer::new(2).tokens("a b");
        assert_eq!(t, vec!["a ", " b"]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn ngram_zero_panics() {
        NgramTokenizer::new(0);
    }
}
