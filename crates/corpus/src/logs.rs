//! Look-alike generators for the paper's real corpora (§V-A): the Loghub
//! system logs (HDFS, Windows, Spark) and the Cranfield 1400 abstracts.
//!
//! The genuine datasets are multi-gigabyte downloads unavailable offline;
//! these generators reproduce the *profiled shape* of each corpus at a
//! configurable scale — the docs/terms/words ratios of Table II — because
//! those ratios (not the literal log text) determine IoU Sketch accuracy
//! and every latency trend in the evaluation. Scale-down rationale is in
//! DESIGN.md §4.
//!
//! Table II targets (full scale):
//!
//! | corpus   | #documents | #terms  | #words  | σ_X   |
//! |----------|-----------|---------|---------|-------|
//! | Cranfield| 1.4e3     | 5.3e3   | 1.2e5   | 0.51  |
//! | HDFS     | 1.1e7     | 3.6e6   | 1.4e8   | 1.77  |
//! | Windows  | 1.1e8     | 8.3e5   | 1.7e9   | 11.73 |
//! | Spark    | 3.3e7     | 5.2e6   | 3.5e8   | 2.53  |

use crate::corpus::Corpus;
use crate::parse::{LineSplitter, WhitespaceTokenizer};
use crate::synth::ZipfSampler;
use airphant_storage::ObjectStore;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Scale parameters for a log-corpus generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogCorpusSpec {
    /// Number of log lines (documents) to generate.
    pub n_docs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl LogCorpusSpec {
    /// Convenience constructor.
    pub fn new(n_docs: u64, seed: u64) -> Self {
        LogCorpusSpec { n_docs, seed }
    }
}

const DOCS_PER_BLOB: u64 = 50_000;

fn write_lines(
    store: Arc<dyn ObjectStore>,
    prefix: &str,
    n_docs: u64,
    mut line_of: impl FnMut(u64, &mut String),
) -> Corpus {
    let mut blobs = Vec::new();
    let mut buf = String::new();
    let mut line = String::new();
    let mut blob_idx = 0u64;
    for doc in 0..n_docs {
        line.clear();
        line_of(doc, &mut line);
        buf.push_str(&line);
        buf.push('\n');
        if (doc + 1) % DOCS_PER_BLOB == 0 || doc + 1 == n_docs {
            let name = format!("{prefix}/part-{blob_idx:05}");
            store
                .put(&name, Bytes::from(std::mem::take(&mut buf)))
                .expect("corpus blob write");
            blobs.push(name);
            blob_idx += 1;
        }
    }
    Corpus::new(
        store,
        blobs,
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

/// HDFS-like logs. Table II ratio: terms ≈ docs/3 — block ids dominate the
/// vocabulary; each id recurs in a handful of lines (allocate → receive →
/// terminate).
pub fn hdfs_like(spec: LogCorpusSpec, store: Arc<dyn ObjectStore>, prefix: &str) -> Corpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_blocks = (spec.n_docs as f64 / 3.5).max(1.0) as u64;
    let templates = [
        "INFO dfs.DataNode$PacketResponder: PacketResponder for block",
        "INFO dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: blockMap updated for block",
        "INFO dfs.DataNode$DataXceiver: Receiving block",
        "WARN dfs.DataNode$DataXceiver: Slow transfer for block",
    ];
    write_lines(store, prefix, spec.n_docs, move |doc, line| {
        let block = rng.gen_range(0..n_blocks);
        let tmpl = templates[(doc % templates.len() as u64) as usize];
        let dn = rng.gen_range(0..64);
        line.push_str(&format!(
            "081109 2036{:02} {} {} blk_{} src datanode_{} terminating",
            doc % 60,
            dn,
            tmpl,
            block,
            dn,
        ));
    })
}

/// Windows-like logs. Table II ratio: terms ≈ docs/130 — a tiny, heavily
/// reused vocabulary of components and status codes (σ_X = 11.73, the most
/// skewed corpus).
pub fn windows_like(spec: LogCorpusSpec, store: Arc<dyn ObjectStore>, prefix: &str) -> Corpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_components = (spec.n_docs / 260).max(4);
    let zipf = ZipfSampler::new(n_components, 1.2);
    let levels = ["Info", "Warning", "Error"];
    let actions = [
        "CBS Starting TrustedInstaller initialization.",
        "CBS Ending TrustedInstaller initialization.",
        "CBS SQM: Initializing online with Windows opt-in: False",
        "CSI Transaction completed successfully.",
    ];
    write_lines(store, prefix, spec.n_docs, move |doc, line| {
        let comp = zipf.sample(&mut rng);
        let level = levels[(doc % 3) as usize];
        let action = actions[(doc % actions.len() as u64) as usize];
        line.push_str(&format!(
            "2016-09-28 04:30:{:02}, {} component_{} {} session_{}",
            doc % 60,
            level,
            comp,
            action,
            comp % 97,
        ));
    })
}

/// Spark-like logs. Table II ratio: terms ≈ docs/6.3 — task and stage ids
/// recur across executor lifecycles.
pub fn spark_like(spec: LogCorpusSpec, store: Arc<dyn ObjectStore>, prefix: &str) -> Corpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_tasks = (spec.n_docs / 14).max(1);
    let templates = [
        "INFO executor.Executor: Running task in stage",
        "INFO executor.Executor: Finished task in stage",
        "INFO storage.ShuffleBlockFetcherIterator: Getting blocks for task",
        "INFO scheduler.TaskSetManager: Starting task on executor",
        "WARN scheduler.TaskSetManager: Lost task on executor",
    ];
    write_lines(store, prefix, spec.n_docs, move |doc, line| {
        let task = rng.gen_range(0..n_tasks);
        let tmpl = templates[(doc % templates.len() as u64) as usize];
        line.push_str(&format!(
            "17/06/09 20:10:{:02} {} task_{} TID_{} executor_{}",
            doc % 60,
            tmpl,
            task,
            task,
            task % 48,
        ));
    })
}

/// Cranfield-like abstracts: 1398 prose documents, ~5.3k-word vocabulary,
/// ~86 words per document (Table II: 1.2e5 words / 1.4e3 docs), word choice
/// Zipf-distributed as natural language is.
pub fn cranfield_like(seed: u64, store: Arc<dyn ObjectStore>, prefix: &str) -> Corpus {
    let n_docs = 1_398u64;
    let vocab_size = 5_300u64;
    let words_per_doc = 86usize;
    let vocab = pseudo_english_vocab(vocab_size, seed);
    let zipf = ZipfSampler::new(vocab_size, 1.05);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    write_lines(store, prefix, n_docs, move |_, line| {
        for k in 0..words_per_doc {
            if k > 0 {
                line.push(' ');
            }
            line.push_str(&vocab[zipf.sample(&mut rng) as usize]);
        }
    })
}

/// Deterministic pseudo-English vocabulary built from syllables, so the
/// Cranfield look-alike profiles like prose rather than like opaque ids.
pub fn pseudo_english_vocab(n: u64, seed: u64) -> Vec<String> {
    const ONSETS: &[&str] = &[
        "b", "c", "d", "f", "g", "h", "j", "l", "m", "n", "p", "r", "s", "t", "v", "w", "st", "tr",
        "pl", "fl", "br", "cr",
    ];
    const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ae", "ou", "io"];
    const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "x", "nt", "rd"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n as usize);
    let mut out = Vec::with_capacity(n as usize);
    while (out.len() as u64) < n {
        let syllables = rng.gen_range(2..=4);
        let mut w = String::new();
        for _ in 0..syllables {
            w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
            w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_storage::InMemoryStore;

    fn mem() -> Arc<dyn ObjectStore> {
        Arc::new(InMemoryStore::new())
    }

    #[test]
    fn hdfs_like_terms_ratio() {
        // Table II: HDFS terms ≈ docs/3. At n=30k expect ~10k terms
        // give or take template overhead.
        let c = hdfs_like(LogCorpusSpec::new(30_000, 1), mem(), "hdfs");
        let p = c.profile().unwrap();
        assert_eq!(p.n_docs, 30_000);
        let ratio = p.n_docs as f64 / p.n_terms as f64;
        assert!(
            (1.5..6.0).contains(&ratio),
            "docs/terms ratio {ratio}, Table II says ≈3"
        );
    }

    #[test]
    fn windows_like_is_most_skewed() {
        let cw = windows_like(LogCorpusSpec::new(20_000, 2), mem(), "win");
        let ch = hdfs_like(LogCorpusSpec::new(20_000, 2), mem(), "hdfs");
        let pw = cw.profile().unwrap();
        let ph = ch.profile().unwrap();
        // Windows: far fewer distinct terms per document count.
        assert!(
            pw.n_terms * 5 < ph.n_terms,
            "windows terms {} should be ≪ hdfs terms {}",
            pw.n_terms,
            ph.n_terms
        );
    }

    #[test]
    fn spark_like_ratio_between() {
        let c = spark_like(LogCorpusSpec::new(30_000, 3), mem(), "spark");
        let p = c.profile().unwrap();
        let ratio = p.n_docs as f64 / p.n_terms as f64;
        assert!((2.0..15.0).contains(&ratio), "ratio {ratio}, paper ≈6.3");
    }

    #[test]
    fn cranfield_like_matches_table_ii() {
        let c = cranfield_like(7, mem(), "cran");
        let p = c.profile().unwrap();
        assert_eq!(p.n_docs, 1_398);
        assert_eq!(p.n_words, 1_398 * 86); // 1.2e5 words
                                           // Realized vocabulary ≤ 5300 (Zipf draw misses some tail words),
                                           // but should be in the right ballpark.
        assert!(p.n_terms <= 5_300);
        assert!(p.n_terms > 2_500, "vocab {} too small", p.n_terms);
        // ~86 words/doc, tens of distinct words per doc.
        assert!(p.mean_distinct_words() > 30.0);
        assert!(p.mean_distinct_words() < 86.0);
    }

    #[test]
    fn pseudo_vocab_is_unique_and_deterministic() {
        let v1 = pseudo_english_vocab(500, 9);
        let v2 = pseudo_english_vocab(500, 9);
        assert_eq!(v1, v2);
        let set: std::collections::HashSet<_> = v1.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(v1.iter().all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn generators_are_deterministic() {
        let p1 = spark_like(LogCorpusSpec::new(1_000, 5), mem(), "s")
            .profile()
            .unwrap();
        let p2 = spark_like(LogCorpusSpec::new(1_000, 5), mem(), "s")
            .profile()
            .unwrap();
        assert_eq!(p1.doc_freqs, p2.doc_freqs);
    }
}
