//! # airphant-corpus
//!
//! Corpora for the Airphant reproduction: document/parser abstractions,
//! synthetic dataset generators matching the paper's evaluation (§V-A), a
//! single-pass profiler, and query-workload generation.
//!
//! The paper benchmarks on four real corpora (Cranfield 1400 and the
//! Loghub HDFS / Windows / Spark logs) and three synthetic families
//! (`diag`, `unif`, `zipf`). The real corpora are multi-gigabyte downloads
//! unavailable offline, so this crate generates *look-alikes* whose
//! profiled statistics match scaled-down versions of Table II — the
//! statistics (document counts, vocabulary, per-document distinct words,
//! skew) are what drive IoU Sketch behaviour, not the literal byte content.
//! See DESIGN.md §4 for the substitution rationale.
//!
//! * [`Corpus`] — blobs in an [`ObjectStore`](airphant_storage::ObjectStore)
//!   plus a document splitter and tokenizer; iterate documents, profile,
//!   compute ground-truth postings.
//! * [`parse`] — corpus-document parsers (line-delimited, whole-blob) and
//!   document-word parsers (whitespace, lowercase-alphanumeric).
//! * [`synth`] — `diag(d, w, l)`, `unif(d, w, l)`, `zipf(d, w, l)`
//!   generators with the paper's Zipf exponent 1.07.
//! * [`logs`] — template-based HDFS-, Windows-, and Spark-like log
//!   generators, plus the Cranfield-like abstract generator.
//! * [`profile`] — single-pass corpus statistics (Table II columns).
//! * [`workload`] — seeded query-word sampling (uniform prior by default,
//!   as §IV-B assumes).

#![warn(missing_docs)]

pub mod corpus;
pub mod logs;
pub mod parse;
pub mod profile;
pub mod synth;
pub mod workload;

pub use corpus::{Corpus, DocFilter, Document};
pub use logs::{cranfield_like, hdfs_like, spark_like, windows_like, LogCorpusSpec};
pub use parse::{
    AlnumLowerTokenizer, DocSpan, DocSplitter, LineSplitter, NgramTokenizer, Tokenizer,
    WhitespaceTokenizer, WholeBlobSplitter,
};
pub use profile::CorpusProfile;
pub use synth::{diag, unif, zipf, SyntheticSpec, ZipfSampler};
pub use workload::QueryWorkload;
