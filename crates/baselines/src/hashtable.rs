//! The naïve HashTable baseline: IoU Sketch with a single layer.
//!
//! §V-A0b: "HashTable refers to an inverted index that stores postings
//! lists according to their corresponding terms' hashes. It is equivalent
//! to IoU Sketch with the only exception that it has a single layer L = 1.
//! Other relevant configurations such as the total number of bins and
//! common word bins are identical."
//!
//! With one layer there is no intersection to cancel collisions, so a
//! query's candidate list carries every co-hashed word's postings — the
//! download-heavy extreme of Figure 8/11.

use airphant::{AirphantConfig, BuildReport, Builder, Query, QueryOptions, SearchEngine, Searcher};
use airphant_corpus::Corpus;
use airphant_storage::{ObjectStore, QueryTrace};
use iou_sketch::PostingsList;
use std::sync::Arc;

/// The single-layer hash-table engine.
pub struct HashTableEngine {
    inner: Searcher,
}

impl HashTableEngine {
    /// Build a HashTable index for `corpus` under `prefix`, copying every
    /// relevant knob from `config` but forcing `L = 1`.
    pub fn build(
        corpus: &Corpus,
        prefix: &str,
        config: &AirphantConfig,
    ) -> airphant::Result<BuildReport> {
        let ht_config = config.clone().with_manual_layers(1);
        Builder::new(ht_config).build(corpus, prefix)
    }

    /// Open a previously built HashTable index.
    pub fn open(store: Arc<dyn ObjectStore>, prefix: &str) -> airphant::Result<Self> {
        Ok(HashTableEngine {
            inner: Searcher::open(store, prefix)?,
        })
    }

    /// The wrapped searcher.
    pub fn searcher(&self) -> &Searcher {
        &self.inner
    }
}

impl SearchEngine for HashTableEngine {
    fn name(&self) -> &'static str {
        "HashTable"
    }

    fn init_trace(&self) -> QueryTrace {
        self.inner.init_trace().clone()
    }

    fn lookup(&self, word: &str) -> airphant::Result<(PostingsList, QueryTrace)> {
        self.inner.lookup(word)
    }

    fn execute(
        &self,
        query: &Query,
        opts: &QueryOptions,
    ) -> airphant::Result<airphant::SearchResult> {
        // The single-layer structure still benefits from the planner: any
        // compound query is one superpost batch, just with L = 1 per atom.
        self.inner.execute(query, opts)
    }

    fn index_bytes(&self) -> u64 {
        self.inner.index_usage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{LineSplitter, WhitespaceTokenizer};
    use airphant_storage::InMemoryStore;
    use bytes::Bytes;

    fn corpus(store: Arc<dyn ObjectStore>, lines: &[String]) -> Corpus {
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn hashtable_is_single_layer() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let lines: Vec<String> = (0..50).map(|i| format!("word{i}")).collect();
        let c = corpus(store.clone(), &lines);
        let report =
            HashTableEngine::build(&c, "ht", &AirphantConfig::default().with_total_bins(64))
                .unwrap();
        assert_eq!(report.layers, 1);
        let engine = HashTableEngine::open(store, "ht").unwrap();
        assert_eq!(engine.name(), "HashTable");
        assert_eq!(engine.searcher().mht().layers(), 1);
    }

    #[test]
    fn results_are_still_exact_after_filtering() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let lines: Vec<String> = (0..80).map(|i| format!("tag{i} body")).collect();
        let c = corpus(store.clone(), &lines);
        HashTableEngine::build(
            &c,
            "ht",
            &AirphantConfig::default()
                .with_total_bins(16)
                .with_common_fraction(0.0),
        )
        .unwrap();
        let engine = HashTableEngine::open(store, "ht").unwrap();
        let r = engine.search("tag13", None).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].text, "tag13 body");
        // With 16 bins and 80+ words, collisions are certain: the engine
        // must have fetched and discarded false-positive documents.
        assert!(
            r.false_positives_removed > 0,
            "L=1 with tiny B must over-fetch"
        );
    }

    #[test]
    fn hashtable_fetches_more_than_airphant() {
        // The defining behaviour of the baseline (Figure 8): download-heavy.
        // Documents carry a fat payload so false-positive fetches dominate.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let filler = "lorem-ipsum-padding ".repeat(20);
        let lines: Vec<String> = (0..100).map(|i| format!("unique{i} {filler}")).collect();
        let c = corpus(store.clone(), &lines);
        let config = AirphantConfig::default()
            .with_total_bins(40)
            .with_common_fraction(0.0);
        HashTableEngine::build(&c, "ht", &config).unwrap();
        Builder::new(config.clone().with_manual_layers(3))
            .build(&c, "iou")
            .unwrap();
        let ht = HashTableEngine::open(store.clone(), "ht").unwrap();
        let iou = Searcher::open(store, "iou").unwrap();
        let mut ht_bytes = 0u64;
        let mut iou_bytes = 0u64;
        let mut ht_fp = 0usize;
        for i in 0..20 {
            let w = format!("unique{i}");
            let hr = ht.search(&w, None).unwrap();
            let ir = iou.search(&w, None).unwrap();
            ht_fp += hr.false_positives_removed;
            ht_bytes += hr.trace.bytes();
            iou_bytes += ir.trace.bytes();
        }
        assert!(ht_fp > 20, "L=1 must over-fetch documents, saw {ht_fp} FPs");
        assert!(
            ht_bytes > 2 * iou_bytes,
            "HashTable downloaded {ht_bytes}, IoU {iou_bytes}"
        );
    }
}
