//! # airphant-baselines
//!
//! The four baseline search engines the paper compares Airphant against
//! (§V-A0b), reimplemented over the same object-storage substrate so that
//! the *round-trip structure* of each index — the thing the paper's
//! analysis attributes the latency differences to — is reproduced
//! faithfully:
//!
//! * [`HashTableEngine`] — "an inverted index that stores postings lists
//!   according to their corresponding terms' hashes. It is equivalent to
//!   IoU Sketch with the only exception that it has a single layer L = 1"
//!   (same bin count, same common-word bins, same compaction).
//! * [`BTreeEngine`] — the SQLite stand-in: a paged B+tree term index whose
//!   lookup descends root → leaf with one *dependent* ranged read per
//!   level, then fetches the postings row. Shares Airphant's document
//!   retrieval routine, as the paper's SQLite benchmark does.
//! * [`SkipListEngine`] — the Lucene stand-in: an on-disk skip list over
//!   the sorted term dictionary; traversal hops are dependent reads
//!   ("to know which block to read next, the skip list needs to complete
//!   reading the current node first", Appendix A).
//! * [`ElasticEngine`] — the Elasticsearch stand-in: the skip-list engine
//!   behind a searchable-snapshot mount (large init download) with
//!   block-granular reads and per-query coordination overhead.
//!
//! All engines implement [`airphant::SearchEngine`], index identical parsed
//! corpora, and report [`QueryTrace`](airphant_storage::QueryTrace)s, so
//! the bench harness can regenerate every comparison figure.

#![warn(missing_docs)]

pub mod btree;
pub mod elastic;
pub mod hashtable;
pub mod inverted;
pub mod skiplist;

pub use btree::{BTreeBuilder, BTreeEngine};
pub use elastic::{ElasticBuilder, ElasticEngine};
pub use hashtable::HashTableEngine;
pub use inverted::InvertedIndex;
pub use skiplist::{SkipListBuilder, SkipListEngine};
