//! The Elasticsearch baseline: the skip-list engine behind a searchable-
//! snapshot mount.
//!
//! §V-A0b: "To benchmark Elasticsearch, we mount a Searchable Snapshot onto
//! an Elasticsearch empty instance"; §V-B0b: "Elasticsearch spends much
//! time in mounting its searchable snapshots". We model the three
//! Elasticsearch-specific costs on top of the Lucene-like structure it
//! wraps:
//!
//! 1. **Snapshot mount at init** — the mount downloads/materializes the
//!    index files from the snapshot repository (a full-index read).
//! 2. **Block-granular reads** — the searchable-snapshot block cache
//!    fetches fixed large blocks rather than exact byte ranges, inflating
//!    the bytes moved per traversal hop.
//! 3. **Coordination overhead per query** — REST layer, shard routing, and
//!    query phase bookkeeping.

use crate::skiplist::{SkipListBuildReport, SkipListBuilder, SkipListEngine};
use airphant::{Query, QueryOptions, SearchEngine, SearchResult};
use airphant_storage::{ObjectStore, PhaseKind, QueryTrace, SimDuration};
use iou_sketch::PostingsList;
use std::sync::Arc;

/// Block size of the searchable-snapshot block cache model.
pub const ES_BLOCK_BYTES: u64 = 128 * 1024;
/// Per-query coordination overhead.
pub const ES_QUERY_OVERHEAD_MS: u64 = 4;

/// Builds the Elasticsearch-like index (identical on-storage layout to the
/// skip-list engine; the differences are all at query/init time).
pub struct ElasticBuilder;

impl ElasticBuilder {
    /// Build the index for `corpus` under `prefix`.
    pub fn build(
        corpus: &airphant_corpus::Corpus,
        prefix: &str,
    ) -> airphant::Result<SkipListBuildReport> {
        SkipListBuilder::build(corpus, prefix)
    }
}

/// The Elasticsearch-like engine.
pub struct ElasticEngine {
    inner: SkipListEngine,
}

impl ElasticEngine {
    /// Open the index, performing the searchable-snapshot mount: the init
    /// trace includes reading the full node and heap files from the
    /// snapshot repository.
    pub fn open(store: Arc<dyn ObjectStore>, prefix: &str) -> airphant::Result<Self> {
        let mut inner =
            SkipListEngine::open_with_options(store.clone(), prefix, ES_BLOCK_BYTES, 3)?;
        inner.set_display(
            "Elasticsearch",
            SimDuration::from_millis(ES_QUERY_OVERHEAD_MS),
        );

        // Snapshot mount: materialize the index files.
        let mut mount = QueryTrace::new();
        for blob in [
            format!("{prefix}/skiplist/nodes"),
            format!("{prefix}/skiplist/heap"),
        ] {
            let fetched = store.get(&blob)?;
            mount.record_sequential(
                PhaseKind::Init,
                1,
                fetched.bytes.len() as u64,
                fetched.latency.first_byte,
                fetched.latency.transfer,
            );
        }
        inner.extend_init(&mount);
        Ok(ElasticEngine { inner })
    }

    /// The wrapped skip-list engine.
    pub fn inner(&self) -> &SkipListEngine {
        &self.inner
    }
}

impl SearchEngine for ElasticEngine {
    fn name(&self) -> &'static str {
        "Elasticsearch"
    }

    fn init_trace(&self) -> QueryTrace {
        self.inner.init_trace()
    }

    fn lookup(&self, word: &str) -> airphant::Result<(PostingsList, QueryTrace)> {
        self.inner.lookup(word)
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> airphant::Result<SearchResult> {
        self.inner.execute(query, opts)
    }

    fn index_bytes(&self) -> u64 {
        self.inner.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use bytes::Bytes;

    fn corpus(store: Arc<dyn ObjectStore>, n: usize) -> Corpus {
        let lines: Vec<String> = (0..n).map(|i| format!("term{i:05} x")).collect();
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn mount_dominates_init() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            9,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let c = corpus(s, 3_000);
            ElasticBuilder::build(&c, "idx").unwrap();
        }
        let engine = ElasticEngine::open(store.clone(), "idx").unwrap();
        // Mount reads the whole node + heap files; init bytes ≈ index size.
        let init = engine.init_trace();
        assert!(init.bytes() > 10_000);
        // For comparison, a plain skip-list open reads only the meta blob.
        let plain = SkipListEngine::open(store, "idx").unwrap();
        assert!(plain.init_trace().bytes() < init.bytes() / 5);
    }

    #[test]
    fn queries_read_whole_blocks() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 5_000);
        ElasticBuilder::build(&c, "idx").unwrap();
        let es = ElasticEngine::open(store.clone(), "idx").unwrap();
        let lucene = SkipListEngine::open(store, "idx").unwrap();
        let (_, es_trace) = es.lookup("term02500").unwrap();
        let (_, lucene_trace) = lucene.lookup("term02500").unwrap();
        assert!(
            es_trace.bytes() > 10 * lucene_trace.bytes(),
            "block reads should inflate bytes: es={} lucene={}",
            es_trace.bytes(),
            lucene_trace.bytes()
        );
        // Coordination overhead is present.
        assert!(es_trace.compute() >= SimDuration::from_millis(ES_QUERY_OVERHEAD_MS));
    }

    #[test]
    fn results_remain_exact() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 500);
        ElasticBuilder::build(&c, "idx").unwrap();
        let es = ElasticEngine::open(store, "idx").unwrap();
        let r = es.search("term00123", None).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(es.name(), "Elasticsearch");
    }
}
