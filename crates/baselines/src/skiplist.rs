//! The Lucene baseline: an on-disk skip list over the sorted term
//! dictionary.
//!
//! Lucene's term index is a skip list (§II-A: "A skip list is used by
//! Apache Lucene"), and the paper's breakdown (Fig 8, Appendix A) shows its
//! cloud-storage cost is *wait-dominated*: "skip list traversal requires
//! the current node to find the next node to skip to; therefore, to know
//! which block to read next, the skip list needs to complete reading the
//! current node first."
//!
//! Layout under the index prefix:
//!
//! * `skiplist/meta`  — head offsets per level, string table; downloaded at
//!   open (the terms-index Lucene memory-maps at startup).
//! * `skiplist/nodes` — variable-size nodes with fixed-width forward
//!   pointers, in term order.
//! * `skiplist/heap`  — postings, compacted with Airphant's encoding.
//!
//! Every traversal hop reads one node window — a dependent ranged read.

use crate::inverted::InvertedIndex;
use airphant::{AirphantError, Query, QueryOptions, SearchEngine, SearchResult};
use airphant_corpus::{Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, PhaseKind, QueryTrace, SimDuration};
use bytes::{BufMut, BytesMut};
use iou_sketch::encoding::{decode_superpost, put_string, put_varint, Cursor, StringTable};
use iou_sketch::{PostingsList, SketchError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Geometric skip fanout: every 4th node is promoted a level
/// (`p = 1/4`, Lucene's default skip interval spirit).
const FANOUT: u64 = 4;
/// Maximum tower height.
const MAX_HEIGHT: usize = 12;
/// Null forward pointer.
const NIL: u32 = u32::MAX;
/// Default bytes read per node hop (a node plus read-ahead slack).
pub const NODE_WINDOW: u64 = 256;

fn meta_blob(prefix: &str) -> String {
    format!("{prefix}/skiplist/meta")
}
fn nodes_blob(prefix: &str) -> String {
    format!("{prefix}/skiplist/nodes")
}
fn heap_blob(prefix: &str) -> String {
    format!("{prefix}/skiplist/heap")
}

/// Tower height for the `i`-th term (deterministic geometric: promotions
/// at every `FANOUT^k` boundary).
fn height_of(i: u64) -> usize {
    let mut h = 1usize;
    let mut step = FANOUT;
    while i.is_multiple_of(step) && h < MAX_HEIGHT {
        h += 1;
        step = step.saturating_mul(FANOUT);
    }
    h
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    word: String,
    heap_offset: u64,
    heap_len: u32,
    /// Forward node offsets, one per level of this node's tower.
    next: Vec<u32>,
}

impl Node {
    fn encoded_size(word: &str, height: usize) -> usize {
        // varint(word_len) ≤ 2 for realistic words + word + heap_off ≤ 10
        // + heap_len ≤ 5 + height byte + fixed 4-byte pointers.
        2 + word.len() + 10 + 5 + 1 + 4 * height
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        put_string(buf, &self.word);
        put_varint(buf, self.heap_offset);
        put_varint(buf, self.heap_len as u64);
        buf.put_u8(self.next.len() as u8);
        for &n in &self.next {
            buf.put_u32_le(n);
        }
    }

    fn decode(data: &[u8]) -> Result<Node, SketchError> {
        let mut cur = Cursor::new(data);
        let word = cur.string()?;
        let heap_offset = cur.varint()?;
        let heap_len = cur.varint()? as u32;
        let height = cur.bytes(1)?[0] as usize;
        let mut next = Vec::with_capacity(height);
        for _ in 0..height {
            let raw = cur.bytes(4)?;
            next.push(u32::from_le_bytes(raw.try_into().unwrap()));
        }
        Ok(Node {
            word,
            heap_offset,
            heap_len,
            next,
        })
    }
}

/// Builds and persists the skip-list index.
pub struct SkipListBuilder;

/// Summary of a skip-list build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipListBuildReport {
    /// Terms indexed.
    pub terms: usize,
    /// Levels in the list.
    pub levels: usize,
    /// Bytes of the node file.
    pub node_bytes: u64,
}

impl SkipListBuilder {
    /// Build the index for `corpus` under `prefix`.
    pub fn build(
        corpus: &airphant_corpus::Corpus,
        prefix: &str,
    ) -> airphant::Result<SkipListBuildReport> {
        let inverted = InvertedIndex::from_corpus(corpus)?;
        Self::build_from_inverted(&inverted, corpus.store().as_ref(), prefix)
    }

    /// Build from a pre-computed inverted index.
    pub fn build_from_inverted(
        inverted: &InvertedIndex,
        store: &dyn ObjectStore,
        prefix: &str,
    ) -> airphant::Result<SkipListBuildReport> {
        let (heap, term_pointers) = inverted.build_heap(0);

        // Pass 1: node offsets (sizes are pointer-value independent
        // because forward pointers are fixed-width).
        let n = term_pointers.len();
        let mut offsets = Vec::with_capacity(n);
        let mut heights = Vec::with_capacity(n);
        let mut off = 0u64;
        for (i, (word, _)) in term_pointers.iter().enumerate() {
            let h = height_of(i as u64);
            offsets.push(off as u32);
            heights.push(h);
            off += Node::encoded_size(word, h) as u64;
        }

        // Pass 2: resolve forward pointers (next node at each level).
        let max_level = heights.iter().copied().max().unwrap_or(1);
        let mut heads = vec![NIL; max_level];
        let mut nodes_buf = BytesMut::with_capacity(off as usize);
        for i in 0..n {
            let (word, ptr) = &term_pointers[i];
            let h = heights[i];
            let mut next = vec![NIL; h];
            for (level, slot) in next.iter_mut().enumerate() {
                // The next node whose tower reaches `level`.
                for (j, &hj) in heights.iter().enumerate().skip(i + 1) {
                    if hj > level {
                        *slot = offsets[j];
                        break;
                    }
                }
            }
            for (level, head) in heads.iter_mut().enumerate() {
                if *head == NIL && h > level {
                    *head = offsets[i];
                }
            }
            let node = Node {
                word: word.clone(),
                heap_offset: ptr.offset,
                heap_len: ptr.len,
                next,
            };
            let before = nodes_buf.len();
            node.encode_into(&mut nodes_buf);
            let used = nodes_buf.len() - before;
            let reserved = Node::encoded_size(word, h);
            assert!(used <= reserved, "size model must be an upper bound");
            nodes_buf.resize(before + reserved, 0); // pad to the reserved size
        }

        store.put(&nodes_blob(prefix), nodes_buf.freeze())?;
        store.put(&heap_blob(prefix), heap.freeze())?;

        let mut meta = BytesMut::new();
        meta.put_slice(b"SKIP");
        put_varint(&mut meta, max_level as u64);
        for &h in &heads {
            put_varint(&mut meta, h as u64);
        }
        put_varint(&mut meta, n as u64);
        put_varint(&mut meta, off);
        put_varint(&mut meta, inverted.string_table.len() as u64);
        for id in 0..inverted.string_table.len() as u32 {
            put_string(&mut meta, inverted.string_table.name(id).unwrap());
        }
        store.put(&meta_blob(prefix), meta.freeze())?;

        Ok(SkipListBuildReport {
            terms: n,
            levels: max_level,
            node_bytes: off,
        })
    }
}

/// The Lucene-like query engine.
pub struct SkipListEngine {
    store: Arc<dyn ObjectStore>,
    prefix: String,
    heads: Vec<u32>,
    node_bytes: u64,
    string_table: StringTable,
    tokenizer: Arc<dyn Tokenizer>,
    init_trace: QueryTrace,
    /// Bytes fetched per node hop; larger windows model block-granular
    /// readers (the Elasticsearch searchable-snapshot block cache).
    read_window: u64,
    /// Cache of upper-level nodes (terms-index-in-memory behaviour).
    node_cache: Mutex<HashMap<u32, Node>>,
    cache_min_height: usize,
    /// Engine display name (the Elasticsearch wrapper re-labels it).
    display_name: &'static str,
    /// Fixed per-query coordination compute (zero for plain Lucene).
    query_overhead: SimDuration,
}

impl SkipListEngine {
    /// Open an index built by [`SkipListBuilder`] with Lucene-like
    /// defaults: 256-byte node reads, upper levels cached once visited.
    pub fn open(store: Arc<dyn ObjectStore>, prefix: &str) -> airphant::Result<Self> {
        Self::open_with_options(store, prefix, NODE_WINDOW, 3)
    }

    /// Open with explicit read window and cache threshold (nodes with
    /// towers of at least `cache_min_height` are cached after first read;
    /// pass `usize::MAX` to disable caching).
    pub fn open_with_options(
        store: Arc<dyn ObjectStore>,
        prefix: &str,
        read_window: u64,
        cache_min_height: usize,
    ) -> airphant::Result<Self> {
        let meta_name = meta_blob(prefix);
        if !store.exists(&meta_name) {
            return Err(AirphantError::IndexNotFound {
                prefix: prefix.to_owned(),
            });
        }
        let mut init_trace = QueryTrace::new();
        let fetched = store.get(&meta_name)?;
        init_trace.record_sequential(
            PhaseKind::Init,
            1,
            fetched.bytes.len() as u64,
            fetched.latency.first_byte,
            fetched.latency.transfer,
        );
        let mut cur = Cursor::new(&fetched.bytes);
        let magic = cur.bytes(4)?;
        if magic != b"SKIP" {
            return Err(SketchError::Corrupt {
                detail: "bad skiplist meta magic".into(),
            }
            .into());
        }
        let levels = cur.varint()? as usize;
        let mut heads = Vec::with_capacity(levels);
        for _ in 0..levels {
            heads.push(cur.varint()? as u32);
        }
        let _terms = cur.varint()?;
        let node_bytes = cur.varint()?;
        let n_names = cur.varint()? as usize;
        let mut string_table = StringTable::new();
        for _ in 0..n_names {
            let name = cur.string()?;
            string_table.intern(&name);
        }
        Ok(SkipListEngine {
            store,
            prefix: prefix.to_owned(),
            heads,
            node_bytes,
            string_table,
            tokenizer: Arc::new(WhitespaceTokenizer),
            init_trace,
            read_window,
            node_cache: Mutex::new(HashMap::new()),
            cache_min_height,
            display_name: "Lucene",
            query_overhead: SimDuration::ZERO,
        })
    }

    pub(crate) fn set_display(&mut self, name: &'static str, overhead: SimDuration) {
        self.display_name = name;
        self.query_overhead = overhead;
    }

    pub(crate) fn extend_init(&mut self, trace: &QueryTrace) {
        self.init_trace.extend(trace);
    }

    /// Number of skip levels.
    pub fn levels(&self) -> usize {
        self.heads.len()
    }

    fn read_node(
        &self,
        offset: u32,
        reads: &mut u64,
        bytes: &mut u64,
        wait: &mut SimDuration,
        download: &mut SimDuration,
    ) -> airphant::Result<Node> {
        {
            let cache = self.node_cache.lock();
            if let Some(n) = cache.get(&offset) {
                return Ok(n.clone());
            }
        }
        let len = self.read_window.min(self.node_bytes - offset as u64);
        let fetched = self
            .store
            .get_range(&nodes_blob(&self.prefix), offset as u64, len)?;
        *reads += 1;
        *bytes += fetched.bytes.len() as u64;
        *wait += fetched.latency.first_byte;
        *download += fetched.latency.transfer;
        let node = Node::decode(&fetched.bytes)?;
        if node.next.len() >= self.cache_min_height {
            self.node_cache.lock().insert(offset, node.clone());
        }
        Ok(node)
    }

    fn traverse(&self, word: &str, trace: &mut QueryTrace) -> airphant::Result<Option<Node>> {
        let mut reads = 0u64;
        let mut bytes = 0u64;
        let mut wait = SimDuration::ZERO;
        let mut download = SimDuration::ZERO;

        let mut found = None;
        // Walk from the top level; `at` is the last node known < word.
        let mut at: Option<Node> = None;
        'levels: for level in (0..self.heads.len()).rev() {
            loop {
                let next_off = match &at {
                    Some(node) => node.next.get(level).copied().unwrap_or(NIL),
                    None => self.heads[level],
                };
                if next_off == NIL {
                    continue 'levels;
                }
                let next =
                    self.read_node(next_off, &mut reads, &mut bytes, &mut wait, &mut download)?;
                match next.word.as_str().cmp(word) {
                    std::cmp::Ordering::Less => at = Some(next),
                    std::cmp::Ordering::Equal => {
                        found = Some(next);
                        break 'levels;
                    }
                    std::cmp::Ordering::Greater => continue 'levels,
                }
            }
        }
        trace.record_sequential(PhaseKind::Lookup, reads, bytes, wait, download);
        if self.query_overhead > SimDuration::ZERO {
            trace.record_compute(self.query_overhead);
        }
        Ok(found)
    }
}

impl SearchEngine for SkipListEngine {
    fn name(&self) -> &'static str {
        self.display_name
    }

    fn init_trace(&self) -> QueryTrace {
        self.init_trace.clone()
    }

    fn lookup(&self, word: &str) -> airphant::Result<(PostingsList, QueryTrace)> {
        let mut trace = QueryTrace::new();
        let node = self.traverse(word, &mut trace)?;
        let postings = match node {
            Some(node) => {
                let fetched = self.store.get_range(
                    &heap_blob(&self.prefix),
                    node.heap_offset,
                    node.heap_len as u64,
                )?;
                trace.record_sequential(
                    PhaseKind::Postings,
                    1,
                    fetched.bytes.len() as u64,
                    fetched.latency.first_byte,
                    fetched.latency.transfer,
                );
                decode_superpost(&fetched.bytes)?
            }
            None => PostingsList::new(),
        };
        Ok((postings, trace))
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> airphant::Result<SearchResult> {
        // One skip-list traversal per distinct term/gram (dependent hops,
        // Appendix A), then one shared fetch-and-filter pass.
        airphant::execute_with_lookup(
            &|w| SearchEngine::lookup(self, w),
            self.store.as_ref(),
            &self.string_table,
            self.tokenizer.as_ref(),
            true,
            query,
            opts,
        )
    }

    fn index_bytes(&self) -> u64 {
        self.store
            .usage(&format!("{}/skiplist/", self.prefix))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{Corpus, LineSplitter};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use bytes::Bytes;

    fn corpus(store: Arc<dyn ObjectStore>, n: usize) -> Corpus {
        let lines: Vec<String> = (0..n).map(|i| format!("term{i:05} tag{}", i % 3)).collect();
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn height_pattern_is_geometric() {
        assert_eq!(height_of(1), 1);
        assert_eq!(height_of(2), 1);
        assert_eq!(height_of(4), 2);
        assert_eq!(height_of(16), 3);
        assert_eq!(height_of(64), 4);
        assert!(height_of(0) >= MAX_HEIGHT.min(12)); // 0 divisible by all
    }

    #[test]
    fn node_roundtrip() {
        let node = Node {
            word: "hello".into(),
            heap_offset: 12_345,
            heap_len: 678,
            next: vec![10, NIL, 99],
        };
        let mut buf = BytesMut::new();
        node.encode_into(&mut buf);
        assert!(buf.len() <= Node::encoded_size("hello", 3));
        let decoded = Node::decode(&buf).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn build_and_lookup_all_terms() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 300);
        let report = SkipListBuilder::build(&c, "idx").unwrap();
        assert!(report.levels >= 3);
        let engine = SkipListEngine::open(store, "idx").unwrap();
        for i in [0usize, 1, 77, 150, 299] {
            let (postings, _) = engine.lookup(&format!("term{i:05}")).unwrap();
            assert_eq!(postings.len(), 1, "term{i:05}");
        }
        let (tag, _) = engine.lookup("tag1").unwrap();
        assert_eq!(tag.len(), 100);
        let (missing, _) = engine.lookup("zzz").unwrap();
        assert!(missing.is_empty());
        let (before_all, _) = engine.lookup("aaa").unwrap();
        assert!(before_all.is_empty());
    }

    #[test]
    fn traversal_is_wait_heavy_on_cloud() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            3,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let c = corpus(s, 5_000);
            SkipListBuilder::build(&c, "idx").unwrap();
        }
        // Disable caching to expose the full dependent-read chain.
        let engine =
            SkipListEngine::open_with_options(store, "idx", NODE_WINDOW, usize::MAX).unwrap();
        let (_, trace) = engine.lookup("term02500").unwrap();
        assert!(trace.requests() > 4, "requests {}", trace.requests());
        // Wait dominates download for tiny node reads (Figure 8's Lucene).
        assert!(trace.wait() > trace.download() * 3.0);
    }

    #[test]
    fn upper_level_cache_reduces_hops() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 5_000);
        SkipListBuilder::build(&c, "idx").unwrap();
        let engine = SkipListEngine::open(store, "idx").unwrap();
        let (_, cold) = engine.lookup("term04000").unwrap();
        let (_, warm) = engine.lookup("term04001").unwrap();
        assert!(
            warm.requests() <= cold.requests(),
            "warm {} cold {}",
            warm.requests(),
            cold.requests()
        );
    }

    #[test]
    fn search_is_exact() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 200);
        SkipListBuilder::build(&c, "idx").unwrap();
        let engine = SkipListEngine::open(store, "idx").unwrap();
        let r = engine.search("tag2", None).unwrap();
        assert_eq!(r.hits.len(), 66);
        assert_eq!(r.false_positives_removed, 0);
        assert_eq!(engine.name(), "Lucene");
        assert!(engine.index_bytes() > 0);
    }
}
