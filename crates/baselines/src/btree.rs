//! The SQLite baseline: a paged B+tree term index over cloud storage.
//!
//! §V-A0b: "SQLite is a light database we choose as a practical B-tree
//! implementation. We first create a two-column table consisting of keyword
//! column and postings column to mimic the inverted index dictionary. We
//! then build SQLite's B-tree index on the keyword column … and store its
//! database file on the cloud-mounted directory. In each query, after
//! retrieving the postings, SQLite reuses the same document retrieval
//! routine from Airphant."
//!
//! Layout (all under the index prefix):
//!
//! * `btree/meta`  — root page id, tree height, string table. Downloaded at
//!   open, like SQLite's database header and schema.
//! * `btree/pages` — fixed 4 KiB pages, root → internal → leaf.
//! * `btree/heap`  — postings rows, compacted with Airphant's encoding.
//!
//! A lookup descends the tree with one **dependent** ranged read per level
//! (it cannot know which child page to read before parsing the parent),
//! then one more read for the postings row — the sequential round trips
//! that make hierarchical indexes slow on cloud storage (§II-B). A page
//! cache for *internal* pages models SQLite's buffer pool ("SQLite's
//! cached B-tree traversal", Appendix B-A).

use crate::inverted::InvertedIndex;
use airphant::{AirphantError, Query, QueryOptions, SearchEngine, SearchResult};
use airphant_corpus::{Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, PhaseKind, QueryTrace, SimDuration};
use bytes::{BufMut, Bytes, BytesMut};
use iou_sketch::encoding::{
    decode_superpost, put_string, put_varint, BinPointer, Cursor, StringTable,
};
use iou_sketch::{PostingsList, SketchError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Fixed page size, matching SQLite's default.
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved per page for the page header/slack.
const PAGE_SLACK: usize = 32;

fn meta_blob(prefix: &str) -> String {
    format!("{prefix}/btree/meta")
}
fn pages_blob(prefix: &str) -> String {
    format!("{prefix}/btree/pages")
}
fn heap_blob(prefix: &str) -> String {
    format!("{prefix}/btree/heap")
}

#[derive(Debug, Clone, PartialEq)]
enum Page {
    Leaf(Vec<(String, BinPointer)>),
    /// `(first_child, separators)`: keys < separators[0] go to first_child;
    /// keys in `[sep[i], sep[i+1])` go to `children[i]`.
    Internal {
        first_child: u32,
        separators: Vec<(String, u32)>,
    },
}

impl Page {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PAGE_SIZE);
        match self {
            Page::Leaf(entries) => {
                buf.put_u8(0);
                put_varint(&mut buf, entries.len() as u64);
                for (word, ptr) in entries {
                    put_string(&mut buf, word);
                    put_varint(&mut buf, ptr.offset);
                    put_varint(&mut buf, ptr.len as u64);
                }
            }
            Page::Internal {
                first_child,
                separators,
            } => {
                buf.put_u8(1);
                put_varint(&mut buf, separators.len() as u64);
                put_varint(&mut buf, *first_child as u64);
                for (word, child) in separators {
                    put_string(&mut buf, word);
                    put_varint(&mut buf, *child as u64);
                }
            }
        }
        assert!(buf.len() <= PAGE_SIZE, "page overflow: {} bytes", buf.len());
        buf.resize(PAGE_SIZE, 0);
        buf.freeze()
    }

    fn decode(data: &[u8]) -> Result<Self, SketchError> {
        let mut cur = Cursor::new(data);
        let kind = cur.bytes(1)?[0];
        let n = cur.varint()? as usize;
        match kind {
            0 => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let word = cur.string()?;
                    let offset = cur.varint()?;
                    let len = cur.varint()? as u32;
                    entries.push((word, BinPointer::new(0, offset, len)));
                }
                Ok(Page::Leaf(entries))
            }
            1 => {
                let first_child = cur.varint()? as u32;
                let mut separators = Vec::with_capacity(n);
                for _ in 0..n {
                    let word = cur.string()?;
                    let child = cur.varint()? as u32;
                    separators.push((word, child));
                }
                Ok(Page::Internal {
                    first_child,
                    separators,
                })
            }
            k => Err(SketchError::Corrupt {
                detail: format!("unknown page kind {k}"),
            }),
        }
    }

    fn is_internal(&self) -> bool {
        matches!(self, Page::Internal { .. })
    }
}

/// Builds and persists the B+tree index.
pub struct BTreeBuilder;

impl BTreeBuilder {
    /// Build the index for `corpus` under `prefix`.
    pub fn build(
        corpus: &airphant_corpus::Corpus,
        prefix: &str,
    ) -> airphant::Result<BTreeBuildReport> {
        let inverted = InvertedIndex::from_corpus(corpus)?;
        Self::build_from_inverted(&inverted, corpus.store().as_ref(), prefix)
    }

    /// Build from a pre-computed inverted index.
    pub fn build_from_inverted(
        inverted: &InvertedIndex,
        store: &dyn ObjectStore,
        prefix: &str,
    ) -> airphant::Result<BTreeBuildReport> {
        let (heap, term_pointers) = inverted.build_heap(0);

        // --- Pack leaves greedily under the page budget. ---
        let mut pages: Vec<Page> = Vec::new();
        let mut current: Vec<(String, BinPointer)> = Vec::new();
        let mut current_size = 2usize; // kind byte + count varint lower bound
        let budget = PAGE_SIZE - PAGE_SLACK;
        for (word, ptr) in term_pointers {
            let entry_size = 10 + word.len() + 10 + 5;
            if !current.is_empty() && current_size + entry_size > budget {
                pages.push(Page::Leaf(std::mem::take(&mut current)));
                current_size = 2;
            }
            current_size += entry_size;
            current.push((word, ptr));
        }
        if !current.is_empty() {
            pages.push(Page::Leaf(current));
        }
        if pages.is_empty() {
            pages.push(Page::Leaf(Vec::new()));
        }

        // --- Build internal levels bottom-up. ---
        let mut height = 1u32;
        let mut level: Vec<(String, u32)> = pages
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let first = match p {
                    Page::Leaf(entries) => {
                        entries.first().map(|(w, _)| w.clone()).unwrap_or_default()
                    }
                    Page::Internal { .. } => unreachable!(),
                };
                (first, i as u32)
            })
            .collect();
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(String, u32)> = Vec::new();
            let mut node_children: Vec<(String, u32)> = Vec::new();
            let mut node_size = 12usize;
            for (word, page_id) in level {
                let entry_size = 10 + word.len() + 5;
                if !node_children.is_empty() && node_size + entry_size > budget {
                    let page_id = pages.len() as u32;
                    next_level.push((node_children[0].0.clone(), page_id));
                    pages.push(make_internal(std::mem::take(&mut node_children)));
                    node_size = 12;
                }
                node_size += entry_size;
                node_children.push((word, page_id));
            }
            if !node_children.is_empty() {
                let page_id = pages.len() as u32;
                next_level.push((node_children[0].0.clone(), page_id));
                pages.push(make_internal(node_children));
            }
            level = next_level;
        }
        let root = level[0].1;

        // --- Persist pages, heap, meta. ---
        let mut pages_buf = BytesMut::with_capacity(pages.len() * PAGE_SIZE);
        for p in &pages {
            pages_buf.extend_from_slice(&p.encode());
        }
        store.put(&pages_blob(prefix), pages_buf.freeze())?;
        store.put(&heap_blob(prefix), heap.freeze())?;

        let mut meta = BytesMut::new();
        meta.put_slice(b"BTRE");
        put_varint(&mut meta, root as u64);
        put_varint(&mut meta, height as u64);
        put_varint(&mut meta, pages.len() as u64);
        encode_string_table(&mut meta, &inverted.string_table);
        store.put(&meta_blob(prefix), meta.freeze())?;

        Ok(BTreeBuildReport {
            pages: pages.len(),
            height,
            terms: inverted.term_count(),
        })
    }
}

fn make_internal(children: Vec<(String, u32)>) -> Page {
    let first_child = children[0].1;
    let separators = children.into_iter().skip(1).collect();
    Page::Internal {
        first_child,
        separators,
    }
}

fn encode_string_table(buf: &mut BytesMut, table: &StringTable) {
    put_varint(buf, table.len() as u64);
    for id in 0..table.len() as u32 {
        put_string(buf, table.name(id).expect("dense ids"));
    }
}

fn decode_string_table(cur: &mut Cursor<'_>) -> Result<StringTable, SketchError> {
    let n = cur.varint()? as usize;
    let mut table = StringTable::new();
    for _ in 0..n {
        let name = cur.string()?;
        table.intern(&name);
    }
    Ok(table)
}

/// Summary of a B+tree build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeBuildReport {
    /// Total pages written.
    pub pages: usize,
    /// Tree height (levels of pages).
    pub height: u32,
    /// Distinct terms indexed.
    pub terms: usize,
}

/// The SQLite-like query engine.
pub struct BTreeEngine {
    store: Arc<dyn ObjectStore>,
    prefix: String,
    root: u32,
    height: u32,
    string_table: StringTable,
    tokenizer: Arc<dyn Tokenizer>,
    init_trace: QueryTrace,
    /// Buffer-pool model: internal pages are cached after first read.
    page_cache: Mutex<HashMap<u32, Page>>,
    cache_internal_pages: bool,
}

impl BTreeEngine {
    /// Open an index built by [`BTreeBuilder`] (internal-page caching on,
    /// modelling SQLite's warm buffer pool).
    pub fn open(store: Arc<dyn ObjectStore>, prefix: &str) -> airphant::Result<Self> {
        Self::open_with_options(store, prefix, true)
    }

    /// Open with explicit control over internal-page caching.
    pub fn open_with_options(
        store: Arc<dyn ObjectStore>,
        prefix: &str,
        cache_internal_pages: bool,
    ) -> airphant::Result<Self> {
        let meta_name = meta_blob(prefix);
        if !store.exists(&meta_name) {
            return Err(AirphantError::IndexNotFound {
                prefix: prefix.to_owned(),
            });
        }
        let mut init_trace = QueryTrace::new();
        let fetched = store.get(&meta_name)?;
        init_trace.record_sequential(
            PhaseKind::Init,
            1,
            fetched.bytes.len() as u64,
            fetched.latency.first_byte,
            fetched.latency.transfer,
        );
        let mut cur = Cursor::new(&fetched.bytes);
        let magic = cur.bytes(4)?;
        if magic != b"BTRE" {
            return Err(SketchError::Corrupt {
                detail: "bad btree meta magic".into(),
            }
            .into());
        }
        let root = cur.varint()? as u32;
        let height = cur.varint()? as u32;
        let _pages = cur.varint()?;
        let string_table = decode_string_table(&mut cur)?;
        Ok(BTreeEngine {
            store,
            prefix: prefix.to_owned(),
            root,
            height,
            string_table,
            tokenizer: Arc::new(WhitespaceTokenizer),
            init_trace,
            page_cache: Mutex::new(HashMap::new()),
            cache_internal_pages,
        })
    }

    /// Tree height.
    pub fn height(&self) -> u32 {
        self.height
    }

    fn read_page(
        &self,
        page_id: u32,
        reads: &mut u64,
        bytes: &mut u64,
        wait: &mut SimDuration,
        download: &mut SimDuration,
    ) -> airphant::Result<Page> {
        if self.cache_internal_pages {
            if let Some(p) = self.page_cache.lock().get(&page_id) {
                return Ok(p.clone());
            }
        }
        let fetched = self.store.get_range(
            &pages_blob(&self.prefix),
            page_id as u64 * PAGE_SIZE as u64,
            PAGE_SIZE as u64,
        )?;
        *reads += 1;
        *bytes += fetched.bytes.len() as u64;
        *wait += fetched.latency.first_byte;
        *download += fetched.latency.transfer;
        let page = Page::decode(&fetched.bytes)?;
        if self.cache_internal_pages && page.is_internal() {
            self.page_cache.lock().insert(page_id, page.clone());
        }
        Ok(page)
    }

    fn descend(&self, word: &str, trace: &mut QueryTrace) -> airphant::Result<Option<BinPointer>> {
        let mut reads = 0u64;
        let mut bytes = 0u64;
        let mut wait = SimDuration::ZERO;
        let mut download = SimDuration::ZERO;
        let mut page_id = self.root;
        let pointer = loop {
            let page = self.read_page(page_id, &mut reads, &mut bytes, &mut wait, &mut download)?;
            match page {
                Page::Internal {
                    first_child,
                    separators,
                } => {
                    let mut child = first_child;
                    for (sep, c) in &separators {
                        if word >= sep.as_str() {
                            child = *c;
                        } else {
                            break;
                        }
                    }
                    page_id = child;
                }
                Page::Leaf(entries) => {
                    break entries
                        .binary_search_by(|(w, _)| w.as_str().cmp(word))
                        .ok()
                        .map(|idx| entries[idx].1);
                }
            }
        };
        // Dependent sequential reads: waits add up (§II-B).
        trace.record_sequential(PhaseKind::Lookup, reads, bytes, wait, download);
        Ok(pointer)
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.page_cache.lock().len()
    }
}

impl SearchEngine for BTreeEngine {
    fn name(&self) -> &'static str {
        "SQLite"
    }

    fn init_trace(&self) -> QueryTrace {
        self.init_trace.clone()
    }

    fn lookup(&self, word: &str) -> airphant::Result<(PostingsList, QueryTrace)> {
        let mut trace = QueryTrace::new();
        let ptr = self.descend(word, &mut trace)?;
        let postings = match ptr {
            Some(ptr) => {
                let fetched =
                    self.store
                        .get_range(&heap_blob(&self.prefix), ptr.offset, ptr.len as u64)?;
                trace.record_sequential(
                    PhaseKind::Postings,
                    1,
                    fetched.bytes.len() as u64,
                    fetched.latency.first_byte,
                    fetched.latency.transfer,
                );
                decode_superpost(&fetched.bytes)?
            }
            None => PostingsList::new(),
        };
        Ok((postings, trace))
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> airphant::Result<SearchResult> {
        // One B-tree descent per distinct term/gram — the dependent
        // round-trip structure the paper attributes SQLite's latency to —
        // then one shared fetch-and-filter pass. Exact postings allow the
        // truncated top-k fetch on single-term queries.
        airphant::execute_with_lookup(
            &|w| SearchEngine::lookup(self, w),
            self.store.as_ref(),
            &self.string_table,
            self.tokenizer.as_ref(),
            true,
            query,
            opts,
        )
    }

    fn index_bytes(&self) -> u64 {
        self.store
            .usage(&format!("{}/btree/", self.prefix))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{Corpus, LineSplitter};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use std::sync::Arc;

    fn corpus(store: Arc<dyn ObjectStore>, n: usize) -> Corpus {
        let lines: Vec<String> = (0..n)
            .map(|i| format!("term{i:05} payload{}", i % 5))
            .collect();
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn page_roundtrip() {
        let leaf = Page::Leaf(vec![
            ("alpha".into(), BinPointer::new(0, 0, 10)),
            ("beta".into(), BinPointer::new(0, 10, 20)),
        ]);
        let internal = Page::Internal {
            first_child: 3,
            separators: vec![("m".into(), 4), ("t".into(), 5)],
        };
        for page in [leaf, internal] {
            let enc = page.encode();
            assert_eq!(enc.len(), PAGE_SIZE);
            assert_eq!(Page::decode(&enc).unwrap(), page);
        }
    }

    #[test]
    fn build_produces_multi_level_tree() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 5_000);
        let report = BTreeBuilder::build(&c, "idx").unwrap();
        assert!(report.height >= 2, "5000 terms need > 1 level");
        assert!(report.pages > 10);
        assert!(report.terms >= 5_000);
    }

    #[test]
    fn lookup_finds_exact_postings() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 2_000);
        BTreeBuilder::build(&c, "idx").unwrap();
        let engine = BTreeEngine::open(store, "idx").unwrap();
        let (postings, trace) = engine.lookup("term00042").unwrap();
        assert_eq!(postings.len(), 1);
        assert!(trace.requests() >= 2, "page reads + heap read");
        let (missing, _) = engine.lookup("not-a-term").unwrap();
        assert!(missing.is_empty());
        // Payload words appear in n/5 docs.
        let (payload, _) = engine.lookup("payload3").unwrap();
        assert_eq!(payload.len(), 400);
    }

    #[test]
    fn search_matches_and_has_no_false_positives() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 500);
        BTreeBuilder::build(&c, "idx").unwrap();
        let engine = BTreeEngine::open(store, "idx").unwrap();
        let r = engine.search("term00123", None).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.false_positives_removed, 0, "exact index has no FPs");
        assert!(r.hits[0].text.starts_with("term00123"));
        let topk = engine.search("payload2", Some(10)).unwrap();
        assert_eq!(topk.hits.len(), 10);
    }

    #[test]
    fn traversal_is_sequential_round_trips() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            5,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let c = corpus(s, 20_000);
            BTreeBuilder::build(&c, "idx").unwrap();
        }
        // Cold cache: each level is a dependent round trip, so lookup wait
        // far exceeds a single round trip.
        let engine = BTreeEngine::open_with_options(store.clone(), "idx", false).unwrap();
        let (_, trace) = engine.lookup("term10000").unwrap();
        assert!(trace.requests() >= 3);
        assert!(
            trace.wait().as_millis_f64() > 90.0,
            "sequential traversal should stack waits, got {}",
            trace.wait()
        );
    }

    #[test]
    fn internal_page_cache_reduces_reads() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let c = corpus(store.clone(), 20_000);
        BTreeBuilder::build(&c, "idx").unwrap();
        let engine = BTreeEngine::open(store, "idx").unwrap();
        let (_, cold) = engine.lookup("term10000").unwrap();
        assert!(engine.cached_pages() > 0);
        let (_, warm) = engine.lookup("term10001").unwrap();
        assert!(
            warm.requests() < cold.requests(),
            "warm {} vs cold {}",
            warm.requests(),
            cold.requests()
        );
        // Warm traversal still needs the (uncached) leaf + heap row.
        assert!(warm.requests() >= 2);
    }

    #[test]
    fn empty_corpus_builds_and_misses() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store.put("c/b", Bytes::new()).unwrap();
        let c = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        BTreeBuilder::build(&c, "idx").unwrap();
        let engine = BTreeEngine::open(store, "idx").unwrap();
        let (postings, _) = engine.lookup("anything").unwrap();
        assert!(postings.is_empty());
    }
}
