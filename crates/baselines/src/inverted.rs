//! Shared inverted-index construction for the term-index baselines.
//!
//! Every baseline indexes the same parsed corpus: sorted distinct terms,
//! each with its exact postings list, plus the blob-name string table. The
//! B+tree and skip-list builders lay this data out differently; the
//! postings themselves are compacted into a shared *heap* blob with the
//! same encoding Airphant uses (§V-A0b: "All postings inserted in all
//! baselines are compressed in the same way as in Airphant").

use airphant_corpus::Corpus;
use bytes::BytesMut;
use iou_sketch::encoding::{encode_superpost, BinPointer, StringTable};
use iou_sketch::{Posting, PostingsList};
use std::collections::BTreeMap;

/// A fully materialized inverted index: the input to baseline builders.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// Sorted term → exact postings list.
    pub terms: BTreeMap<String, PostingsList>,
    /// Blob-name interning table used by the postings.
    pub string_table: StringTable,
    /// Number of documents indexed.
    pub docs: u64,
}

impl InvertedIndex {
    /// Build from a corpus in one pass.
    pub fn from_corpus(corpus: &Corpus) -> airphant_storage::Result<Self> {
        let mut string_table = StringTable::new();
        let mut acc: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
        let tokenizer = corpus.tokenizer().clone();
        let mut docs = 0u64;
        corpus.for_each_document(|doc| {
            docs += 1;
            let blob_id = string_table.intern(&doc.blob);
            let posting = Posting::new(blob_id, doc.offset, doc.len);
            let mut distinct: Vec<String> = tokenizer.tokens(&doc.text);
            distinct.sort_unstable();
            distinct.dedup();
            for w in distinct {
                acc.entry(w).or_default().push(posting);
            }
        })?;
        let terms = acc
            .into_iter()
            .map(|(w, ps)| (w, PostingsList::from_postings(ps)))
            .collect();
        Ok(InvertedIndex {
            terms,
            string_table,
            docs,
        })
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Serialize every postings list into a single heap buffer, returning
    /// per-term `(offset, len)` pointers in term order. `block` is the
    /// block id recorded in each pointer.
    pub fn build_heap(&self, block: u32) -> (BytesMut, Vec<(String, BinPointer)>) {
        let mut heap = BytesMut::new();
        let mut pointers = Vec::with_capacity(self.terms.len());
        for (word, postings) in &self.terms {
            let encoded = encode_superpost(postings);
            let ptr = BinPointer::new(block, heap.len() as u64, encoded.len() as u32);
            heap.extend_from_slice(&encoded);
            pointers.push((word.clone(), ptr));
        }
        (heap, pointers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn corpus() -> Corpus {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put("c/b", Bytes::from_static(b"b a\na c\nc c b"))
            .unwrap();
        Corpus::new(
            store,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn terms_are_sorted_with_exact_postings() {
        let idx = InvertedIndex::from_corpus(&corpus()).unwrap();
        let words: Vec<&String> = idx.terms.keys().collect();
        assert_eq!(words, vec!["a", "b", "c"]);
        assert_eq!(idx.docs, 3);
        assert_eq!(idx.terms["a"].len(), 2);
        assert_eq!(idx.terms["b"].len(), 2);
        assert_eq!(idx.terms["c"].len(), 2); // doc 3 counted once
    }

    #[test]
    fn heap_pointers_decode_back() {
        let idx = InvertedIndex::from_corpus(&corpus()).unwrap();
        let (heap, pointers) = idx.build_heap(7);
        for (word, ptr) in &pointers {
            assert_eq!(ptr.block, 7);
            let slice = &heap[ptr.offset as usize..(ptr.offset + ptr.len as u64) as usize];
            let decoded = iou_sketch::encoding::decode_superpost(slice).unwrap();
            assert_eq!(&decoded, &idx.terms[word]);
        }
    }
}
