//! Property tests: the baseline term indexes must agree with a reference
//! `BTreeMap` inverted index for arbitrary corpora.

use airphant::SearchEngine;
use airphant_baselines::{BTreeBuilder, BTreeEngine, SkipListBuilder, SkipListEngine};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn docs_to_corpus(docs: &[Vec<u8>], store: Arc<dyn ObjectStore>) -> Corpus {
    let text = docs
        .iter()
        .map(|ws| {
            ws.iter()
                .map(|w| format!("t{w:03}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n");
    store.put("c/docs", Bytes::from(text)).unwrap();
    Corpus::new(
        store,
        vec!["c/docs".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

fn reference_index(docs: &[Vec<u8>]) -> BTreeMap<String, BTreeSet<usize>> {
    let mut idx: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (i, ws) in docs.iter().enumerate() {
        for w in ws {
            idx.entry(format!("t{w:03}")).or_default().insert(i);
        }
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btree_lookup_matches_reference(
        docs in prop::collection::vec(prop::collection::vec(0u8..60, 1..6), 1..50)
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = docs_to_corpus(&docs, store.clone());
        BTreeBuilder::build(&corpus, "idx").unwrap();
        let engine = BTreeEngine::open(store, "idx").unwrap();
        let reference = reference_index(&docs);
        for w in 0u8..64 {
            let word = format!("t{w:03}");
            let (postings, _) = engine.lookup(&word).unwrap();
            let expected = reference.get(&word).map(BTreeSet::len).unwrap_or(0);
            prop_assert_eq!(postings.len(), expected, "word {}", word);
        }
    }

    #[test]
    fn skiplist_lookup_matches_reference(
        docs in prop::collection::vec(prop::collection::vec(0u8..60, 1..6), 1..50)
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = docs_to_corpus(&docs, store.clone());
        SkipListBuilder::build(&corpus, "idx").unwrap();
        let engine = SkipListEngine::open(store, "idx").unwrap();
        let reference = reference_index(&docs);
        for w in 0u8..64 {
            let word = format!("t{w:03}");
            let (postings, _) = engine.lookup(&word).unwrap();
            let expected = reference.get(&word).map(BTreeSet::len).unwrap_or(0);
            prop_assert_eq!(postings.len(), expected, "word {}", word);
        }
    }

    #[test]
    fn btree_and_skiplist_search_agree(
        docs in prop::collection::vec(prop::collection::vec(0u8..30, 1..5), 1..30),
        query in 0u8..32,
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = docs_to_corpus(&docs, store.clone());
        BTreeBuilder::build(&corpus, "b").unwrap();
        SkipListBuilder::build(&corpus, "s").unwrap();
        let btree = BTreeEngine::open(store.clone(), "b").unwrap();
        let skip = SkipListEngine::open(store, "s").unwrap();
        let word = format!("t{query:03}");
        let rb: BTreeSet<String> = btree
            .search(&word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        let rs: BTreeSet<String> = skip
            .search(&word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        prop_assert_eq!(rb, rs);
    }
}
