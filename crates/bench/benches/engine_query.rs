//! Criterion end-to-end query benchmarks: the CPU cost of a full search on
//! each engine (instantaneous latency model — this isolates the engine
//! code path; the simulated-network comparisons live in the figure
//! binaries).

use airphant::AirphantConfig;
use airphant_bench::{BenchEnv, DatasetKind, DatasetSpec, EngineKind};
use airphant_corpus::QueryWorkload;
use airphant_storage::LatencyModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_engines(c: &mut Criterion) {
    let spec = DatasetSpec {
        kind: DatasetKind::Spark,
        n_docs: 5_000,
        seed: 3,
    };
    let config = AirphantConfig::default().with_total_bins(500).with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    let workload: Vec<String> = env.workload(64, 9).words().to_vec();

    let mut group = c.benchmark_group("engine_query_cpu");
    for kind in EngineKind::all() {
        let view = env.cloud_view(LatencyModel::instantaneous(), 1);
        let engine = env.open_engine(kind, view);
        group.bench_function(kind.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % workload.len();
                black_box(engine.search(&workload[i], Some(10)).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_builder(c: &mut Criterion) {
    c.bench_function("build/airphant_2k_docs", |b| {
        b.iter(|| {
            let spec = DatasetSpec {
                kind: DatasetKind::Hdfs,
                n_docs: 2_000,
                seed: 4,
            };
            let config = AirphantConfig::default().with_total_bins(500).with_seed(1);
            black_box(BenchEnv::prepare(spec, &config))
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let spec = DatasetSpec {
        kind: DatasetKind::Zipf,
        n_docs: 5_000,
        seed: 5,
    };
    let config = AirphantConfig::default().with_total_bins(500).with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    c.bench_function("workload/uniform_100_queries", |b| {
        b.iter(|| black_box(QueryWorkload::uniform(env.profile(), 100, 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_engines, bench_builder, bench_workload_generation
}
criterion_main!(benches);
