//! Criterion microbenchmarks for the IoU Sketch primitives: hashing,
//! postings set algebra, the compaction codec, sketch insert/query, the
//! structure optimizer, and the top-K bound. These measure CPU cost of the
//! hot paths (the simulated network latency is not involved here).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iou_sketch::analysis::CorpusShape;
use iou_sketch::encoding::{decode_superpost, encode_superpost};
use iou_sketch::{
    optimize_layers, sample_size_for_top_k, FalsePositiveModel, HashFamily, Posting, PostingsList,
    SketchBuilder, SketchConfig,
};

fn postings(n: u64, stride: u64) -> PostingsList {
    PostingsList::from_sorted_unique((0..n).map(|i| Posting::new(0, i * stride, 64)).collect())
}

fn bench_hashing(c: &mut Criterion) {
    let family = HashFamily::generate(4, 50_000, 7);
    c.bench_function("hash/bins_of_word_4_layers", |b| {
        b.iter(|| black_box(family.bins(black_box("dfs.DataNode$PacketResponder"))))
    });
}

fn bench_postings_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("postings");
    for size in [100u64, 10_000, 100_000] {
        let a = postings(size, 2);
        let b_list = postings(size, 3);
        group.bench_with_input(BenchmarkId::new("intersect_equal", size), &size, |b, _| {
            b.iter(|| black_box(a.intersect(&b_list)))
        });
        group.bench_with_input(BenchmarkId::new("union", size), &size, |b, _| {
            b.iter(|| black_box(a.union(&b_list)))
        });
    }
    // Lopsided intersection exercises the galloping path.
    let small = postings(100, 1_000);
    let large = postings(100_000, 1);
    group.bench_function("intersect_galloping_100_vs_100k", |b| {
        b.iter(|| black_box(small.intersect(&large)))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for size in [100u64, 10_000] {
        let list = postings(size, 100);
        let encoded = encode_superpost(&list);
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
            b.iter(|| black_box(encode_superpost(black_box(&list))))
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
            b.iter(|| black_box(decode_superpost(black_box(&encoded)).unwrap()))
        });
    }
    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch");
    group.bench_function("insert_10k_words", |b| {
        b.iter(|| {
            let config = SketchConfig::new(2_000, 3).with_common_fraction(0.0);
            let mut builder = SketchBuilder::new(config, 1);
            for w in 0..10_000u64 {
                builder.insert(
                    &format!("w{w}"),
                    &PostingsList::from_doc_ids(&[w % 997, (w * 7) % 997]),
                );
            }
            black_box(builder.freeze())
        })
    });
    let config = SketchConfig::new(2_000, 3).with_common_fraction(0.0);
    let mut builder = SketchBuilder::new(config, 1);
    for w in 0..10_000u64 {
        builder.insert(
            &format!("w{w}"),
            &PostingsList::from_doc_ids(&[w % 997, (w * 7) % 997]),
        );
    }
    let sketch = builder.freeze();
    group.bench_function("query_in_memory", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(sketch.query(&format!("w{i}")))
        })
    });
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // Paper-scale optimization input: 10^6 documents grouped by size.
    let sizes: Vec<u64> = (0..1_000_000u64).map(|i| 5 + (i % 60)).collect();
    let shape = CorpusShape::uniform(sizes, 3_600_000);
    let model = FalsePositiveModel::new(shape, 100_000);
    c.bench_function("optimizer/algorithm1_1M_docs", |b| {
        b.iter(|| black_box(optimize_layers(&model, black_box(1.0)).unwrap()))
    });
    c.bench_function("topk/sample_size", |b| {
        b.iter(|| black_box(sample_size_for_top_k(10, 100_000, 1.0, 1e-6)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_hashing, bench_postings_ops, bench_codec, bench_sketch, bench_optimizer
}
criterion_main!(benches);
