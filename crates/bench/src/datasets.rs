//! The seven benchmark corpora (§V-A, Table II) at reproduction scale.
//!
//! Every generator is seeded and writes through the provided store. Scale
//! factors relative to the paper are recorded in EXPERIMENTS.md; the
//! docs/terms/words *ratios* match Table II so the sketch operates in the
//! same structural regime.

use airphant_corpus::{cranfield_like, diag, hdfs_like, spark_like, unif, windows_like, zipf};
use airphant_corpus::{Corpus, LogCorpusSpec, SyntheticSpec};
use airphant_storage::ObjectStore;
use std::sync::Arc;

/// Which of the paper's corpora to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// `diag(d, d, 0)` — one unique word per document.
    Diag,
    /// `unif(d, d, 1)` — uniform word draws.
    Unif,
    /// `zipf(d, d, 1)` — Zipf(1.07) word draws.
    Zipf,
    /// Cranfield 1400 look-alike (fixed 1398 documents).
    Cranfield,
    /// HDFS log look-alike.
    Hdfs,
    /// Windows log look-alike (most skewed).
    Windows,
    /// Spark log look-alike.
    Spark,
}

/// A dataset selection with its generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which corpus family.
    pub kind: DatasetKind,
    /// Number of documents to generate (ignored for Cranfield's 1398).
    pub n_docs: u64,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        let exp = (self.n_docs as f64).log10().round() as u32;
        match self.kind {
            DatasetKind::Diag => format!("diag({exp},{exp},0)"),
            DatasetKind::Unif => format!("unif({exp},{exp},1)"),
            DatasetKind::Zipf => format!("zipf({exp},{exp},1)"),
            DatasetKind::Cranfield => "Cranfield".to_string(),
            DatasetKind::Hdfs => "HDFS".to_string(),
            DatasetKind::Windows => "Windows".to_string(),
            DatasetKind::Spark => "Spark".to_string(),
        }
    }
}

/// Generate the corpus described by `spec` into `store` under a prefix
/// derived from its name.
pub fn build_dataset(spec: DatasetSpec, store: Arc<dyn ObjectStore>) -> Corpus {
    let prefix = format!("corpora/{}", spec.name());
    match spec.kind {
        DatasetKind::Diag => {
            let s = SyntheticSpec {
                n_docs: spec.n_docs,
                n_vocab: spec.n_docs,
                words_per_doc: 1,
            };
            diag(s, store, &prefix)
        }
        DatasetKind::Unif => {
            let s = SyntheticSpec {
                n_docs: spec.n_docs,
                n_vocab: spec.n_docs,
                words_per_doc: 10,
            };
            unif(s, store, &prefix, spec.seed)
        }
        DatasetKind::Zipf => {
            let s = SyntheticSpec {
                n_docs: spec.n_docs,
                n_vocab: spec.n_docs,
                words_per_doc: 10,
            };
            zipf(s, store, &prefix, spec.seed)
        }
        DatasetKind::Cranfield => cranfield_like(spec.seed, store, &prefix),
        DatasetKind::Hdfs => hdfs_like(LogCorpusSpec::new(spec.n_docs, spec.seed), store, &prefix),
        DatasetKind::Windows => {
            windows_like(LogCorpusSpec::new(spec.n_docs, spec.seed), store, &prefix)
        }
        DatasetKind::Spark => {
            spark_like(LogCorpusSpec::new(spec.n_docs, spec.seed), store, &prefix)
        }
    }
}

/// The seven paper datasets at the default reproduction scale
/// (Table II shrunk ~10^3–10^4×; ratios preserved).
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            kind: DatasetKind::Diag,
            n_docs: 10_000,
            seed: 101,
        },
        DatasetSpec {
            kind: DatasetKind::Unif,
            n_docs: 10_000,
            seed: 102,
        },
        DatasetSpec {
            kind: DatasetKind::Zipf,
            n_docs: 10_000,
            seed: 103,
        },
        DatasetSpec {
            kind: DatasetKind::Cranfield,
            n_docs: 1_398,
            seed: 104,
        },
        DatasetSpec {
            kind: DatasetKind::Hdfs,
            n_docs: 20_000,
            seed: 105,
        },
        DatasetSpec {
            kind: DatasetKind::Windows,
            n_docs: 50_000,
            seed: 106,
        },
        DatasetSpec {
            kind: DatasetKind::Spark,
            n_docs: 30_000,
            seed: 107,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_storage::InMemoryStore;

    #[test]
    fn names_match_paper_notation() {
        let d = DatasetSpec {
            kind: DatasetKind::Diag,
            n_docs: 10_000,
            seed: 1,
        };
        assert_eq!(d.name(), "diag(4,4,0)");
        let z = DatasetSpec {
            kind: DatasetKind::Zipf,
            n_docs: 100_000,
            seed: 1,
        };
        assert_eq!(z.name(), "zipf(5,5,1)");
        assert_eq!(
            DatasetSpec {
                kind: DatasetKind::Windows,
                n_docs: 1,
                seed: 1
            }
            .name(),
            "Windows"
        );
    }

    #[test]
    fn all_seven_generate_and_profile() {
        for mut spec in paper_datasets() {
            // Shrink for test runtime; shape checks live in corpus tests.
            spec.n_docs = spec.n_docs.min(2_000);
            let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
            let corpus = build_dataset(spec, store);
            let p = corpus.profile().unwrap();
            assert!(p.n_docs > 0, "{} generated nothing", spec.name());
            assert!(p.n_terms > 0);
        }
    }
}
