//! The cost model of §V-C (Figure 9): coupled Elasticsearch vs decoupled
//! Airphant under a peak-trough workload.
//!
//! A peak-trough workload is `(A, a, τ)`: peak `A` ops/s for a `τ` fraction
//! of time, trough `a` ops/s for the rest. Airphant scales compute with the
//! instantaneous workload; Elasticsearch "cannot automatically scale down
//! without rebalancing its index", so it provisions for the peak at all
//! times.
//!
//! Constants are the paper's measured values:
//!
//! * Airphant: 175 ms/op → 5.71 ops/s per `e2-small` at $13.23/month;
//!   index size `1.008 × S`; GCS at $0.02/GB/month.
//! * Elasticsearch: 6.49 ms/op → 154.08 ops/s per `e2-medium` at
//!   $26.46/month; index size `0.3316 × S`; local disk at $0.2/GB/month.

use serde::{Deserialize, Serialize};

/// Paper constants and workload parameters for the cost comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Peak workload in ops/s.
    pub peak_ops: f64,
    /// Trough workload in ops/s.
    pub trough_ops: f64,
    /// Fraction of time at peak, `τ ∈ [0, 1]`.
    pub peak_fraction: f64,
    /// Total original data size in gigabytes.
    pub data_gb: f64,
}

/// Airphant throughput per VM (ops/s): 175 ms/op.
pub const AIRPHANT_OPS_PER_VM: f64 = 5.71;
/// Airphant VM cost ($/month, e2-small).
pub const AIRPHANT_VM_COST: f64 = 13.23;
/// Airphant index size factor over original data.
pub const AIRPHANT_STORAGE_FACTOR: f64 = 1.008;
/// Cloud storage price ($/GB/month).
pub const CLOUD_STORAGE_PRICE: f64 = 0.02;

/// Elasticsearch throughput per VM (ops/s): 6.49 ms/op.
pub const ELASTIC_OPS_PER_VM: f64 = 154.08;
/// Elasticsearch VM cost ($/month, e2-medium).
pub const ELASTIC_VM_COST: f64 = 26.46;
/// Elasticsearch index size factor (better compression).
pub const ELASTIC_STORAGE_FACTOR: f64 = 0.3316;
/// Local persistent-disk price ($/GB/month).
pub const LOCAL_DISK_PRICE: f64 = 0.2;

/// Monthly cost of the decoupled Airphant deployment: VMs scale with the
/// time-weighted workload; the index sits in cloud storage.
pub fn airphant_monthly_cost(p: &CostParams) -> f64 {
    let avg_ops = p.peak_ops * p.peak_fraction + p.trough_ops * (1.0 - p.peak_fraction);
    let vm_cost = AIRPHANT_VM_COST * (avg_ops / AIRPHANT_OPS_PER_VM);
    let storage_cost = AIRPHANT_STORAGE_FACTOR * p.data_gb * CLOUD_STORAGE_PRICE;
    vm_cost + storage_cost
}

/// Monthly cost of the coupled Elasticsearch deployment: provisioned for
/// the peak at all times; the index sits on local disks.
pub fn elastic_monthly_cost(p: &CostParams) -> f64 {
    let vm_cost = ELASTIC_VM_COST * (p.peak_ops / ELASTIC_OPS_PER_VM);
    let storage_cost = ELASTIC_STORAGE_FACTOR * p.data_gb * LOCAL_DISK_PRICE;
    vm_cost + storage_cost
}

/// The relative cost `C_E / C_A` Figure 9 plots.
pub fn relative_cost(p: &CostParams) -> f64 {
    elastic_monthly_cost(p) / airphant_monthly_cost(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure9_params(tau: f64, data_tb: f64) -> CostParams {
        // Figure 9 fixes A = 154.08 op/s and a = A/20 = 7.704 op/s.
        CostParams {
            peak_ops: 154.08,
            trough_ops: 154.08 / 20.0,
            peak_fraction: tau,
            data_gb: data_tb * 1024.0,
        }
    }

    #[test]
    fn asymptotic_ratio_matches_paper() {
        // "we would asymptotically save lim_{N→∞} C_E/C_A ≈ 3.29 times".
        let p = figure9_params(0.5, 1e9);
        let r = relative_cost(&p);
        assert!((r - 3.29).abs() < 0.01, "asymptotic ratio {r}");
    }

    #[test]
    fn vm_only_ratio_matches_paper() {
        // "focusing on the VM cost, Airphant's cost would be A/(13.48a)
        // times over Elasticsearch's" — i.e. C_E/C_A = 13.48·a/A on VMs.
        let a = 10.0;
        let big_a = 134.8; // A = 13.48 a → VM costs equal
        let p = CostParams {
            peak_ops: big_a,
            trough_ops: a,
            peak_fraction: 0.0, // all trough for Airphant; ES still at peak
            data_gb: 0.0,
        };
        let ratio = relative_cost(&p);
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "VM break-even should sit at A = 13.48a, got ratio {ratio}"
        );
    }

    #[test]
    fn airphant_wins_when_peaky_and_large() {
        // Figure 9 trend: larger data and smaller τ favour Airphant.
        let peaky_large = relative_cost(&figure9_params(0.05, 16.0));
        let flat_small = relative_cost(&figure9_params(0.95, 1.0));
        assert!(peaky_large > 1.0, "peaky+large should favour Airphant");
        assert!(flat_small < peaky_large);
    }

    #[test]
    fn ratio_monotone_in_tau_and_size() {
        let mut prev = f64::INFINITY;
        for tau in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let r = relative_cost(&figure9_params(tau, 4.0));
            assert!(r <= prev, "C_E/C_A should fall as τ grows");
            prev = r;
        }
        let mut prev = 0.0;
        for tb in [0.25, 1.0, 4.0, 16.0] {
            let r = relative_cost(&figure9_params(0.3, tb));
            assert!(r >= prev, "C_E/C_A should rise with data size");
            prev = r;
        }
    }

    #[test]
    fn all_peak_all_trough_limits() {
        // τ = 1: both provision for A; ES is cheaper per op, so with no
        // storage advantage it wins on VM cost alone.
        let p = CostParams {
            peak_ops: 154.08,
            trough_ops: 7.704,
            peak_fraction: 1.0,
            data_gb: 0.0,
        };
        assert!(relative_cost(&p) < 1.0);
    }
}
