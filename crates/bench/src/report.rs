//! Experiment output: aligned text tables on stdout plus JSON rows under
//! `bench_results/` so EXPERIMENTS.md tables can be regenerated, and the
//! machine-readable [`Headline`] metric each bench publishes for the CI
//! perf gate (`bench_results/BENCH_<name>.json`, compared against the
//! committed `bench_results/baseline/` by the `perf_gate` binary).

use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};

/// A named experiment report.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<Value>,
}

impl Report {
    /// Start a report for experiment `name` (e.g. `"fig06_end_to_end"`).
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Report {
            name: name.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Append a display row (stringified cells) and its JSON form.
    pub fn push(&mut self, cells: Vec<String>, json: Value) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self.json_rows.push(json);
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned table to a string.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table and persist JSON under `bench_results/<name>.json`.
    /// Returns the JSON path.
    pub fn finish(&self) -> PathBuf {
        println!("== {} ==", self.name);
        println!("{}", self.to_table());
        let dir = PathBuf::from("bench_results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.json", self.name));
        let payload = serde_json::json!({
            "experiment": self.name,
            "rows": self.json_rows,
        });
        if let Err(e) = fs::write(&path, serde_json::to_vec_pretty(&payload).unwrap()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// One bench binary's headline metric in the shared machine-readable
/// schema `{bench, metric, value, unit, config}` — written to
/// `bench_results/BENCH_<bench>.json` so CI can diff runs against the
/// committed baseline without parsing human-oriented tables.
///
/// The regression direction is derived from `unit`: `qps` (and other
/// rate units, plus `hit_pct` cache-hit percentages) regress when the
/// value *drops*; everything else — `ms`, `bytes`, ratios — regresses
/// when the value *grows*.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Bench name, e.g. `"throughput"` (also the file-name stem).
    pub bench: String,
    /// Metric name, e.g. `"qps_sim"` or `"compacted_wait_ms"`.
    pub metric: String,
    /// The recorded value.
    pub value: f64,
    /// Unit label, e.g. `"qps"`, `"ms"`, `"x"`.
    pub unit: String,
    /// The configuration the value was recorded under (free-form JSON:
    /// engine, workers, corpus size, …) so baselines are comparable.
    pub config: Value,
}

impl Headline {
    /// Assemble a headline record.
    pub fn new(bench: &str, metric: &str, value: f64, unit: &str, config: Value) -> Self {
        Headline {
            bench: bench.to_owned(),
            metric: metric.to_owned(),
            value,
            unit: unit.to_owned(),
            config,
        }
    }

    /// The schema'd JSON form.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "config": self.config,
        })
    }

    /// Parse the schema'd JSON form, rejecting missing/mistyped fields.
    pub fn from_json(value: &Value) -> Result<Headline, String> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| format!("headline JSON missing field {name:?}"))
        };
        let text = |name: &str| {
            field(name)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("headline field {name:?} is not a string"))
        };
        Ok(Headline {
            bench: text("bench")?,
            metric: text("metric")?,
            value: field("value")?
                .as_f64()
                .ok_or_else(|| "headline field \"value\" is not a number".to_owned())?,
            unit: text("unit")?,
            config: field("config")?.clone(),
        })
    }

    /// Whether a larger value is an improvement for this unit.
    pub fn higher_is_better(&self) -> bool {
        matches!(
            self.unit.as_str(),
            "qps" | "ops" | "hits" | "mbps" | "hit_pct"
        )
    }

    /// Compare this (current) headline against `baseline` with the
    /// given relative `tolerance` (e.g. `0.25` for the CI gate's 25%).
    /// Mismatched metrics or a degenerate baseline are reported as
    /// regressions — a gate that silently skips is no gate. A move past
    /// tolerance in the *good* direction is an [`Comparison::Improvement`]
    /// — the baseline is stale, and a stale baseline lets the next real
    /// regression hide inside the widened band, so the gate fails for it
    /// too, just with its own verdict and re-baseline instruction.
    pub fn compare_vs(&self, baseline: &Headline, tolerance: f64) -> Comparison {
        if self.metric != baseline.metric || self.unit != baseline.unit {
            return Comparison::Regression(format!(
                "metric changed: baseline records {} [{}], current records {} [{}] \
                 (re-record the baseline)",
                baseline.metric, baseline.unit, self.metric, self.unit
            ));
        }
        if !baseline.value.is_finite() || baseline.value <= 0.0 {
            return Comparison::Regression(format!(
                "baseline value {} is not comparable (re-record the baseline)",
                baseline.value
            ));
        }
        let ratio = self.value / baseline.value;
        let moved = |verb: &str, pct: f64| {
            format!(
                "{} {verb} {:.1}%: {:.3} -> {:.3} {}",
                self.metric, pct, baseline.value, self.value, self.unit
            )
        };
        if self.higher_is_better() {
            if ratio < 1.0 - tolerance {
                return Comparison::Regression(moved("dropped", (1.0 - ratio) * 100.0));
            }
            if ratio > 1.0 + tolerance {
                return Comparison::Improvement(moved("rose", (ratio - 1.0) * 100.0));
            }
        } else {
            if ratio > 1.0 + tolerance {
                return Comparison::Regression(moved("grew", (ratio - 1.0) * 100.0));
            }
            if ratio < 1.0 - tolerance {
                return Comparison::Improvement(moved("shrank", (1.0 - ratio) * 100.0));
            }
        }
        Comparison::Within
    }

    /// [`Headline::compare_vs`] narrowed to regressions only: `Some(why)`
    /// on a regression, `None` on within-tolerance *or* improvement.
    pub fn regression_vs(&self, baseline: &Headline, tolerance: f64) -> Option<String> {
        match self.compare_vs(baseline, tolerance) {
            Comparison::Regression(why) => Some(why),
            _ => None,
        }
    }

    /// The file this headline lives in under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("BENCH_{}.json", self.bench))
    }

    /// Write the headline to `bench_results/BENCH_<bench>.json` (also
    /// echoed to stdout so logs show the recorded gate value). Returns
    /// the path.
    pub fn write(&self) -> PathBuf {
        let dir = PathBuf::from("bench_results");
        let _ = fs::create_dir_all(&dir);
        let path = self.path_in(&dir);
        println!(
            "headline: {} {} = {:.3} {} -> {}",
            self.bench,
            self.metric,
            self.value,
            self.unit,
            path.display()
        );
        if let Err(e) = fs::write(&path, serde_json::to_vec_pretty(&self.to_json()).unwrap()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// Verdict of one current-vs-baseline headline comparison
/// ([`Headline::compare_vs`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison {
    /// Within tolerance: the gate passes this headline.
    Within,
    /// Worse than the baseline by more than the tolerance.
    Regression(String),
    /// *Better* than the baseline by more than the tolerance: the
    /// committed baseline is stale and must be re-recorded (the gate
    /// fails, with a distinct verdict).
    Improvement(String),
}

impl Comparison {
    /// Machine-readable status label (for `perf_gate.json` / CI logs).
    pub fn status(&self) -> &'static str {
        match self {
            Comparison::Within => "ok",
            Comparison::Regression(_) => "regression",
            Comparison::Improvement(_) => "improvement",
        }
    }
}

/// Format a millisecond value the way the figures label them.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let mut r = Report::new("test", &["corpus", "ms"]);
        r.push(
            vec!["HDFS".into(), "42.0".into()],
            serde_json::json!({"corpus": "HDFS", "ms": 42.0}),
        );
        r.push(
            vec!["Windows-long".into(), "7.0".into()],
            serde_json::json!({"corpus": "Windows-long", "ms": 7.0}),
        );
        let t = r.to_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("corpus"));
        assert!(lines[2].ends_with("42.0"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("test", &["a", "b"]);
        r.push(vec!["x".into()], serde_json::json!({}));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(1234.4), "1234");
        assert_eq!(ms(42.34), "42.3");
        assert_eq!(ms(0.1234), "0.123");
    }

    fn qps(v: f64) -> Headline {
        Headline::new("throughput", "qps_sim", v, "qps", serde_json::json!({}))
    }

    fn wait(v: f64) -> Headline {
        Headline::new("compaction", "wait_ms", v, "ms", serde_json::json!({}))
    }

    #[test]
    fn headline_json_roundtrip() {
        let h = Headline::new(
            "throughput",
            "qps_sim",
            65.6,
            "qps",
            serde_json::json!({"workers": 8}),
        );
        let decoded = Headline::from_json(&h.to_json()).unwrap();
        assert_eq!(decoded, h);
        assert!(Headline::from_json(&serde_json::json!({"bench": "x"})).is_err());
        assert!(Headline::from_json(&serde_json::json!({
            "bench": "x", "metric": "m", "value": "not-a-number",
            "unit": "ms", "config": serde_json::json!({}),
        }))
        .is_err());
    }

    #[test]
    fn regression_direction_follows_unit() {
        // qps: higher is better — a drop past tolerance regresses.
        assert!(qps(100.0).regression_vs(&qps(100.0), 0.25).is_none());
        assert!(qps(80.0).regression_vs(&qps(100.0), 0.25).is_none());
        assert!(qps(74.0).regression_vs(&qps(100.0), 0.25).is_some());
        assert!(qps(200.0).regression_vs(&qps(100.0), 0.25).is_none());
        // ms: lower is better — growth past tolerance regresses.
        assert!(wait(100.0).regression_vs(&wait(100.0), 0.25).is_none());
        assert!(wait(120.0).regression_vs(&wait(100.0), 0.25).is_none());
        assert!(wait(126.0).regression_vs(&wait(100.0), 0.25).is_some());
        assert!(wait(50.0).regression_vs(&wait(100.0), 0.25).is_none());
    }

    #[test]
    fn improvements_past_tolerance_get_their_own_verdict() {
        // >25% moves in the GOOD direction are stale-baseline signals:
        // distinct from both "ok" and "regression".
        assert_eq!(
            qps(130.0).compare_vs(&qps(100.0), 0.25).status(),
            "improvement"
        );
        assert_eq!(
            wait(70.0).compare_vs(&wait(100.0), 0.25).status(),
            "improvement"
        );
        // …but within tolerance they are plain passes.
        assert_eq!(qps(120.0).compare_vs(&qps(100.0), 0.25).status(), "ok");
        assert_eq!(wait(80.0).compare_vs(&wait(100.0), 0.25).status(), "ok");
        // And the bad directions still classify as regressions.
        assert_eq!(
            qps(70.0).compare_vs(&qps(100.0), 0.25).status(),
            "regression"
        );
        assert_eq!(
            wait(130.0).compare_vs(&wait(100.0), 0.25).status(),
            "regression"
        );
        // `regression_vs` narrows: improvements are NOT regressions.
        assert!(qps(130.0).regression_vs(&qps(100.0), 0.25).is_none());
        match wait(70.0).compare_vs(&wait(100.0), 0.25) {
            Comparison::Improvement(why) => assert!(why.contains("shrank"), "{why}"),
            other => panic!("expected improvement, got {other:?}"),
        }
    }

    #[test]
    fn regression_rejects_incomparable_baselines() {
        // A renamed metric or a degenerate baseline must fail loudly,
        // not silently pass the gate.
        assert!(qps(100.0).regression_vs(&wait(100.0), 0.25).is_some());
        assert!(qps(100.0).regression_vs(&qps(0.0), 0.25).is_some());
        assert!(qps(100.0).regression_vs(&qps(f64::NAN), 0.25).is_some());
    }
}
