//! Experiment output: aligned text tables on stdout plus JSON rows under
//! `bench_results/` so EXPERIMENTS.md tables can be regenerated.

use serde_json::Value;
use std::fs;
use std::path::PathBuf;

/// A named experiment report.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<Value>,
}

impl Report {
    /// Start a report for experiment `name` (e.g. `"fig06_end_to_end"`).
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Report {
            name: name.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Append a display row (stringified cells) and its JSON form.
    pub fn push(&mut self, cells: Vec<String>, json: Value) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self.json_rows.push(json);
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned table to a string.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table and persist JSON under `bench_results/<name>.json`.
    /// Returns the JSON path.
    pub fn finish(&self) -> PathBuf {
        println!("== {} ==", self.name);
        println!("{}", self.to_table());
        let dir = PathBuf::from("bench_results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.json", self.name));
        let payload = serde_json::json!({
            "experiment": self.name,
            "rows": self.json_rows,
        });
        if let Err(e) = fs::write(&path, serde_json::to_vec_pretty(&payload).unwrap()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// Format a millisecond value the way the figures label them.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let mut r = Report::new("test", &["corpus", "ms"]);
        r.push(
            vec!["HDFS".into(), "42.0".into()],
            serde_json::json!({"corpus": "HDFS", "ms": 42.0}),
        );
        r.push(
            vec!["Windows-long".into(), "7.0".into()],
            serde_json::json!({"corpus": "Windows-long", "ms": 7.0}),
        );
        let t = r.to_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("corpus"));
        assert!(lines[2].ends_with("42.0"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("test", &["a", "b"]);
        r.push(vec!["x".into()], serde_json::json!({}));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(1234.4), "1234");
        assert_eq!(ms(42.34), "42.3");
        assert_eq!(ms(0.1234), "0.123");
    }
}
