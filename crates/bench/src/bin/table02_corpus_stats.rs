//! Table II: corpus statistics — #documents, #terms, #words, and the
//! Hoeffding coefficient σ_X — for all seven (scaled) corpora.

use airphant_bench::{build_dataset, paper_datasets, Report};
use airphant_storage::InMemoryStore;
use iou_sketch::analysis::CorpusShape;
use iou_sketch::hoeffding::sigma_x;
use std::sync::Arc;

fn main() {
    let mut report = Report::new(
        "table02_corpus_stats",
        &["corpus", "#documents", "#terms", "#words", "sigma_x"],
    );
    for spec in paper_datasets() {
        let store = Arc::new(InMemoryStore::new());
        let corpus = build_dataset(spec, store);
        let p = corpus.profile().expect("profile");
        let shape = CorpusShape::uniform(p.doc_distinct_sizes.iter().copied(), p.n_terms);
        let s = sigma_x(&shape);
        report.push(
            vec![
                spec.name(),
                p.n_docs.to_string(),
                p.n_terms.to_string(),
                p.n_words.to_string(),
                format!("{s:.2}"),
            ],
            serde_json::json!({
                "corpus": spec.name(),
                "documents": p.n_docs,
                "terms": p.n_terms,
                "words": p.n_words,
                "sigma_x": s,
            }),
        );
    }
    report.finish();
    println!("paper (full scale): diag σ=1.00, unif σ=1.00, zipf σ=1.41, Cranfield σ=0.51,");
    println!("HDFS σ=1.77, Windows σ=11.73, Spark σ=2.53. Corpora here are scaled down;");
    println!("σ_X ≈ sqrt(n/|W|) so the ordering (Windows ≫ Spark > HDFS > Cranfield) must hold.");
}
