//! Segment-decode micro-bench over the query hot path: for each query,
//! L fetched superposts are intersected. The **eager** arm is the pre-v2
//! pipeline — [`decode_superpost`] materializes a `PostingsList` per
//! superpost, then [`PostingsList::intersect_all`] merges them. The
//! **view** arm is the v2 pipeline — [`SuperpostView::parse`] validates
//! each blob once, then [`intersect_views`] walks the varint/delta
//! streams in lockstep straight out of the borrowed bytes; only the
//! result is allocated. Criterion-free: fixed work, wall-clock
//! best-of-K, plus a counting global allocator that *pins* the
//! zero-copy claim — the view arm must allocate a small fraction of
//! what the eager arm does, or the bench exits non-zero.
//!
//! Headline: `BENCH_decode.json`, v2 pipeline throughput in MB/s (unit
//! `mbps`, higher is better), diffed by `perf_gate` in CI.

use airphant_bench::{Headline, Report};
use bytes::Bytes;
use iou_sketch::encoding::{decode_superpost, encode_superpost};
use iou_sketch::{intersect_views, Posting, PostingsList, SuperpostView};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation (and growth) — calls *and* bytes — so
/// the zero-copy assertion below is a hard number, not a code-review
/// claim. Bytes are the claim that matters: the eager arm allocates
/// proportionally to the *input* postings it materializes, the view arm
/// only proportionally to the (much smaller) intersection result.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_counters() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// The workload: QUERIES independent lookups, each intersecting LAYERS
/// superposts of POSTINGS_PER postings — the paper's L-layer probe.
const QUERIES: usize = 96;
const LAYERS: usize = 3;
const POSTINGS_PER: usize = 2_000;
/// Timed passes; the headline is the best (least-interfered) pass.
const PASSES: usize = 5;

/// Deterministic sorted-unique postings, no RNG needed: each layer
/// strides by a different co-prime step so the L lists overlap on a
/// fraction of their postings (a realistic intersection selectivity)
/// and the deltas exercise multi-byte varints.
fn synthetic_superpost(query: usize, layer: usize) -> Bytes {
    let stride = [3u64, 4, 5][layer % 3];
    let postings: Vec<Posting> = (0..POSTINGS_PER)
        .map(|j| {
            Posting::new(
                (query % 7) as u32,
                (j as u64) * stride * 137 + (query as u64),
                40 + (j % 100) as u32,
            )
        })
        .collect();
    encode_superpost(&PostingsList::from_postings(postings))
}

/// Eager arm: the pre-v2 read path — decode every superpost into an
/// owned `PostingsList`, then intersect the materialized lists.
fn eager_pass(queries: &[Vec<Bytes>]) -> u64 {
    let mut checksum = 0u64;
    for blobs in queries {
        let lists: Vec<PostingsList> = blobs
            .iter()
            .map(|b| decode_superpost(b).expect("well-formed superpost"))
            .collect();
        let refs: Vec<&PostingsList> = lists.iter().collect();
        let out = PostingsList::intersect_all(&refs);
        for p in out.iter() {
            checksum = checksum.wrapping_add(p.offset ^ u64::from(p.len));
        }
    }
    checksum
}

/// View arm: the v2 read path — validate each blob once, then intersect
/// the varint streams in lockstep; only the result list is allocated.
fn view_pass(queries: &[Vec<Bytes>]) -> u64 {
    let mut checksum = 0u64;
    for blobs in queries {
        let views: Vec<SuperpostView> = blobs
            .iter()
            .map(|b| SuperpostView::parse(b.clone()).expect("well-formed superpost"))
            .collect();
        let refs: Vec<&SuperpostView> = views.iter().collect();
        let out = intersect_views(&refs);
        for p in out.iter() {
            checksum = checksum.wrapping_add(p.offset ^ u64::from(p.len));
        }
    }
    checksum
}

fn main() {
    let queries: Vec<Vec<Bytes>> = (0..QUERIES)
        .map(|q| (0..LAYERS).map(|l| synthetic_superpost(q, l)).collect())
        .collect();
    let total_bytes: usize = queries
        .iter()
        .flat_map(|blobs| blobs.iter().map(Bytes::len))
        .sum();

    // Correctness first: both pipelines must produce the same postings.
    assert_eq!(
        eager_pass(&queries),
        view_pass(&queries),
        "view and eager pipelines disagree on intersection results"
    );

    // Allocation pin: one measured pass each, counting the delta. The
    // eager arm materializes every input superpost (bytes proportional
    // to LAYERS full postings lists per query); the view arm allocates
    // the intersection result plus constant per-query scaffolding.
    let (c0, b0) = alloc_counters();
    black_box(eager_pass(&queries));
    let (c1, b1) = alloc_counters();
    black_box(view_pass(&queries));
    let (c2, b2) = alloc_counters();
    let (eager_allocs, eager_bytes) = (c1 - c0, b1 - b0);
    let (view_allocs, view_bytes) = (c2 - c1, b2 - b1);

    // Throughput over the fetched superpost bytes: best of PASSES to
    // shed scheduler noise.
    let mut eager_mbps = 0f64;
    let mut view_mbps = 0f64;
    for _ in 0..PASSES {
        let t = Instant::now();
        black_box(eager_pass(&queries));
        eager_mbps = eager_mbps.max(total_bytes as f64 / t.elapsed().as_secs_f64() / 1e6);
        let t = Instant::now();
        black_box(view_pass(&queries));
        view_mbps = view_mbps.max(total_bytes as f64 / t.elapsed().as_secs_f64() / 1e6);
    }

    let mut report = Report::new(
        "decode_throughput",
        &[
            "path",
            "mb_per_s",
            "allocs_per_pass",
            "alloc_bytes_per_pass",
        ],
    );
    for (label, mbps, allocs, bytes) in [
        ("v1-eager-decode", eager_mbps, eager_allocs, eager_bytes),
        ("v2-zero-copy-view", view_mbps, view_allocs, view_bytes),
    ] {
        report.push(
            vec![
                label.to_string(),
                format!("{mbps:.1}"),
                allocs.to_string(),
                bytes.to_string(),
            ],
            serde_json::json!({
                "path": label,
                "mb_per_s": mbps,
                "allocs_per_pass": allocs,
                "alloc_bytes_per_pass": bytes,
            }),
        );
    }
    report.finish();

    Headline::new(
        "decode",
        "v2_view_mb_per_s",
        view_mbps,
        "mbps",
        serde_json::json!({
            "queries": QUERIES,
            "layers": LAYERS,
            "postings_per_superpost": POSTINGS_PER,
            "total_bytes": total_bytes,
            "passes": PASSES,
        }),
    )
    .write();

    // The zero-copy pin: per pass the eager arm heap-allocates bytes
    // proportional to the postings it materializes (QUERIES×LAYERS full
    // lists); the view arm allocates only results and constant
    // scaffolding, and must not quietly regress into copying
    // input-sized sub-slices again.
    println!(
        "allocations/pass: eager {eager_allocs} calls / {eager_bytes} B, \
         view {view_allocs} calls / {view_bytes} B \
         (over {QUERIES} queries x {LAYERS} layers, {total_bytes} input bytes)"
    );
    if view_bytes * 4 > eager_bytes {
        eprintln!(
            "FAIL: view arm heap-allocates {view_bytes} B vs eager {eager_bytes} B — \
             the zero-copy read path is copying input-sized buffers again"
        );
        std::process::exit(1);
    }
    println!(
        "decode+intersect throughput: eager {eager_mbps:.1} MB/s, view {view_mbps:.1} MB/s \
         — the view arm validates once and intersects in place (its second varint walk \
         replaces the eager arm's materialized lists); only results are allocated"
    );
}
