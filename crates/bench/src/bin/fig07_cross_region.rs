//! Figure 7: end-to-end search latencies across regions (Windows corpus):
//! Iowa (us-central1-c, co-located), London (europe-west2-c), Singapore
//! (asia-southeast1-b).

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, search_latencies, summarize, BenchEnv, DatasetKind, Report};
use airphant_storage::{LatencyModel, RegionProfile};

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Windows)
        .unwrap();
    let config = AirphantConfig::default()
        .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    let workload = env.workload(30, 7);

    let mut report = Report::new(
        "fig07_cross_region",
        &["region", "engine", "mean_ms", "p99_ms"],
    );
    for region in [
        RegionProfile::same_region(),
        RegionProfile::london(),
        RegionProfile::singapore(),
    ] {
        let model = LatencyModel::gcs_like().with_region(region.clone());
        for (kind, engine) in env.open_all(&model, 42) {
            let stats = summarize(&search_latencies(engine.as_ref(), &workload, Some(10)));
            report.push(
                vec![
                    region.name.clone(),
                    kind.label().to_string(),
                    ms(stats.mean_ms),
                    ms(stats.p99_ms),
                ],
                serde_json::json!({
                    "region": region.name,
                    "engine": kind.label(),
                    "mean_ms": stats.mean_ms,
                    "p99_ms": stats.p99_ms,
                }),
            );
        }
        eprintln!("done: {}", region.name);
    }
    report.finish();
    println!("paper shape: every engine slows with distance; AIRPHANT's slowdown is the");
    println!("mildest (paper: 2.4×/6.5× vs Lucene's 3.3×/8.2× and SQLite's 3.2×/8.0×).");
}
