//! Compound-query round-trip structure: the unified planner's headline
//! property is that an AND/OR of many terms pays the *same* one-batch
//! lookup wait as a single keyword.
//!
//! For AIRPHANT the `terms = 4` lookup wait should stay ≈ the `terms = 1`
//! wait (same single batch, slightly more transfer). The SQLite-like
//! B-tree overlaps its independent per-term descents too (a fair client
//! model), but each descent is still a chain of dependent page reads —
//! so its lookup wait stays a multiple of AIRPHANT's one-round-trip
//! wait at every term count.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, SearchEngine, Searcher};
use airphant_baselines::{BTreeBuilder, BTreeEngine};
use airphant_bench::report::ms;
use airphant_bench::{Headline, Report};
use airphant_corpus::{zipf, QueryWorkload, SyntheticSpec};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, PhaseKind, SimulatedCloudStore};
use std::sync::Arc;

/// Wait attributed to the index-lookup phases (superposts / traversals),
/// isolating the round-trip structure from document-fetch noise.
fn lookup_wait_ms(trace: &airphant_storage::QueryTrace) -> f64 {
    trace
        .phases()
        .iter()
        .filter(|p| matches!(p.kind, PhaseKind::Lookup | PhaseKind::Postings))
        .map(|p| p.wait.as_millis_f64())
        .sum()
}

fn main() {
    let inner = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs: 4_000,
        n_vocab: 2_000,
        words_per_doc: 8,
    };
    let corpus = zipf(spec, inner.clone(), "corpora/zipf", 7);
    let profile = corpus.profile().expect("profiling");
    Builder::new(
        AirphantConfig::default()
            .with_total_bins(1_000)
            .with_seed(1),
    )
    .build_with_profile(&corpus, "idx/airphant", profile.clone())
    .expect("airphant build");
    BTreeBuilder::build(&corpus, "idx/btree").expect("btree build");

    let cloud = |seed: u64| -> Arc<dyn ObjectStore> {
        Arc::new(SimulatedCloudStore::new(
            inner.clone(),
            LatencyModel::gcs_like(),
            seed,
        ))
    };
    let engines: Vec<Box<dyn SearchEngine>> = vec![
        Box::new(Searcher::open(cloud(1), "idx/airphant").expect("open airphant")),
        Box::new(BTreeEngine::open(cloud(2), "idx/btree").expect("open btree")),
    ];

    let words: Vec<String> = QueryWorkload::uniform(&profile, 120, 9).words().to_vec();
    let mut report = Report::new(
        "compound_query",
        &[
            "engine",
            "terms",
            "lookup_wait_ms",
            "total_ms",
            "round_trips",
        ],
    );
    let opts = QueryOptions::new();
    let mut single_wait = std::collections::HashMap::new();
    for engine in &engines {
        for terms in [1usize, 2, 3, 4] {
            let groups: Vec<&[String]> = words.chunks(terms).filter(|c| c.len() == terms).collect();
            let mut wait = 0.0;
            let mut total = 0.0;
            let mut trips = 0u64;
            for group in &groups {
                let query = Query::all(group.iter().map(Query::term));
                let r = engine.execute(&query, &opts).expect("execute");
                wait += lookup_wait_ms(&r.trace);
                total += r.latency().as_millis_f64();
                trips += r.trace.round_trips();
            }
            let n = groups.len() as f64;
            let (wait, total, trips) = (wait / n, total / n, trips as f64 / n);
            if terms == 1 {
                single_wait.insert(engine.name(), wait);
            }
            report.push(
                vec![
                    engine.name().to_string(),
                    terms.to_string(),
                    ms(wait),
                    ms(total),
                    format!("{trips:.1}"),
                ],
                serde_json::json!({
                    "engine": engine.name(),
                    "terms": terms,
                    "lookup_wait_ms": wait,
                    "total_ms": total,
                    "round_trips": trips,
                }),
            );
            if terms == 4 {
                let base = single_wait[engine.name()];
                println!(
                    "{}: 4-term lookup wait is {:.2}x the single-term wait",
                    engine.name(),
                    wait / base
                );
                if engine.name() == "AIRPHANT" {
                    Headline::new(
                        "compound_query",
                        "four_term_wait_ratio",
                        wait / base,
                        "x",
                        serde_json::json!({
                            "engine": engine.name(),
                            "terms": 4,
                            "n_docs": 4_000,
                            "queries": 120,
                        }),
                    )
                    .write();
                }
            }
        }
    }
    report.finish();
    println!(
        "paper shape: AIRPHANT's compound-query wait stays flat (one superpost \
         batch for the whole AST); the B-tree's stays a multiple of it (each \
         term's descent is a chain of dependent page reads)."
    );
}
