//! Figure 6: end-to-end search latencies of all five engines on all seven
//! datasets (within-region). Solid bars = means, error bars = p99.

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{
    build_all_engines, mean_round_trips, paper_datasets, search_latencies, summarize, Report,
};
use airphant_storage::LatencyModel;

fn main() {
    let queries = n_queries();
    let mut report = Report::new(
        "fig06_end_to_end",
        &["corpus", "engine", "mean_ms", "p99_ms", "round_trips"],
    );
    for spec in paper_datasets() {
        let config = AirphantConfig::default()
            .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
            .with_seed(1);
        let (env, engines) = build_all_engines(spec, &config, &LatencyModel::gcs_like(), 42);
        let workload = env.workload(queries, 7);
        for (kind, engine) in &engines {
            let stats = summarize(&search_latencies(engine.as_ref(), &workload, Some(10)));
            let trips = mean_round_trips(engine.as_ref(), &workload, Some(10));
            report.push(
                vec![
                    spec.name(),
                    kind.label().to_string(),
                    ms(stats.mean_ms),
                    ms(stats.p99_ms),
                    format!("{trips:.1}"),
                ],
                serde_json::json!({
                    "corpus": spec.name(),
                    "engine": kind.label(),
                    "mean_ms": stats.mean_ms,
                    "p99_ms": stats.p99_ms,
                    "round_trips": trips,
                    "queries": stats.n,
                }),
            );
        }
        eprintln!("done: {}", spec.name());
    }
    report.finish();
    println!("paper shape: AIRPHANT < SQLite < Lucene on most datasets; Elasticsearch and");
    println!("HashTable are the slow outliers (mount cost / false-positive downloads);");
    println!("on Cranfield (tiny corpus) Lucene can win, as in the paper.");
}

fn n_queries() -> usize {
    std::env::var("BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}
