//! Figure 8: search latency breakdown into wait time (blocked on first
//! bytes) and download time (transfer), on the Spark dataset — the
//! reproduction of the paper's tcpdump analysis.

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{build_all_engines, paper_datasets, wait_download_pairs, DatasetKind, Report};
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Spark)
        .unwrap();
    let config = AirphantConfig::default()
        .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
        .with_seed(1);
    let (env, engines) = build_all_engines(spec, &config, &LatencyModel::gcs_like(), 42);
    // The paper samples 32 queries per method.
    let workload = env.workload(32, 7);

    let mut report = Report::new(
        "fig08_breakdown",
        &["engine", "wait_ms", "download_ms", "total_ms"],
    );
    for (kind, engine) in &engines {
        let pairs = wait_download_pairs(engine.as_ref(), &workload, Some(10));
        let n = pairs.len() as f64;
        let wait: f64 = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let download: f64 = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        report.push(
            vec![
                kind.label().to_string(),
                ms(wait),
                ms(download),
                ms(wait + download),
            ],
            serde_json::json!({
                "engine": kind.label(),
                "wait_ms": wait,
                "download_ms": download,
            }),
        );
    }
    report.finish();
    println!("paper shape: Lucene/SQLite are wait-heavy (dependent reads); HashTable is");
    println!("download-heavy (false-positive documents); AIRPHANT minimizes both at once");
    println!("(paper: 220 ms waiting + 117 ms downloading on Spark).");
}
