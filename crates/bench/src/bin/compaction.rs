//! Segment-lifecycle benchmark: live-segment count vs lookup wait, and
//! how compaction restores near-single-segment latency.
//!
//! An append-only segmented index trades lookup latency for freshness:
//! every live segment adds its superpost pointers to the one concurrent
//! lookup batch, so the batch's wait (max time-to-first-byte over more
//! parallel streams) and download (shared-bandwidth transfer of more
//! superposts) both creep up with the segment count. This binary:
//!
//! 1. appends `SEGMENTS` daily batches to a [`SegmentManager`] over a
//!    simulated gcs-like link, measuring mean lookup wait at 1, 2, 4, 8,
//!    and 16 live segments;
//! 2. runs the [`Compactor`] down to a single segment and re-measures —
//!    the acceptance bar is compacted wait within **1.25×** of a fresh
//!    single-segment build of the same documents;
//! 3. drives a [`QueryServer`] through the whole lifecycle — queries are
//!    answered before, during (old generation), and after a
//!    [`QueryServer::refresh`] without a restart.
//!
//! Exit code is non-zero if the acceptance bar fails, so CI can smoke
//! this binary.

use airphant::{
    AirphantConfig, Builder, CompactionPolicy, Compactor, Query, QueryOptions, QueryServer,
    SearchEngine, Searcher, SegmentManager, ServerConfig,
};
use airphant_bench::report::ms;
use airphant_bench::{Headline, Report};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use bytes::Bytes;
use std::sync::Arc;

const SEGMENTS: usize = 16;
const DOCS_PER_SEGMENT: usize = 64;
const MEASURE_QUERIES: usize = 48;

fn segment_lines(day: usize) -> Vec<String> {
    (0..DOCS_PER_SEGMENT)
        .map(|i| {
            format!(
                "shared day{day} host{} event{} code{}",
                i % 7,
                (day * DOCS_PER_SEGMENT + i) % 97,
                i % 13,
            )
        })
        .collect()
}

fn put_corpus(store: &Arc<dyn ObjectStore>, blob: &str, lines: &[String]) -> Corpus {
    store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
    Corpus::new(
        store.clone(),
        vec![blob.to_owned()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

fn config() -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(512)
        .with_common_fraction(0.0)
        .with_seed(5)
}

/// Mean lookup wait (ms) of the standing query mix against `engine`.
fn mean_lookup_wait(engine: &dyn SearchEngine) -> f64 {
    let mut total = 0.0;
    for q in 0..MEASURE_QUERIES {
        let query = Query::all([Query::term("shared"), Query::term(format!("host{}", q % 7))]);
        let r = engine
            .execute(&query, &QueryOptions::new())
            .expect("measure query");
        total += r.trace.wait().as_millis_f64();
    }
    total / MEASURE_QUERIES as f64
}

fn main() {
    let store: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        77,
    ));
    let mgr = SegmentManager::new(store.clone(), "idx");
    let mut report = Report::new(
        "compaction",
        &["phase", "live_segments", "wait_ms", "vs_single"],
    );

    // --- Phase 1: append-only growth. ---
    let mut grown_wait_ms = 0.0;
    for day in 0..SEGMENTS {
        let corpus = put_corpus(&store, &format!("c/day{day}"), &segment_lines(day));
        mgr.append(&corpus, &config()).unwrap();
        let live = day + 1;
        if live.is_power_of_two() {
            let searcher = mgr.open().unwrap();
            let wait = mean_lookup_wait(&searcher);
            grown_wait_ms = wait;
            report.push(
                vec![
                    "append".into(),
                    live.to_string(),
                    ms(wait),
                    String::from("-"),
                ],
                serde_json::json!({
                    "phase": "append", "live_segments": live, "wait_ms": wait,
                }),
            );
        }
    }

    // --- Fresh single-segment baseline over the same documents. ---
    let fresh_store: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        77,
    ));
    let all_lines: Vec<String> = (0..SEGMENTS).flat_map(segment_lines).collect();
    let fresh_corpus = put_corpus(&fresh_store, "c/all", &all_lines);
    Builder::new(config())
        .build(&fresh_corpus, "fresh")
        .unwrap();
    let fresh = Searcher::open(fresh_store, "fresh").unwrap();
    let fresh_wait = mean_lookup_wait(&fresh);
    report.push(
        vec![
            "fresh-build".into(),
            "1".into(),
            ms(fresh_wait),
            "1.00x".into(),
        ],
        serde_json::json!({
            "phase": "fresh-build", "live_segments": 1, "wait_ms": fresh_wait,
        }),
    );

    // --- Phase 2: the lifecycle through a live QueryServer. ---
    // Serve before, during, and after the compaction + refresh; the
    // server never restarts.
    let server = QueryServer::start(
        Arc::new(mgr.open().unwrap()),
        ServerConfig::new().with_workers(4).with_queue_capacity(32),
    );
    let probe = |label: &str| {
        let r = server
            .execute(&Query::term("shared"), &QueryOptions::new().top_k(10))
            .unwrap_or_else(|e| panic!("probe {label}: {e}"));
        assert_eq!(r.hits.len(), 10, "probe {label}");
    };
    probe("before-compaction");

    // Deferred GC: publish the compacted generation first, keep the old
    // segments' blobs until the server has refreshed and drained.
    let compactor = Compactor::new(&mgr, config()).with_policy(
        CompactionPolicy::new()
            .with_max_live_segments(1)
            .with_merge_factor(SEGMENTS)
            .with_deferred_gc(true),
    );
    let compaction = compactor.compact().unwrap();
    probe("during (old generation still serving)");
    server.refresh(Arc::new(mgr.open().unwrap()));
    probe("after-refresh");
    let reclaimed = compactor.gc_deferred(&compaction).unwrap();
    probe("after-gc");
    let server_stats = server.shutdown();
    assert_eq!(server_stats.refreshes, 1);
    assert_eq!(server_stats.failed, 0);

    let compacted = mgr.open().unwrap();
    assert_eq!(compacted.segment_count(), 1);
    let compacted_wait = mean_lookup_wait(&compacted);
    let ratio = compacted_wait / fresh_wait;
    report.push(
        vec![
            "compacted".into(),
            "1".into(),
            ms(compacted_wait),
            format!("{ratio:.2}x"),
        ],
        serde_json::json!({
            "phase": "compacted", "live_segments": 1, "wait_ms": compacted_wait,
            "vs_single_segment": ratio,
            "merged_segments": compaction.merged_segment_ids.len(),
            "blobs_reclaimed": reclaimed,
            "generation": compaction.generation,
        }),
    );
    report.finish();

    // The perf-gate headline: mean lookup wait after compacting back to
    // one segment. Unit ms — the gate fails if it *grows* >25% vs the
    // committed baseline.
    Headline::new(
        "compaction",
        "compacted_wait_ms",
        compacted_wait,
        "ms",
        serde_json::json!({
            "segments_appended": SEGMENTS,
            "docs_per_segment": DOCS_PER_SEGMENT,
            "measure_queries": MEASURE_QUERIES,
            "vs_single_segment": ratio,
        }),
    )
    .write();

    println!(
        "appended {SEGMENTS} segments: lookup wait grew {} -> {} ms; compaction \
         ({reclaimed} blobs GC'd after refresh, generation {}) restored {} ms = \
         {ratio:.2}x a fresh single-segment build",
        ms(fresh_wait),
        ms(grown_wait_ms),
        compaction.generation,
        ms(compacted_wait),
    );
    println!("query server stayed up across the whole lifecycle (no restart, 1 refresh).");

    let ok = ratio <= 1.25;
    println!(
        "acceptance (compacted wait within 1.25x of fresh single-segment): {}",
        if ok { "OK" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}
