//! Figure 14 (Appendix B-A): term-index lookup latencies — SQLite's cached
//! B-tree traversal vs Airphant's single-round-trip MHT lookup, across all
//! seven datasets.

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{lookup_latencies, paper_datasets, summarize, BenchEnv, EngineKind, Report};
use airphant_storage::LatencyModel;

fn main() {
    let mut report = Report::new(
        "fig14_lookup_latency",
        &["corpus", "engine", "mean_ms", "p99_ms"],
    );
    for spec in paper_datasets() {
        let config = AirphantConfig::default()
            .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
            .with_seed(1);
        let env = BenchEnv::prepare(spec, &config);
        let workload = env.workload(40, 7);
        for kind in [EngineKind::Sqlite, EngineKind::Airphant] {
            let view = env.cloud_view(LatencyModel::gcs_like(), 42);
            let engine = env.open_engine(kind, view);
            let stats = summarize(&lookup_latencies(engine.as_ref(), &workload));
            report.push(
                vec![
                    spec.name(),
                    kind.label().to_string(),
                    ms(stats.mean_ms),
                    ms(stats.p99_ms),
                ],
                serde_json::json!({
                    "corpus": spec.name(),
                    "engine": kind.label(),
                    "mean_ms": stats.mean_ms,
                    "p99_ms": stats.p99_ms,
                }),
            );
        }
        eprintln!("done: {}", spec.name());
    }
    report.finish();
    println!("paper shape: AIRPHANT up to 2.79× faster on average and 2.81× at p99 —");
    println!("one concurrent batch beats the dependent page descent on every corpus.");
}
