//! Figures 12 and 13 (Appendix A): cross-region end-to-end latencies for
//! *all seven* datasets from London (Fig 12) and Singapore (Fig 13).

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, search_latencies, summarize, BenchEnv, Report};
use airphant_storage::{LatencyModel, RegionProfile};

fn main() {
    let queries = 20usize;
    let mut report = Report::new(
        "fig12_13_cross_region_all",
        &["region", "corpus", "engine", "mean_ms", "p99_ms"],
    );
    for spec in paper_datasets() {
        let config = AirphantConfig::default()
            .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
            .with_seed(1);
        let env = BenchEnv::prepare(spec, &config);
        let workload = env.workload(queries, 7);
        for region in [RegionProfile::london(), RegionProfile::singapore()] {
            let model = LatencyModel::gcs_like().with_region(region.clone());
            for (kind, engine) in env.open_all(&model, 42) {
                let stats = summarize(&search_latencies(engine.as_ref(), &workload, Some(10)));
                report.push(
                    vec![
                        region.name.clone(),
                        spec.name(),
                        kind.label().to_string(),
                        ms(stats.mean_ms),
                        ms(stats.p99_ms),
                    ],
                    serde_json::json!({
                        "region": region.name,
                        "corpus": spec.name(),
                        "engine": kind.label(),
                        "mean_ms": stats.mean_ms,
                        "p99_ms": stats.p99_ms,
                    }),
                );
            }
        }
        eprintln!("done: {}", spec.name());
    }
    report.finish();
    println!("paper shape: same ordering as Figure 6, shifted up by the region multiplier;");
    println!("AIRPHANT keeps the mildest degradation across all corpora.");
}
