//! Scatter-gather scaling: shard count vs lookup wait, tail latency,
//! and served throughput on the simulated cloud.
//!
//! Hash-partitioning the corpus across N independent segmented indexes
//! multiplies build and compaction parallelism, but it only helps
//! serving if the scatter-gather fan-out *overlaps*: an N-shard query
//! must still pay one dependent postings round trip and one document
//! round trip (max over shards), not N of each. This binary:
//!
//! 1. builds the same zipf corpus into sharded layouts of 1, 2, 4, and
//!    8 shards over a simulated gcs-like link;
//! 2. measures mean lookup wait and p99 end-to-end latency of a
//!    frequency-weighted workload at each shard count, asserting the
//!    fan-out invariant `round_trips == 2` and that the 8-shard wait
//!    stays within **1.5×** the single-shard wait;
//! 3. smoke-checks equivalence: every shard count returns the same
//!    result set for the probe queries;
//! 4. serves the workload through a [`QueryServer`] (8 workers) and
//!    reports closed-loop simulated QPS per shard count.
//!
//! Exit code is non-zero if the overlap bar or the equivalence check
//! fails, so CI can smoke this binary. The headline metric
//! (`BENCH_sharded.json`) is the 8-shard mean lookup wait.

use airphant::{
    AirphantConfig, Query, QueryOptions, QueryServer, SearchHit, ServerConfig, ShardRouter,
};
use airphant_bench::report::ms;
use airphant_bench::{Headline, Report};
use airphant_corpus::{zipf, QueryWorkload, SyntheticSpec};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const SERVE_WORKERS: usize = 8;

fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len))
        .collect();
    v.sort();
    v
}

fn main() {
    let n_docs: u64 = if std::env::var("BENCH_LARGE").is_ok() {
        20_000
    } else {
        2_000
    };
    let measure_queries: usize = if std::env::var("BENCH_LARGE").is_ok() {
        256
    } else {
        64
    };
    let store: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        31,
    ));
    let spec = SyntheticSpec {
        n_docs,
        n_vocab: (n_docs / 2).clamp(500, 10_000),
        words_per_doc: 8,
    };
    let corpus = zipf(spec, store.clone(), "corpora/zipf", 13);
    let profile = corpus.profile().expect("profiling");
    let bins = (n_docs / 5).clamp(400, 40_000) as usize;
    let config = AirphantConfig::default().with_total_bins(bins).with_seed(2);
    let workload = QueryWorkload::frequency_weighted(&profile, measure_queries, 5);

    let mut report = Report::new(
        "sharded",
        &["shards", "wait_ms", "p99_ms", "qps_sim", "round_trips"],
    );

    let mut wait_by_shards: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<Vec<Vec<(String, u64, u32)>>> = None;
    let mut ok = true;

    for &shards in &SHARD_SWEEP {
        let router = ShardRouter::create(store.clone(), format!("idx{shards}"), shards)
            .expect("create layout");
        router.append(&corpus, &config).expect("sharded append");
        let searcher = router.open_searcher().expect("open sharded searcher");

        // --- Direct measurement: wait, tail, round-trip invariant. ---
        let mut wait_sum = 0.0;
        let mut totals: Vec<f64> = Vec::with_capacity(workload.len());
        let mut trips_max = 0u64;
        let mut results: Vec<Vec<(String, u64, u32)>> = Vec::with_capacity(workload.len());
        for word in workload.iter() {
            let r = searcher
                .execute(&Query::term(word), &QueryOptions::new())
                .expect("measure query");
            wait_sum += r.trace.wait().as_millis_f64();
            totals.push(r.trace.total().as_millis_f64());
            trips_max = trips_max.max(r.trace.round_trips());
            results.push(canonical(&r.hits));
        }
        let wait_mean = wait_sum / workload.len() as f64;
        totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = totals[((totals.len() as f64 * 0.99).ceil() as usize).clamp(1, totals.len()) - 1];
        if trips_max > 2 {
            eprintln!("round-trip violation at {shards} shards: {trips_max} > 2");
            ok = false;
        }
        match &reference {
            None => reference = Some(results),
            Some(expected) => {
                if expected != &results {
                    eprintln!("equivalence violation: {shards} shards disagree with 1 shard");
                    ok = false;
                }
            }
        }

        // --- Served throughput: closed loop through the worker pool. ---
        let server = QueryServer::start(
            Arc::new(router.open_searcher().expect("open for serving")),
            ServerConfig::new()
                .with_workers(SERVE_WORKERS)
                .with_queue_capacity(SERVE_WORKERS * 4),
        );
        let tickets: Vec<_> = workload
            .iter()
            .map(|word| {
                server
                    .submit(Query::term(word), QueryOptions::new().top_k(10))
                    .expect("server alive")
            })
            .collect();
        for t in tickets {
            t.wait().expect("served query");
        }
        let stats = server.shutdown();

        wait_by_shards.push((shards, wait_mean));
        report.push(
            vec![
                shards.to_string(),
                ms(wait_mean),
                ms(p99),
                format!("{:.1}", stats.qps_sim),
                trips_max.to_string(),
            ],
            serde_json::json!({
                "shards": shards,
                "wait_mean_ms": wait_mean,
                "latency_p99_ms": p99,
                "qps_sim": stats.qps_sim,
                "round_trips_max": trips_max,
                "workers": SERVE_WORKERS,
            }),
        );
        eprintln!("done: {shards} shard(s)");
    }
    report.finish();

    let (_, single_wait) = wait_by_shards[0];
    let (_, eight_wait) = *wait_by_shards.last().expect("sweep non-empty");
    Headline::new(
        "sharded",
        "eight_shard_wait_ms",
        eight_wait,
        "ms",
        serde_json::json!({
            "shards": 8,
            "n_docs": n_docs,
            "queries": measure_queries,
            "vs_single_shard": eight_wait / single_wait,
        }),
    )
    .write();

    let overlap_ok = eight_wait <= 1.5 * single_wait;
    println!(
        "scatter-gather overlap (8-shard wait {} within 1.5x single-shard {}): {}",
        ms(eight_wait),
        ms(single_wait),
        if overlap_ok { "OK" } else { "FAIL" }
    );
    println!(
        "paper shape: hash-partitioned fan-out preserves the single-batch property — \
         every shard count pays one postings + one document round trip, waits overlap."
    );
    if !(ok && overlap_ok) {
        std::process::exit(1);
    }
}
