//! Figure 15 (Appendix B-B): scalability with corpus size — average search
//! latency and index storage usage for SQLite, Lucene, and Airphant on
//! diag/unif/zipf as N grows.

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{
    search_latencies, summarize, BenchEnv, DatasetKind, DatasetSpec, EngineKind, Report,
};
use airphant_storage::LatencyModel;

fn main() {
    let sizes: Vec<u64> = if std::env::var("BENCH_LARGE").is_ok() {
        vec![1_000, 10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    let mut report = Report::new(
        "fig15_scalability",
        &["family", "N", "engine", "search_ms", "index_bytes"],
    );
    for family in [DatasetKind::Diag, DatasetKind::Unif, DatasetKind::Zipf] {
        for &n in &sizes {
            let spec = DatasetSpec {
                kind: family,
                n_docs: n,
                seed: 17,
            };
            // Scale the bin budget with vocabulary, as the paper's fixed
            // B=1e5 does relative to its corpus sizes.
            let bins = (n / 5).clamp(500, 50_000) as usize;
            let config = AirphantConfig::default().with_total_bins(bins).with_seed(1);
            let env = BenchEnv::prepare(spec, &config);
            let workload = env.workload(20, 7);
            for kind in [EngineKind::Sqlite, EngineKind::Lucene, EngineKind::Airphant] {
                let view = env.cloud_view(LatencyModel::gcs_like(), 42);
                let engine = env.open_engine(kind, view);
                let stats = summarize(&search_latencies(engine.as_ref(), &workload, Some(10)));
                report.push(
                    vec![
                        format!("{family:?}").to_lowercase(),
                        n.to_string(),
                        kind.label().to_string(),
                        ms(stats.mean_ms),
                        engine.index_bytes().to_string(),
                    ],
                    serde_json::json!({
                        "family": format!("{family:?}").to_lowercase(),
                        "n_docs": n,
                        "engine": kind.label(),
                        "search_mean_ms": stats.mean_ms,
                        "index_bytes": engine.index_bytes(),
                    }),
                );
            }
            eprintln!("done: {family:?} N={n}");
        }
    }
    report.finish();
    println!("paper shape: baselines win at small N (their caches cover the index); as N");
    println!("grows AIRPHANT's flat single-batch latency takes over; AIRPHANT's storage is");
    println!("larger (paper: up to 2.85× Lucene) but all curves share the same log-slope.");
    println!("(set BENCH_LARGE=1 for the N=10^6 point)");
}
