//! Cross-region serving: one replica of the index in each of the
//! paper's three regions (Figure 12's latency spread), served through a
//! [`ReplicatedStore`] that reads nearest-first. The nearest region's
//! link carries a Pareto long tail, so its stragglers gate the p99.
//!
//! The same open-loop workload runs twice: without hedging, and with
//! *region-aware* hedging — the async core re-dispatches a straggling
//! batch to the next-nearest region ([`ReplicatedStore::hedge_target`]).
//! Region-aware hedging must cut the p99 sojourn, route every hedge
//! through the region backend, and return byte-identical results; the
//! hedged p99 is published as the `BENCH_cross_region.json` headline.
//! Exit-coded.

use airphant::{
    AirphantConfig, AsyncQueryServer, AsyncServerConfig, AsyncTicket, HedgeConfig, Query,
    QueryOptions, Searcher, ServerStats, StagedEngine, SubmitSpec,
};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, BenchEnv, DatasetKind, Headline, Report};
use airphant_storage::{
    LatencyModel, ObjectStore, RegionProfile, ReplicatedStore, SimDuration, SimulatedCloudStore,
};
use std::sync::Arc;

const HEDGE_PERCENTILE: f64 = 0.95;
const HEDGE_BUDGET: f64 = 0.10;
const CLIENTS: usize = 1_200;
const OFFERED_QPS: f64 = 120.0;
/// The nearest region's long tail: 10% of requests draw a Pareto(1.1)
/// first-byte multiplier — the cross-region straggler under test.
const TAIL: (f64, f64) = (0.10, 1.1);

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Hdfs)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);

    let prefix = "idx/crossreg";
    let config = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_manual_layers(2)
        .with_seed(1);
    let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
    let corpus = airphant_corpus::Corpus::new(
        raw.clone(),
        raw.list("corpora/").expect("list"),
        Arc::new(airphant_corpus::LineSplitter),
        Arc::new(airphant_corpus::WhitespaceTokenizer),
    );
    airphant::Builder::new(config)
        .build_with_profile(&corpus, prefix, env.profile().clone())
        .expect("build");

    let workload = env.workload(60, 11);
    let words: Vec<&str> = workload.iter().collect();

    let run = |region_hedge: bool| -> (ServerStats, Vec<String>, Arc<ReplicatedStore>) {
        // Identical region stacks in both runs (same seeds, same tail
        // phase): the nearest region straggles, the farther two are
        // clean but pay the cross-region first-byte multiplier.
        let regions: Vec<(RegionProfile, Arc<dyn ObjectStore>)> = RegionProfile::paper_spread()
            .into_iter()
            .enumerate()
            .map(|(i, profile)| {
                let model = if i == 0 {
                    LatencyModel::builder().long_tail(TAIL.0, TAIL.1).build()
                } else {
                    LatencyModel::gcs_like()
                }
                .with_region(profile.clone());
                let store: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
                    env.raw_store(),
                    model,
                    42 + i as u64,
                ));
                (profile, store)
            })
            .collect();
        let replicated = Arc::new(ReplicatedStore::new(regions));
        let searcher = Arc::new(
            Searcher::open(replicated.clone() as Arc<dyn ObjectStore>, prefix).expect("open"),
        );
        let mut config = AsyncServerConfig::new().with_executor_threads(0);
        if region_hedge {
            config = config.with_hedge(HedgeConfig {
                percentile: HEDGE_PERCENTILE,
                min_samples: 64,
                budget_fraction: HEDGE_BUDGET,
            });
        }
        let mut server = AsyncQueryServer::start(searcher as Arc<dyn StagedEngine>, config);
        if region_hedge {
            server = server.with_region_backend(replicated.clone());
        }
        let tickets: Vec<AsyncTicket> = (0..CLIENTS)
            .map(|i| {
                server.submit_at(
                    Query::term(words[i % words.len()]),
                    QueryOptions::new().top_k(10),
                    SubmitSpec::new().at(SimDuration::from_secs_f64(i as f64 / OFFERED_QPS)),
                )
            })
            .collect();
        server.drain();
        let results: Vec<String> = tickets
            .into_iter()
            .map(|t| {
                let r = t.wait().result.expect("served");
                let mut hits: Vec<String> = r
                    .hits
                    .iter()
                    .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
                    .collect();
                hits.sort();
                hits.join("|")
            })
            .collect();
        (server.shutdown(), results, replicated)
    };

    let (plain, plain_results, _) = run(false);
    let (hedged, hedged_results, replicated) = run(true);
    let replication = hedged.replication.clone().expect("region backend attached");

    let mut report = Report::new(
        "cross_region",
        &[
            "policy",
            "sojourn_p50",
            "sojourn_p99",
            "hedges",
            "region_hedges",
            "hedge_wins",
        ],
    );
    for (policy, stats) in [("no-hedge", &plain), ("region-hedge-p95", &hedged)] {
        report.push(
            vec![
                policy.to_string(),
                ms(stats.latency_p50_ms),
                ms(stats.latency_p99_ms),
                stats.hedges.to_string(),
                stats.region_hedges.to_string(),
                stats.hedge_wins.to_string(),
            ],
            serde_json::json!({
                "policy": policy,
                "sojourn_p50_ms": stats.latency_p50_ms,
                "sojourn_p99_ms": stats.latency_p99_ms,
                "hedges": stats.hedges,
                "region_hedges": stats.region_hedges,
                "hedge_wins": stats.hedge_wins,
                "completed": stats.completed,
            }),
        );
    }
    report.finish();
    println!(
        "regions {:?}: reads by region {:?}, {} rerouted, {} demotions",
        replicated.regions(),
        replication.reads_by_region,
        replication.rerouted_reads,
        replication.demotions,
    );

    let mut ok = true;
    if hedged.latency_p99_ms >= plain.latency_p99_ms {
        eprintln!(
            "FAIL: region-aware hedging did not cut the cross-region p99 \
             ({:.1}ms vs {:.1}ms unhedged)",
            hedged.latency_p99_ms, plain.latency_p99_ms
        );
        ok = false;
    }
    if hedged.hedges == 0 || hedged.hedge_wins == 0 {
        eprintln!(
            "FAIL: the straggling nearest region must trigger winning hedges \
             ({} hedges, {} wins)",
            hedged.hedges, hedged.hedge_wins
        );
        ok = false;
    }
    if hedged.region_hedges != hedged.hedges {
        eprintln!(
            "FAIL: {} of {} hedges bypassed the region backend",
            hedged.hedges - hedged.region_hedges,
            hedged.hedges
        );
        ok = false;
    }
    if replication.demotions != 0 {
        eprintln!(
            "FAIL: {} demotions on a healthy stack — stragglers must not demote",
            replication.demotions
        );
        ok = false;
    }
    if plain_results != hedged_results {
        eprintln!("FAIL: region-hedged results diverged from the unhedged run");
        ok = false;
    }
    println!(
        "cross-region check: p99 {:.1}ms -> {:.1}ms ({:+.1}%), {} region hedges ({} won) \
         over {} queries: {}",
        plain.latency_p99_ms,
        hedged.latency_p99_ms,
        (hedged.latency_p99_ms / plain.latency_p99_ms - 1.0) * 100.0,
        hedged.region_hedges,
        hedged.hedge_wins,
        hedged.completed,
        if ok { "OK" } else { "FAIL" },
    );

    Headline::new(
        "cross_region",
        "region_hedged_p99_sojourn_ms",
        hedged.latency_p99_ms,
        "ms",
        serde_json::json!({
            "clients": CLIENTS,
            "offered_qps": OFFERED_QPS,
            "regions": replicated.regions(),
            "tail_probability": TAIL.0,
            "tail_alpha": TAIL.1,
            "hedge_percentile": HEDGE_PERCENTILE,
            "hedge_budget_fraction": HEDGE_BUDGET,
            "unhedged_p99_sojourn_ms": plain.latency_p99_ms,
        }),
    )
    .write();
    if !ok {
        std::process::exit(1);
    }
}
