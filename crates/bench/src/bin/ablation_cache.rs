//! Ablation (Appendix B-B follow-up): the "more aggressive caching policy"
//! the paper names as future work for small corpora. Repeats a skewed
//! workload against the same index with and without a client-side LRU
//! ([`CachedStore`]) in front of the simulated cloud.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, summarize, BenchEnv, DatasetKind, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::{CachedStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Cranfield)
        .unwrap();
    let config = AirphantConfig::default()
        .with_total_bins(100_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    // Zipf-like query skew: frequency-weighted words repeat often, so a
    // cache can actually help.
    let workload = QueryWorkload::frequency_weighted(env.profile(), 120, 7);

    let mut report = Report::new(
        "ablation_cache",
        &[
            "config",
            "mean_ms",
            "p99_ms",
            "cache_hits",
            "bytes_from_cloud",
        ],
    );
    for (label, budget) in [("no-cache", 0usize), ("lru-4MB", 4 << 20)] {
        let cloud = SimulatedCloudStore::new(env.raw_store(), LatencyModel::gcs_like(), 42);
        let cached = Arc::new(CachedStore::new(cloud, budget));
        let store: Arc<dyn ObjectStore> = cached.clone();
        let searcher = Searcher::open(store, "idx/airphant").expect("open");
        let lat: Vec<f64> = workload
            .iter()
            .map(|w| {
                searcher
                    .search(w, Some(10))
                    .expect("search")
                    .latency()
                    .as_millis_f64()
            })
            .collect();
        let stats = summarize(&lat);
        let (hits, _misses) = cached.hit_stats();
        let cloud_bytes = cached.inner().stats().bytes_read;
        report.push(
            vec![
                label.to_string(),
                ms(stats.mean_ms),
                ms(stats.p99_ms),
                hits.to_string(),
                cloud_bytes.to_string(),
            ],
            serde_json::json!({
                "config": label,
                "mean_ms": stats.mean_ms,
                "p99_ms": stats.p99_ms,
                "cache_hits": hits,
                "bytes_from_cloud": cloud_bytes,
            }),
        );
        eprintln!("done: {label}");
    }
    report.finish();
    println!("expected: under a skewed (frequency-weighted) workload the LRU absorbs the");
    println!("repeated superpost and document reads, cutting mean latency and cloud bytes —");
    println!("the small-corpus caching advantage the paper's baselines enjoyed (Fig 15).");
}
