//! Ablation (Appendix B-B follow-up): the "more aggressive caching policy"
//! the paper names as future work for small corpora — here, *layer-aware*
//! admission. A serverless-style workload re-opens the index between short
//! query bursts, so the segment header (Index-class: MHT, pointers, string
//! table) keeps competing with superpost/document traffic (Data-class) for
//! the same small cache. A flat LRU lets the data scan evict the header
//! between bursts; the tiered [`CachedStore`] pins Index-class ranges under
//! their own budget, so every reopen after the first hits in cache.
//!
//! Both arms get the **same total budget** (64 KiB); the tiered arm just
//! splits it. Headline: `BENCH_cache_tiers.json`, the tiered arm's overall
//! hit rate (unit `hit_pct`, higher is better), gated in CI. The bench
//! also exits non-zero if tiering ever does *worse* than the flat LRU.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, summarize, BenchEnv, DatasetKind, Headline, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::{CachedStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

/// Equal total cache budget for both arms.
const TOTAL_BUDGET: usize = 64 << 10;
/// Tiered split: the index slice must hold the whole header (asserted
/// below against the actual blob), the rest serves Data-class traffic.
const INDEX_BUDGET: usize = 24 << 10;
/// Reopen-heavy workload: bursts of queries with a fresh `Searcher`
/// (fresh header fetch) before each burst.
const ROUNDS: usize = 30;
const QUERIES_PER_ROUND: usize = 8;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Cranfield)
        .unwrap();
    // Small-corpus regime: 1k bins keeps the header a realistic couple of
    // dozen KiB — big enough to matter inside a 64 KiB cache, small
    // enough to fit the tiered index slice.
    let config = AirphantConfig::default()
        .with_total_bins(1_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    let header_len = env
        .raw_store()
        .size_of("idx/airphant/header")
        .expect("header blob exists");
    assert!(
        (header_len as usize) <= INDEX_BUDGET,
        "header ({header_len} B) must fit the index slice ({INDEX_BUDGET} B) — \
         shrink total_bins or grow the slice"
    );

    // Scan-like workload (the paper's uniform query prior): each burst
    // asks for *different* words, so Data-class traffic has almost no
    // re-reference — extra data budget buys a flat LRU nothing, while
    // every miss keeps pushing the header out. This is exactly the
    // access pattern layer-aware admission exists for; a skewed (Zipf)
    // workload rewards any LRU and hides the difference.
    let workload = QueryWorkload::uniform(env.profile(), ROUNDS * QUERIES_PER_ROUND, 7);
    let words: Vec<&str> = workload.iter().collect();

    let mut report = Report::new(
        "ablation_cache",
        &[
            "config",
            "mean_ms",
            "p99_ms",
            "hit_rate_pct",
            "index_hits",
            "index_misses",
            "bytes_from_cloud",
        ],
    );
    let mut rates = Vec::new();
    for (label, data_budget, index_budget) in [
        ("flat-lru-64KiB", TOTAL_BUDGET, 0usize),
        ("tiered-64KiB", TOTAL_BUDGET - INDEX_BUDGET, INDEX_BUDGET),
    ] {
        let cloud = SimulatedCloudStore::new(env.raw_store(), LatencyModel::gcs_like(), 42);
        let cached = Arc::new(CachedStore::with_budgets(cloud, data_budget, index_budget));
        let store: Arc<dyn ObjectStore> = cached.clone();
        let mut lat = Vec::with_capacity(words.len());
        for round in 0..ROUNDS {
            // Serverless cold start: a fresh searcher re-fetches the
            // header (Index-class) through whatever survived in cache.
            let searcher = Searcher::open(store.clone(), "idx/airphant").expect("open");
            for w in &words[round * QUERIES_PER_ROUND..(round + 1) * QUERIES_PER_ROUND] {
                lat.push(
                    searcher
                        .search(w, Some(10))
                        .expect("search")
                        .latency()
                        .as_millis_f64(),
                );
            }
        }
        let stats = summarize(&lat);
        let cache = cached.stats();
        let rate_pct = cache.hit_rate() * 100.0;
        let cloud_bytes = cached.inner().stats().bytes_read;
        rates.push((label, rate_pct));
        report.push(
            vec![
                label.to_string(),
                ms(stats.mean_ms),
                ms(stats.p99_ms),
                format!("{rate_pct:.1}"),
                cache.index_hits.to_string(),
                cache.index_misses.to_string(),
                cloud_bytes.to_string(),
            ],
            serde_json::json!({
                "config": label,
                "mean_ms": stats.mean_ms,
                "p99_ms": stats.p99_ms,
                "hit_rate_pct": rate_pct,
                "index_hits": cache.index_hits,
                "index_misses": cache.index_misses,
                "data_hits": cache.data_hits,
                "data_misses": cache.data_misses,
                "bytes_from_cloud": cloud_bytes,
            }),
        );
        eprintln!("done: {label}");
    }
    report.finish();

    let (_, flat_rate) = rates[0];
    let (_, tiered_rate) = rates[1];
    Headline::new(
        "cache_tiers",
        "tiered_hit_rate_pct",
        tiered_rate,
        "hit_pct",
        serde_json::json!({
            "total_budget_bytes": TOTAL_BUDGET,
            "index_budget_bytes": INDEX_BUDGET,
            "rounds": ROUNDS,
            "queries_per_round": QUERIES_PER_ROUND,
            "header_bytes": header_len,
            "dataset": "Cranfield",
            "total_bins": 1_000,
        }),
    )
    .write();

    println!(
        "hit rate at equal {TOTAL_BUDGET}-byte budget: flat {flat_rate:.1}%, \
         tiered {tiered_rate:.1}% — the tiered cache pins the header under its \
         own slice, so reopen-heavy workloads stop refetching Index-class bytes"
    );
    if tiered_rate + 1e-9 < flat_rate {
        eprintln!(
            "FAIL: tiered admission ({tiered_rate:.2}%) fell below the flat LRU \
             ({flat_rate:.2}%) at the same total budget"
        );
        std::process::exit(1);
    }
}
