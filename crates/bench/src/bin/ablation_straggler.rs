//! Ablation (§IV-G): built-in replication against the Long Tail Problem.
//! Build with L* + extra layers, then compare waiting for all layers vs
//! only the fastest L*, under a heavy-tailed latency model.
//!
//! Second act: the *serving-side* answer to the same problem — hedged
//! duplicate requests in the async core. Under the deterministic
//! [`SpikeProfile`] (1-in-100 batches straggle at 10× first byte), the
//! same workload runs with and without hedging; hedging must cut the
//! p99 sojourn while staying within its dispatch budget, and the hedged
//! p99 is published as the `BENCH_straggler.json` headline. Exit-coded.

use airphant::{
    AirphantConfig, AsyncQueryServer, AsyncServerConfig, AsyncTicket, HedgeConfig, Query,
    QueryOptions, Searcher, StagedEngine, SubmitSpec,
};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, summarize, BenchEnv, DatasetKind, Headline, Report};
use airphant_storage::{LatencyModel, ObjectStore, SimDuration, SimulatedCloudStore, SpikeProfile};
use std::sync::Arc;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Hdfs)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);
    let workload = env.workload(40, 7);

    // Build with 2 needed layers + 3 spares.
    let prefix = "idx/straggler";
    let config = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_manual_layers(2)
        .with_overprovision(3)
        .with_seed(1);
    let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
    let corpus = airphant_corpus::Corpus::new(
        raw.clone(),
        raw.list("corpora/").expect("list"),
        std::sync::Arc::new(airphant_corpus::LineSplitter),
        std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
    );
    airphant::Builder::new(config)
        .build_with_profile(&corpus, prefix, env.profile().clone())
        .expect("build");

    // Heavy-tailed network: 10% of requests hit a Pareto(1.1) tail.
    let tail_model = LatencyModel::builder().long_tail(0.10, 1.1).build();
    let view = env.cloud_view(tail_model, 42);
    let searcher = Searcher::open(view, prefix).expect("open");

    let mut report = Report::new(
        "ablation_straggler",
        &["policy", "search_mean_ms", "search_p99_ms", "fp/query"],
    );
    for (policy, wait_for) in [("wait-all-5", 5usize), ("fastest-2-of-5", 2)] {
        let mut lat = Vec::new();
        let mut fp = 0usize;
        for w in workload.iter() {
            let r = searcher
                .search_waiting_for(w, wait_for, Some(10))
                .expect("search");
            lat.push(r.latency().as_millis_f64());
            fp += r.false_positives_removed;
        }
        let stats = summarize(&lat);
        report.push(
            vec![
                policy.to_string(),
                ms(stats.mean_ms),
                ms(stats.p99_ms),
                format!("{:.2}", fp as f64 / workload.len() as f64),
            ],
            serde_json::json!({
                "policy": policy,
                "search_mean_ms": stats.mean_ms,
                "search_p99_ms": stats.p99_ms,
                "fp_per_query": fp as f64 / workload.len() as f64,
            }),
        );
    }
    report.finish();
    println!("expected: waiting for the fastest 2 of 5 cuts the p99 dramatically (the tail");
    println!("no longer gates the batch) at the cost of slightly more false positives.");

    // ---- Act 2: hedged requests in the async serving core ------------
    let ok = hedging_ablation(&env);
    if !ok {
        std::process::exit(1);
    }
}

/// The spike profile under test: 1 in 100 dispatches pays 10× its first
/// byte — the "p99 ≈ 10× median" cloud straggler.
const SPIKE: (u64, f64) = (100, 10.0);
const HEDGE_PERCENTILE: f64 = 0.95;
const HEDGE_BUDGET: f64 = 0.10;
const CLIENTS: usize = 1_500;
const OFFERED_QPS: f64 = 120.0;

/// Run the spiked open-loop workload with hedging on/off; returns true
/// when every check holds.
fn hedging_ablation(env: &BenchEnv) -> bool {
    let workload = env.workload(60, 11);
    let words: Vec<&str> = workload.iter().collect();
    let run = |hedge: bool| {
        // Both runs replay the same primary latency stream (same seed,
        // same spike phase); the hedge path re-dispatches against an
        // independently seeded replica of the same bytes.
        let spikes = SpikeProfile::new(SPIKE.0, SPIKE.1);
        let primary = Arc::new(
            SimulatedCloudStore::new(env.raw_store(), LatencyModel::gcs_like(), 42)
                .with_spikes(spikes),
        );
        let searcher = Arc::new(
            Searcher::open(primary.clone() as Arc<dyn ObjectStore>, "idx/straggler").expect("open"),
        );
        let mut config = AsyncServerConfig::new().with_executor_threads(0);
        if hedge {
            config = config.with_hedge(HedgeConfig {
                percentile: HEDGE_PERCENTILE,
                min_samples: 64,
                budget_fraction: HEDGE_BUDGET,
            });
        }
        let mut server = AsyncQueryServer::start(searcher as Arc<dyn StagedEngine>, config);
        if hedge {
            let replica = Arc::new(
                SimulatedCloudStore::new(env.raw_store(), LatencyModel::gcs_like(), 1042)
                    .with_spikes(spikes),
            );
            server = server.with_hedge_backend(replica as Arc<dyn ObjectStore>);
        }
        let tickets: Vec<AsyncTicket> = (0..CLIENTS)
            .map(|i| {
                server.submit_at(
                    Query::term(words[i % words.len()]),
                    QueryOptions::new().top_k(10),
                    SubmitSpec::new().at(SimDuration::from_secs_f64(i as f64 / OFFERED_QPS)),
                )
            })
            .collect();
        server.drain();
        let results: Vec<String> = tickets
            .into_iter()
            .map(|t| {
                let r = t.wait().result.expect("served");
                let mut hits: Vec<String> = r
                    .hits
                    .iter()
                    .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
                    .collect();
                hits.sort();
                hits.join("|")
            })
            .collect();
        (server.shutdown(), results)
    };

    let (plain, plain_results) = run(false);
    let (hedged, hedged_results) = run(true);

    let mut report = Report::new(
        "ablation_straggler_hedging",
        &[
            "policy",
            "sojourn_p50",
            "sojourn_p99",
            "hedges",
            "hedge_wins",
        ],
    );
    for (policy, stats) in [("no-hedge", &plain), ("hedge-p95", &hedged)] {
        report.push(
            vec![
                policy.to_string(),
                ms(stats.latency_p50_ms),
                ms(stats.latency_p99_ms),
                stats.hedges.to_string(),
                stats.hedge_wins.to_string(),
            ],
            serde_json::json!({
                "policy": policy,
                "sojourn_p50_ms": stats.latency_p50_ms,
                "sojourn_p99_ms": stats.latency_p99_ms,
                "hedges": stats.hedges,
                "hedge_wins": stats.hedge_wins,
                "completed": stats.completed,
            }),
        );
    }
    report.finish();

    let mut ok = true;
    if hedged.latency_p99_ms >= plain.latency_p99_ms {
        eprintln!(
            "FAIL: hedging did not cut the p99 sojourn ({:.1}ms vs {:.1}ms unhedged)",
            hedged.latency_p99_ms, plain.latency_p99_ms
        );
        ok = false;
    }
    // Budget: the denominator counts every dispatch, hedges included
    // (≤ 2 primary batches per query + the hedges themselves).
    let dispatched = 2 * hedged.completed + hedged.hedges;
    if (hedged.hedges as f64) > HEDGE_BUDGET * dispatched as f64 + 1.0 {
        eprintln!(
            "FAIL: {} hedges exceed the {:.0}% budget of {} dispatches",
            hedged.hedges,
            HEDGE_BUDGET * 100.0,
            dispatched
        );
        ok = false;
    }
    if hedged.hedge_wins == 0 {
        eprintln!("FAIL: no hedge ever won — the spike profile is not straggling");
        ok = false;
    }
    if plain_results != hedged_results {
        eprintln!("FAIL: hedged results diverged from the unhedged run");
        ok = false;
    }
    println!(
        "hedging check: p99 {:.1}ms -> {:.1}ms ({:+.1}%), {} hedges ({} won) over {} queries: {}",
        plain.latency_p99_ms,
        hedged.latency_p99_ms,
        (hedged.latency_p99_ms / plain.latency_p99_ms - 1.0) * 100.0,
        hedged.hedges,
        hedged.hedge_wins,
        hedged.completed,
        if ok { "OK" } else { "FAIL" },
    );

    Headline::new(
        "straggler",
        "hedged_p99_sojourn_ms",
        hedged.latency_p99_ms,
        "ms",
        serde_json::json!({
            "clients": CLIENTS,
            "offered_qps": OFFERED_QPS,
            "spike_every": SPIKE.0,
            "spike_multiplier": SPIKE.1,
            "hedge_percentile": HEDGE_PERCENTILE,
            "hedge_budget_fraction": HEDGE_BUDGET,
            "unhedged_p99_sojourn_ms": plain.latency_p99_ms,
        }),
    )
    .write();
    ok
}
