//! Ablation (§IV-G): built-in replication against the Long Tail Problem.
//! Build with L* + extra layers, then compare waiting for all layers vs
//! only the fastest L*, under a heavy-tailed latency model.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, summarize, BenchEnv, DatasetKind, Report};
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Hdfs)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);
    let workload = env.workload(40, 7);

    // Build with 2 needed layers + 3 spares.
    let prefix = "idx/straggler";
    let config = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_manual_layers(2)
        .with_overprovision(3)
        .with_seed(1);
    let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
    let corpus = airphant_corpus::Corpus::new(
        raw.clone(),
        raw.list("corpora/").expect("list"),
        std::sync::Arc::new(airphant_corpus::LineSplitter),
        std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
    );
    airphant::Builder::new(config)
        .build_with_profile(&corpus, prefix, env.profile().clone())
        .expect("build");

    // Heavy-tailed network: 10% of requests hit a Pareto(1.1) tail.
    let tail_model = LatencyModel::builder().long_tail(0.10, 1.1).build();
    let view = env.cloud_view(tail_model, 42);
    let searcher = Searcher::open(view, prefix).expect("open");

    let mut report = Report::new(
        "ablation_straggler",
        &["policy", "search_mean_ms", "search_p99_ms", "fp/query"],
    );
    for (policy, wait_for) in [("wait-all-5", 5usize), ("fastest-2-of-5", 2)] {
        let mut lat = Vec::new();
        let mut fp = 0usize;
        for w in workload.iter() {
            let r = searcher
                .search_waiting_for(w, wait_for, Some(10))
                .expect("search");
            lat.push(r.latency().as_millis_f64());
            fp += r.false_positives_removed;
        }
        let stats = summarize(&lat);
        report.push(
            vec![
                policy.to_string(),
                ms(stats.mean_ms),
                ms(stats.p99_ms),
                format!("{:.2}", fp as f64 / workload.len() as f64),
            ],
            serde_json::json!({
                "policy": policy,
                "search_mean_ms": stats.mean_ms,
                "search_p99_ms": stats.p99_ms,
                "fp_per_query": fp as f64 / workload.len() as f64,
            }),
        );
    }
    report.finish();
    println!("expected: waiting for the fastest 2 of 5 cuts the p99 dramatically (the tail");
    println!("no longer gates the batch) at the cost of slightly more false positives.");
}
