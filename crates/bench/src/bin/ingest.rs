//! Streaming-ingestion bench: sustained ingest rate through the
//! memtable + group-commit flush pipeline, and the freshness lag between
//! an append and the moment a query can return it.
//!
//! All on the simulated clock:
//!
//! 1. **Ingest throughput**: append a synthetic log stream through a
//!    [`LiveIndex`] with a group-commit policy, flushing periodically.
//!    Every durable write is counted (count + bytes) and priced with the
//!    GCS-like [`LatencyModel`] — one round trip to first byte per put
//!    plus transfer time for the bytes — giving a deterministic virtual
//!    ingest wall-clock. The headline is docs per *virtual* second
//!    sustained, amortized across the whole stream including every
//!    segment build and manifest CAS.
//! 2. **Freshness lag**: after each sampled append, execute a query that
//!    must return the just-appended document and record the query's
//!    simulated storage time (`trace.total()`). Appends are searchable
//!    before any durability — the lag is the cost of the search that
//!    sees them, dominated by the durable segments' simulated reads, not
//!    by a flush. Headline: p99 lag in simulated ms.
//! 3. **Equality check** (exit-coded): canonical live hits before the
//!    final flush must equal both the live hits after it and a cold
//!    durable-only open — the streaming guarantee the proptests pin,
//!    re-checked under the bench corpus.

use airphant::{
    AirphantConfig, FlushPolicy, LiveIndex, Query, QueryOptions, SearchEngine, SearchResult,
    SegmentManager,
};
use airphant_bench::{Headline, Report};
use airphant_storage::{
    BatchFetch, Fetched, InMemoryStore, LatencyModel, ObjectStore, RangeRequest,
    SimulatedCloudStore, Version,
};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Documents in the synthetic log stream.
const N_DOCS: usize = 4_000;
/// Group-commit seal threshold.
const BATCH_DOCS: usize = 256;
/// Appends between explicit flush calls (several sealed batches each).
const FLUSH_EVERY: usize = 1_024;
/// Appends between freshness probes.
const PROBE_EVERY: usize = 16;

/// Counts durable writes (count + bytes) flowing to the wrapped store so
/// the bench can price them on the virtual clock. Reads delegate
/// untouched, preserving the inner store's simulated latencies.
struct CountingStore {
    inner: Arc<dyn ObjectStore>,
    puts: AtomicU64,
    put_bytes: AtomicU64,
}

impl CountingStore {
    fn new(inner: Arc<dyn ObjectStore>) -> Self {
        CountingStore {
            inner,
            puts: AtomicU64::new(0),
            put_bytes: AtomicU64::new(0),
        }
    }

    fn count(&self, bytes: u64) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.put_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

impl ObjectStore for CountingStore {
    fn put(&self, name: &str, data: Bytes) -> airphant_storage::Result<()> {
        self.count(data.len() as u64);
        self.inner.put(name, data)
    }

    fn put_if_version(
        &self,
        name: &str,
        data: Bytes,
        expected: Version,
    ) -> airphant_storage::Result<Version> {
        self.count(data.len() as u64);
        self.inner.put_if_version(name, data, expected)
    }

    fn get(&self, name: &str) -> airphant_storage::Result<Fetched> {
        self.inner.get(name)
    }

    fn get_range(&self, name: &str, offset: u64, len: u64) -> airphant_storage::Result<Fetched> {
        self.inner.get_range(name, offset, len)
    }

    fn get_ranges(&self, requests: &[RangeRequest]) -> airphant_storage::Result<BatchFetch> {
        self.inner.get_ranges(requests)
    }

    fn size_of(&self, name: &str) -> airphant_storage::Result<u64> {
        self.inner.size_of(name)
    }

    fn version_of(&self, name: &str) -> airphant_storage::Result<Version> {
        self.inner.version_of(name)
    }

    fn list(&self, prefix: &str) -> airphant_storage::Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> airphant_storage::Result<()> {
        self.inner.delete(name)
    }
}

fn doc(i: usize) -> String {
    format!(
        "req{i} svc{} code{} latency{} region{}",
        i % 37,
        i % 7,
        (i * 13) % 113,
        i % 3
    )
}

fn canonical(result: &SearchResult) -> Vec<String> {
    result
        .hits
        .iter()
        .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let model = LatencyModel::gcs_like();
    let config = AirphantConfig::default()
        .with_total_bins(512)
        .with_common_fraction(0.0)
        .with_seed(1);

    // Reads of durable segments pay simulated cloud latency; writes are
    // counted and priced below (the simulator passes writes through, by
    // design — builds are not latency-measured there).
    let sim: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        model.clone(),
        11,
    ));
    let counting = Arc::new(CountingStore::new(sim));
    let idx = LiveIndex::open(counting.clone() as Arc<dyn ObjectStore>, "idx", config)
        .expect("open live index")
        .with_policy(FlushPolicy {
            max_docs: BATCH_DOCS,
            max_bytes: u64::MAX,
        });

    let mut ok = true;
    let mut report = Report::new("ingest", &["phase", "value", "detail"]);

    // Phase 1+2 interleaved: stream the log in, probing freshness.
    let mut lags_ms: Vec<f64> = Vec::new();
    let mut flushes = 0usize;
    for i in 0..N_DOCS {
        idx.append(&doc(i)).expect("append");
        if i % PROBE_EVERY == PROBE_EVERY - 1 {
            // The probe must see the newest doc — fresh, not yet durable.
            let newest = format!("req{i}");
            let r = idx
                .execute(&Query::term(&newest), &QueryOptions::new())
                .expect("probe");
            if r.hits.len() != 1 || !r.hits[0].text.starts_with(&newest) {
                eprintln!("FAIL: probe {newest} missed the just-appended doc");
                ok = false;
            }
            lags_ms.push(r.trace.total().as_millis_f64());
        }
        if i % FLUSH_EVERY == FLUSH_EVERY - 1 {
            idx.flush().expect("flush");
            flushes += 1;
        }
    }

    // Pre-flush probes for the equality check, then the final flush.
    let eq_queries: Vec<Query> = (0..7)
        .map(|s| Query::term(format!("svc{s}")))
        .chain([Query::all([Query::term("svc3"), Query::term("code2")])])
        .collect();
    let live_before: Vec<Vec<String>> = eq_queries
        .iter()
        .map(|q| canonical(&idx.execute(q, &QueryOptions::new()).expect("live probe")))
        .collect();
    idx.flush().expect("final flush");
    flushes += 1;

    // Price the durable writes on the virtual clock: one first-byte
    // round trip per put, plus the bytes at effective bandwidth.
    let puts = counting.puts.load(Ordering::Relaxed);
    let put_bytes = counting.put_bytes.load(Ordering::Relaxed);
    let virtual_ingest_secs = puts as f64 * model.effective_first_byte_median().as_secs_f64()
        + model.transfer_time(put_bytes).as_secs_f64();
    let docs_per_sec = N_DOCS as f64 / virtual_ingest_secs;

    lags_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lag_p50 = percentile(&lags_ms, 0.50);
    let lag_p99 = percentile(&lags_ms, 0.99);

    report.push(
        vec![
            "ingest".into(),
            format!("{docs_per_sec:.0} docs/s_sim"),
            format!("{N_DOCS} docs, {flushes} flushes, {puts} puts, {put_bytes} B"),
        ],
        serde_json::json!({
            "phase": "ingest",
            "docs": N_DOCS,
            "flushes": flushes,
            "durable_puts": puts,
            "durable_put_bytes": put_bytes,
            "virtual_ingest_secs": virtual_ingest_secs,
            "docs_per_sec_virtual": docs_per_sec,
        }),
    );
    report.push(
        vec![
            "freshness".into(),
            format!("p50 {lag_p50:.1}ms / p99 {lag_p99:.1}ms"),
            format!("{} probes, every {PROBE_EVERY} appends", lags_ms.len()),
        ],
        serde_json::json!({
            "phase": "freshness",
            "probes": lags_ms.len(),
            "lag_p50_ms": lag_p50,
            "lag_p99_ms": lag_p99,
        }),
    );

    // Phase 3: equality across the flush boundary, live and cold.
    let cold = SegmentManager::new(counting as Arc<dyn ObjectStore>, "idx")
        .open()
        .expect("cold open");
    for (q, want) in eq_queries.iter().zip(&live_before) {
        let live_after = canonical(&idx.execute(q, &QueryOptions::new()).expect("live after"));
        let durable = canonical(&cold.execute(q, &QueryOptions::new()).expect("cold"));
        if &live_after != want || &durable != want {
            eprintln!("FAIL: results diverged across the flush for {q:?}");
            ok = false;
        }
    }
    if idx.pending_docs() != 0 {
        eprintln!(
            "FAIL: {} docs left undurable after flush",
            idx.pending_docs()
        );
        ok = false;
    }
    report.push(
        vec![
            "equality".into(),
            if ok { "ok".into() } else { "FAILED".into() },
            format!("{} queries live==post-flush==cold", eq_queries.len()),
        ],
        serde_json::json!({
            "phase": "equality",
            "queries": eq_queries.len(),
            "ok": ok,
        }),
    );
    report.finish();

    let cfg = serde_json::json!({
        "n_docs": N_DOCS,
        "batch_docs": BATCH_DOCS,
        "flush_every": FLUSH_EVERY,
        "probe_every": PROBE_EVERY,
        "latency_model": "gcs_like",
        "seed": 11,
    });
    let p1 = Headline::new(
        "ingest",
        "docs_per_sec_virtual",
        docs_per_sec,
        "ops",
        cfg.clone(),
    )
    .write();
    let p2 = Headline::new("ingest_freshness", "freshness_lag_p99", lag_p99, "ms", cfg).write();
    println!(
        "headline: {docs_per_sec:.0} docs/s_sim sustained -> {}",
        p1.display()
    );
    println!(
        "headline: freshness lag p50 {lag_p50:.1}ms p99 {lag_p99:.1}ms -> {}",
        p2.display()
    );

    if !ok {
        std::process::exit(1);
    }
}
