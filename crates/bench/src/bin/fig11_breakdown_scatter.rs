//! Figure 11 (Appendix A): individual per-query (wait, download) scatter on
//! the Spark dataset. Emits every point as JSON; prints per-engine ranges.

use airphant::AirphantConfig;
use airphant_bench::report::ms;
use airphant_bench::{build_all_engines, paper_datasets, wait_download_pairs, DatasetKind, Report};
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Spark)
        .unwrap();
    let config = AirphantConfig::default()
        .with_total_bins(airphant_bench::engines::default_bins(spec.kind))
        .with_seed(1);
    let (env, engines) = build_all_engines(spec, &config, &LatencyModel::gcs_like(), 42);
    let workload = env.workload(32, 7);

    let mut report = Report::new(
        "fig11_breakdown_scatter",
        &[
            "engine",
            "wait_min..max_ms",
            "download_min..max_ms",
            "points",
        ],
    );
    for (kind, engine) in &engines {
        let pairs = wait_download_pairs(engine.as_ref(), &workload, Some(10));
        let (wmin, wmax) = pairs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
        let (dmin, dmax) = pairs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
        report.push(
            vec![
                kind.label().to_string(),
                format!("{}..{}", ms(wmin), ms(wmax)),
                format!("{}..{}", ms(dmin), ms(dmax)),
                pairs.len().to_string(),
            ],
            serde_json::json!({
                "engine": kind.label(),
                "points": pairs.iter().map(|p| serde_json::json!({
                    "wait_ms": p.0, "download_ms": p.1,
                })).collect::<Vec<_>>(),
            }),
        );
    }
    report.finish();
    println!("paper shape: AIRPHANT's cloud sits in the lower-left corner; Lucene spreads");
    println!("along the wait axis, HashTable along the download axis.");
}
