//! Figure 2: end-to-end latency between compute and cloud storage as a
//! function of fetch size — the affine relationship (~50 ms flat to ~2 MB,
//! linear beyond) that motivates the entire design.

use airphant_bench::report::ms;
use airphant_bench::Report;
use airphant_storage::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = LatencyModel::gcs_like();
    let mut rng = StdRng::seed_from_u64(2);
    let mut report = Report::new(
        "fig02_latency_curve",
        &["size", "mean_ms", "stddev_ms", "min_ms", "max_ms"],
    );
    // 1KB .. 512MB, doubling — the paper's x-axis.
    let mut size: u64 = 1024;
    while size <= 512 * 1024 * 1024 {
        let samples: Vec<f64> = (0..10)
            .map(|_| model.sample(size, &mut rng).total().as_millis_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let (min, max) = samples
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        report.push(
            vec![human_size(size), ms(mean), ms(var.sqrt()), ms(min), ms(max)],
            serde_json::json!({
                "bytes": size,
                "mean_ms": mean,
                "stddev_ms": var.sqrt(),
                "min_ms": min,
                "max_ms": max,
            }),
        );
        size *= 2;
    }
    report.finish();
    println!(
        "shape check: latency is flat (~{} ms) below the ~2MB knee, then linear in size.",
        ms(model.effective_first_byte_median().as_millis_f64())
    );
}

fn human_size(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / (1024 * 1024))
    } else {
        format!("{}KB", bytes / 1024)
    }
}
