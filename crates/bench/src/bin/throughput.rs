//! Concurrent-serving throughput: the scalability companion to Figure 15.
//!
//! Closed-loop load generation over the zipf corpus through a
//! [`QueryServer`]: a fixed worker pool over ONE shared engine and ONE
//! shared byte-budgeted cache, swept across worker counts (1→32) and
//! cache budgets, for Airphant vs. the inverted-index (Lucene-like) and
//! SQLite-like baselines. Queries are drawn frequency-weighted, so the
//! zipf skew makes the shared cache progressively hotter.
//!
//! Throughput is reported on the **simulated clock** (see
//! `airphant::serve`): per-query latencies are replayed through W model
//! servers in a closed loop, which keeps QPS deterministic under a seed
//! and independent of the host's core count. QPS scales monotonically
//! with workers for every engine (no shared-state contention on the read
//! path); as in Figure 15, warm-cache baselines can edge out the median
//! at small N, while Airphant's flat single-batch latency keeps the p99
//! tail far below the hierarchical indexes at every pool size.
//!
//! With `--coalesce`, the Airphant sweep is repeated with the
//! cross-query I/O scheduler ([`CoalescingStore`]) under the shared
//! cache: each miss batch's overlapping/adjacent ranges merge into
//! fewer, larger reads and concurrent workers' batches fuse into one
//! shared backend round trip. The coalesced run must match or beat the
//! plain run at 8 workers (exit-coded), and its 8-worker QPS is
//! published as the `BENCH_coalesced.json` headline for the perf gate.

use airphant::{AirphantConfig, Query, QueryOptions, QueryServer, SearchEngine, ServerConfig};
use airphant_bench::report::ms;
use airphant_bench::{BenchEnv, DatasetKind, DatasetSpec, EngineKind, Headline, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::{
    CachedStore, CoalescingStore, LatencyModel, ObjectStore, SchedulerConfig, SchedulerStats,
};
use std::sync::Arc;
use std::time::Duration;

const WORKER_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
const CACHE_BUDGETS: [usize; 2] = [64 << 10, 1 << 20];

/// One sweep point: serve the whole workload through a fresh stack and
/// return its simulated-clock stats (plus scheduler counters when the
/// coalescing scheduler was in the stack).
fn run_point(
    env: &BenchEnv,
    workload: &QueryWorkload,
    kind: EngineKind,
    budget: usize,
    workers: usize,
    coalesce: bool,
    report: &mut Report,
) -> (f64, Option<SchedulerStats>) {
    // The report row must name the stack actually run, so the label is
    // derived, never passed.
    let label = if coalesce {
        "AIRPHANT+sched".to_string()
    } else {
        kind.label().to_string()
    };
    // A fresh (cold) shared cache per run so every sweep point measures
    // the same warm-up + steady-state mix.
    let sim = env.cloud_view(LatencyModel::gcs_like(), 42);
    // ADR-005 stacking: scheduler BELOW the cache, so only misses reach
    // it — and the single-flighted miss batches of W workers are exactly
    // the traffic that fuses into one shared round trip.
    let scheduler = coalesce.then(|| {
        Arc::new(CoalescingStore::with_config(
            sim.clone(),
            SchedulerConfig::new().with_batch_window(Duration::from_millis(1)),
        ))
    });
    let below_cache: Arc<dyn ObjectStore> = match &scheduler {
        Some(s) => s.clone(),
        None => sim,
    };
    let cache = Arc::new(CachedStore::new(below_cache, budget));
    let engine: Arc<dyn SearchEngine> =
        Arc::from(env.open_engine(kind, cache.clone() as Arc<dyn ObjectStore>));
    let cache_for_stats = cache.clone();
    let mut server = QueryServer::start(
        engine,
        ServerConfig::new()
            .with_workers(workers)
            .with_queue_capacity(workers * 4),
    )
    .with_cache_stats(move || cache_for_stats.hit_stats());
    if let Some(s) = &scheduler {
        let s = s.clone();
        server = server.with_scheduler_stats(move || s.stats());
    }

    // Closed loop: keep the pipeline full; a full queue blocks the
    // submitter (backpressure), never drops a query.
    let mut tickets = Vec::with_capacity(workload.len());
    for word in workload.iter() {
        tickets.push(
            server
                .submit(Query::term(word), QueryOptions::new().top_k(10))
                .expect("server alive"),
        );
    }
    for t in tickets {
        t.wait().expect("query");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed as usize, workload.len());
    report.push(
        vec![
            label.clone(),
            format!("{}KiB", budget >> 10),
            workers.to_string(),
            format!("{:.1}", stats.qps_sim),
            ms(stats.latency_p50_ms),
            ms(stats.latency_p95_ms),
            ms(stats.latency_p99_ms),
            stats
                .cache_hit_rate()
                .map(|r| format!("{:.2}", r))
                .unwrap_or_else(|| "-".into()),
        ],
        serde_json::json!({
            "engine": label,
            "cache_budget_bytes": budget,
            "workers": workers,
            "qps_sim": stats.qps_sim,
            "qps_wall": stats.qps_wall,
            "sim_makespan_ms": stats.sim_makespan.as_millis_f64(),
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
            "latency_p99_ms": stats.latency_p99_ms,
            "wait_p50_ms": stats.wait_p50_ms,
            "wait_p99_ms": stats.wait_p99_ms,
            "cache_hit_rate": stats.cache_hit_rate(),
            "completed": stats.completed,
            "rejected": stats.rejected,
            "timed_out": stats.timed_out,
            "scheduler_merged_ranges": stats.scheduler.map(|s| s.merged_ranges),
            "scheduler_fused_batches": stats.scheduler.map(|s| s.fused_batches),
            "scheduler_bytes_saved": stats.scheduler.map(|s| s.bytes_saved),
        }),
    );
    (stats.qps_sim, stats.scheduler)
}

fn main() {
    let coalesce_sweep = std::env::args().any(|a| a == "--coalesce");
    let n_docs: u64 = if std::env::var("BENCH_LARGE").is_ok() {
        50_000
    } else {
        5_000
    };
    let queries: usize = if std::env::var("BENCH_LARGE").is_ok() {
        2_048
    } else {
        384
    };
    let spec = DatasetSpec {
        kind: DatasetKind::Zipf,
        n_docs,
        seed: 23,
    };
    let bins = (n_docs / 5).clamp(500, 50_000) as usize;
    let config = AirphantConfig::default().with_total_bins(bins).with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    // Zipf-skewed query popularity: repeats make the shared cache matter.
    let workload = QueryWorkload::frequency_weighted(env.profile(), queries, 7);

    let mut report = Report::new(
        "throughput",
        &[
            "engine", "cache", "workers", "qps_sim", "p50_ms", "p95_ms", "p99_ms", "hit_rate",
        ],
    );
    // (engine, budget) -> qps per worker count, for the scaling check.
    let mut airphant_scaling: Vec<(usize, Vec<f64>)> = Vec::new();

    for kind in [EngineKind::Airphant, EngineKind::Lucene, EngineKind::Sqlite] {
        for &budget in &CACHE_BUDGETS {
            let mut qps_curve = Vec::new();
            for &workers in &WORKER_SWEEP {
                let (qps, _) =
                    run_point(&env, &workload, kind, budget, workers, false, &mut report);
                qps_curve.push(qps);
            }
            if kind == EngineKind::Airphant {
                airphant_scaling.push((budget, qps_curve));
            }
            eprintln!("done: {} cache={}KiB", kind.label(), budget >> 10);
        }
    }

    // The coalesced sweep: Airphant again, with the I/O scheduler under
    // the shared cache. Fusion timing is wall-clock (concurrent workers
    // must actually arrive within the window), so only the deterministic
    // simulated-clock QPS is gated; the fused/merged counters are
    // reported and asserted non-trivial in aggregate.
    let mut coalesced_scaling: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut sched_total = SchedulerStats::default();
    if coalesce_sweep {
        for &budget in &CACHE_BUDGETS {
            let mut qps_curve = Vec::new();
            for &workers in &WORKER_SWEEP {
                let (qps, sched) = run_point(
                    &env,
                    &workload,
                    EngineKind::Airphant,
                    budget,
                    workers,
                    true,
                    &mut report,
                );
                qps_curve.push(qps);
                if let Some(s) = sched {
                    sched_total.merged_ranges += s.merged_ranges;
                    sched_total.fused_batches += s.fused_batches;
                    sched_total.bytes_saved += s.bytes_saved;
                    sched_total.bytes_padded += s.bytes_padded;
                    sched_total.backend_batches += s.backend_batches;
                }
            }
            coalesced_scaling.push((budget, qps_curve));
            eprintln!("done: AIRPHANT+sched cache={}KiB", budget >> 10);
        }
    }
    report.finish();

    // The perf-gate headline: Airphant QPS at 8 workers on the small
    // shared cache — the configuration the scaling claim rests on.
    // Deterministic under the seeds, so CI can diff it against the
    // committed baseline.
    let (budget, curve) = &airphant_scaling[0];
    Headline::new(
        "throughput",
        "qps_sim",
        curve[3], // WORKER_SWEEP[3] == 8 workers
        "qps",
        serde_json::json!({
            "engine": "AIRPHANT",
            "workers": WORKER_SWEEP[3],
            "cache_budget_bytes": budget,
            "n_docs": n_docs,
            "queries": queries,
        }),
    )
    .write();

    // The acceptance bar: Airphant QPS grows monotonically 1→8 workers.
    let mut ok = true;
    for (budget, curve) in airphant_scaling.iter().chain(&coalesced_scaling) {
        // WORKER_SWEEP[0..4] == [1, 2, 4, 8]
        for w in 1..4 {
            if curve[w] <= curve[w - 1] {
                ok = false;
                eprintln!(
                    "scaling violation at cache={}KiB: {} workers {:.1} qps <= {} workers {:.1} qps",
                    budget >> 10,
                    WORKER_SWEEP[w],
                    curve[w],
                    WORKER_SWEEP[w - 1],
                    curve[w - 1]
                );
            }
        }
    }
    println!(
        "scaling check (AIRPHANT 1→8 workers monotone): {}",
        if ok { "OK" } else { "FAIL" }
    );

    if coalesce_sweep {
        // The coalescing bar: at 8 workers the scheduler must match or
        // beat the plain stack on the simulated clock for every budget —
        // removed round trips cannot cost throughput. How *much* of the
        // workload fuses depends on wall-clock thread timing (a loaded
        // runner overlaps workers less), so the two runs draw different
        // latency samples; a 2% slack absorbs that cross-run sampling
        // noise while a real regression (fusion charging more than it
        // saves) lands far beyond it.
        const SLACK: f64 = 0.98;
        for ((budget, plain), (_, sched)) in airphant_scaling.iter().zip(&coalesced_scaling) {
            let (p, c) = (plain[3], sched[3]);
            let verdict = if c >= p * SLACK { "OK" } else { "FAIL" };
            println!(
                "coalescing check (8w, {}KiB): {:.1} qps plain vs {:.1} qps coalesced ({:+.1}%): {verdict}",
                budget >> 10,
                p,
                c,
                (c / p - 1.0) * 100.0,
            );
            if c < p * SLACK {
                ok = false;
            }
        }
        println!(
            "scheduler totals: {} range(s) merged, {} fused cross-query batch(es), \
             {} bytes saved, {} padding bytes, {} backend batch(es)",
            sched_total.merged_ranges,
            sched_total.fused_batches,
            sched_total.bytes_saved,
            sched_total.bytes_padded,
            sched_total.backend_batches,
        );
        if sched_total.fused_batches == 0 {
            eprintln!("coalescing check: no batch was ever fused across queries");
            ok = false;
        }
        if sched_total.merged_ranges == 0 {
            eprintln!("coalescing check: no ranges were ever merged");
            ok = false;
        }
        // The coalesced headline the perf gate diffs: 8 workers on the
        // small cache, same shape as the plain throughput headline.
        let (budget, curve) = &coalesced_scaling[0];
        Headline::new(
            "coalesced",
            "qps_sim",
            curve[3],
            "qps",
            serde_json::json!({
                "engine": "AIRPHANT+sched",
                "workers": WORKER_SWEEP[3],
                "cache_budget_bytes": budget,
                "n_docs": n_docs,
                "queries": queries,
            }),
        )
        .write();
    }

    println!("paper shape: one shared Searcher + one shared cache serve all workers; QPS");
    println!("scales with the pool because the single-batch read path has no dependent");
    println!("round trips and no shared mutable query state to contend on.");
    println!("(set BENCH_LARGE=1 for the 50k-doc / 2k-query sweep; pass --coalesce for");
    println!("the I/O-scheduler sweep and its BENCH_coalesced.json headline)");
    if !ok {
        std::process::exit(1);
    }
}
