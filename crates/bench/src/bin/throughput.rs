//! Concurrent-serving throughput: the scalability companion to Figure 15.
//!
//! Closed-loop load generation over the zipf corpus through a
//! [`QueryServer`]: a fixed worker pool over ONE shared engine and ONE
//! shared byte-budgeted cache, swept across worker counts (1→32) and
//! cache budgets, for Airphant vs. the inverted-index (Lucene-like) and
//! SQLite-like baselines. Queries are drawn frequency-weighted, so the
//! zipf skew makes the shared cache progressively hotter.
//!
//! Throughput is reported on the **simulated clock** (see
//! `airphant::serve`): per-query latencies are replayed through W model
//! servers in a closed loop, which keeps QPS deterministic under a seed
//! and independent of the host's core count. QPS scales monotonically
//! with workers for every engine (no shared-state contention on the read
//! path); as in Figure 15, warm-cache baselines can edge out the median
//! at small N, while Airphant's flat single-batch latency keeps the p99
//! tail far below the hierarchical indexes at every pool size.

use airphant::{AirphantConfig, Query, QueryOptions, QueryServer, SearchEngine, ServerConfig};
use airphant_bench::report::ms;
use airphant_bench::{BenchEnv, DatasetKind, DatasetSpec, EngineKind, Headline, Report};
use airphant_storage::{CachedStore, LatencyModel, ObjectStore};
use std::sync::Arc;

const WORKER_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
const CACHE_BUDGETS: [usize; 2] = [64 << 10, 1 << 20];

fn main() {
    let n_docs: u64 = if std::env::var("BENCH_LARGE").is_ok() {
        50_000
    } else {
        5_000
    };
    let queries: usize = if std::env::var("BENCH_LARGE").is_ok() {
        2_048
    } else {
        384
    };
    let spec = DatasetSpec {
        kind: DatasetKind::Zipf,
        n_docs,
        seed: 23,
    };
    let bins = (n_docs / 5).clamp(500, 50_000) as usize;
    let config = AirphantConfig::default().with_total_bins(bins).with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    // Zipf-skewed query popularity: repeats make the shared cache matter.
    let workload = airphant_corpus::QueryWorkload::frequency_weighted(env.profile(), queries, 7);

    let mut report = Report::new(
        "throughput",
        &[
            "engine", "cache", "workers", "qps_sim", "p50_ms", "p95_ms", "p99_ms", "hit_rate",
        ],
    );
    // (engine, budget) -> qps per worker count, for the scaling check.
    let mut airphant_scaling: Vec<(usize, Vec<f64>)> = Vec::new();

    for kind in [EngineKind::Airphant, EngineKind::Lucene, EngineKind::Sqlite] {
        for &budget in &CACHE_BUDGETS {
            let mut qps_curve = Vec::new();
            for &workers in &WORKER_SWEEP {
                // A fresh (cold) shared cache per run so every sweep point
                // measures the same warm-up + steady-state mix.
                let sim = env.cloud_view(LatencyModel::gcs_like(), 42);
                let cache = Arc::new(CachedStore::new(sim, budget));
                let engine: Arc<dyn SearchEngine> =
                    Arc::from(env.open_engine(kind, cache.clone() as Arc<dyn ObjectStore>));
                let cache_for_stats = cache.clone();
                let server = QueryServer::start(
                    engine,
                    ServerConfig::new()
                        .with_workers(workers)
                        .with_queue_capacity(workers * 4),
                )
                .with_cache_stats(move || cache_for_stats.hit_stats());

                // Closed loop: keep the pipeline full; a full queue blocks
                // the submitter (backpressure), never drops a query.
                let mut tickets = Vec::with_capacity(workload.len());
                for word in workload.iter() {
                    tickets.push(
                        server
                            .submit(Query::term(word), QueryOptions::new().top_k(10))
                            .expect("server alive"),
                    );
                }
                for t in tickets {
                    t.wait().expect("query");
                }
                let stats = server.shutdown();
                assert_eq!(stats.completed as usize, workload.len());
                qps_curve.push(stats.qps_sim);
                report.push(
                    vec![
                        kind.label().to_string(),
                        format!("{}KiB", budget >> 10),
                        workers.to_string(),
                        format!("{:.1}", stats.qps_sim),
                        ms(stats.latency_p50_ms),
                        ms(stats.latency_p95_ms),
                        ms(stats.latency_p99_ms),
                        stats
                            .cache_hit_rate()
                            .map(|r| format!("{:.2}", r))
                            .unwrap_or_else(|| "-".into()),
                    ],
                    serde_json::json!({
                        "engine": kind.label(),
                        "cache_budget_bytes": budget,
                        "workers": workers,
                        "qps_sim": stats.qps_sim,
                        "qps_wall": stats.qps_wall,
                        "sim_makespan_ms": stats.sim_makespan.as_millis_f64(),
                        "latency_p50_ms": stats.latency_p50_ms,
                        "latency_p95_ms": stats.latency_p95_ms,
                        "latency_p99_ms": stats.latency_p99_ms,
                        "wait_p50_ms": stats.wait_p50_ms,
                        "wait_p99_ms": stats.wait_p99_ms,
                        "cache_hit_rate": stats.cache_hit_rate(),
                        "completed": stats.completed,
                        "rejected": stats.rejected,
                        "timed_out": stats.timed_out,
                    }),
                );
            }
            if kind == EngineKind::Airphant {
                airphant_scaling.push((budget, qps_curve));
            }
            eprintln!("done: {} cache={}KiB", kind.label(), budget >> 10);
        }
    }
    report.finish();

    // The perf-gate headline: Airphant QPS at 8 workers on the small
    // shared cache — the configuration the scaling claim rests on.
    // Deterministic under the seeds, so CI can diff it against the
    // committed baseline.
    let (budget, curve) = &airphant_scaling[0];
    Headline::new(
        "throughput",
        "qps_sim",
        curve[3], // WORKER_SWEEP[3] == 8 workers
        "qps",
        serde_json::json!({
            "engine": "AIRPHANT",
            "workers": WORKER_SWEEP[3],
            "cache_budget_bytes": budget,
            "n_docs": n_docs,
            "queries": queries,
        }),
    )
    .write();

    // The acceptance bar: Airphant QPS grows monotonically 1→8 workers.
    let mut ok = true;
    for (budget, curve) in &airphant_scaling {
        // WORKER_SWEEP[0..4] == [1, 2, 4, 8]
        for w in 1..4 {
            if curve[w] <= curve[w - 1] {
                ok = false;
                eprintln!(
                    "scaling violation at cache={}KiB: {} workers {:.1} qps <= {} workers {:.1} qps",
                    budget >> 10,
                    WORKER_SWEEP[w],
                    curve[w],
                    WORKER_SWEEP[w - 1],
                    curve[w - 1]
                );
            }
        }
    }
    println!(
        "scaling check (AIRPHANT 1→8 workers monotone): {}",
        if ok { "OK" } else { "FAIL" }
    );
    println!("paper shape: one shared Searcher + one shared cache serve all workers; QPS");
    println!("scales with the pool because the single-batch read path has no dependent");
    println!("round trips and no shared mutable query state to contend on.");
    println!("(set BENCH_LARGE=1 for the 50k-doc / 2k-query sweep)");
    if !ok {
        std::process::exit(1);
    }
}
