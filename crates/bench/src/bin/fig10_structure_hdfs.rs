//! Figure 10: effects of bins B and layers L on expected false positives,
//! average search latency, and average term-lookup latency — HDFS corpus.
//!
//! Bin budgets scale with the look-alike corpus's vocabulary (the paper's
//! B ∈ {50k..400k} against 3.6M terms ≈ our {500..4000} against ~7k terms).

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{
    lookup_latencies, mean_false_positives, paper_datasets, search_latencies, summarize, BenchEnv,
    DatasetKind, Report,
};
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Hdfs)
        .unwrap();
    // Prepare raw data once (BenchEnv also builds default engines; we
    // rebuild Airphant per-structure below).
    let base_config = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base_config);
    let workload = env.workload(n_queries(), 7);

    let mut report = Report::new(
        "fig10_structure_hdfs",
        &["bins", "layers", "mean_fp", "search_ms", "lookup_ms"],
    );
    for bins in [500usize, 1_000, 2_000, 4_000] {
        for layers in [1usize, 2, 4, 8, 12, 16] {
            let prefix = format!("idx/structure-{bins}-{layers}");
            let config = AirphantConfig::default()
                .with_total_bins(bins)
                .with_manual_layers(layers)
                .with_seed(1);
            // Build against the raw store (free), then query via cloud view.
            let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
            let corpus = airphant_corpus::Corpus::new(
                raw.clone(),
                existing_corpus_blobs(&raw),
                std::sync::Arc::new(airphant_corpus::LineSplitter),
                std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
            );
            airphant::Builder::new(config)
                .build_with_profile(&corpus, &prefix, env.profile().clone())
                .expect("build");

            let view = env.cloud_view(LatencyModel::gcs_like(), 42 + bins as u64 + layers as u64);
            let searcher = Searcher::open(view, &prefix).expect("open");
            let fp = mean_false_positives(&searcher, &workload);
            let search = summarize(&search_latencies(&searcher, &workload, Some(10)));
            let lookup = summarize(&lookup_latencies(&searcher, &workload));
            report.push(
                vec![
                    bins.to_string(),
                    layers.to_string(),
                    format!("{fp:.2}"),
                    ms(search.mean_ms),
                    ms(lookup.mean_ms),
                ],
                serde_json::json!({
                    "bins": bins,
                    "layers": layers,
                    "mean_false_positives": fp,
                    "search_mean_ms": search.mean_ms,
                    "lookup_mean_ms": lookup.mean_ms,
                }),
            );
        }
        eprintln!("done: B={bins}");
    }
    report.finish();
    println!("paper shape: FP enormous at L=1, <1 at L≈2, ~0 beyond L=4; search latency has");
    println!("a minimum near the optimized L; lookup latency grows with L (bandwidth");
    println!("contention) but stays far below L× the single-layer cost.");
}

fn existing_corpus_blobs(store: &std::sync::Arc<dyn airphant_storage::ObjectStore>) -> Vec<String> {
    store.list("corpora/").expect("list corpus blobs")
}

fn n_queries() -> usize {
    std::env::var("BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}
