//! Figure 16 (Appendix B-C): tiny IoU structures on Cranfield — false
//! positives, search latency, lookup latency, and storage usage over
//! B ∈ {1000..3000} and L ∈ {1..16}.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{
    lookup_latencies, mean_false_positives, paper_datasets, search_latencies, summarize, BenchEnv,
    DatasetKind, Report,
};
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Cranfield)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(2_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);
    let workload = env.workload(30, 7);

    let mut report = Report::new(
        "fig16_tiny_structure",
        &[
            "bins",
            "layers",
            "mean_fp",
            "search_ms",
            "lookup_ms",
            "storage_bytes",
        ],
    );
    for bins in [1_000usize, 1_500, 2_000, 2_500, 3_000] {
        for layers in [1usize, 2, 4, 8, 12, 16] {
            let prefix = format!("idx/tiny-{bins}-{layers}");
            let config = AirphantConfig::default()
                .with_total_bins(bins)
                .with_manual_layers(layers)
                .with_seed(1);
            let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
            let corpus = airphant_corpus::Corpus::new(
                raw.clone(),
                raw.list("corpora/").expect("list"),
                std::sync::Arc::new(airphant_corpus::LineSplitter),
                std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
            );
            airphant::Builder::new(config)
                .build_with_profile(&corpus, &prefix, env.profile().clone())
                .expect("build");

            let view = env.cloud_view(LatencyModel::gcs_like(), 42 + bins as u64 + layers as u64);
            let searcher = Searcher::open(view, &prefix).expect("open");
            let fp = mean_false_positives(&searcher, &workload);
            let search = summarize(&search_latencies(&searcher, &workload, Some(10)));
            let lookup = summarize(&lookup_latencies(&searcher, &workload));
            let storage = searcher.index_usage_bytes();
            report.push(
                vec![
                    bins.to_string(),
                    layers.to_string(),
                    format!("{fp:.2}"),
                    ms(search.mean_ms),
                    ms(lookup.mean_ms),
                    storage.to_string(),
                ],
                serde_json::json!({
                    "bins": bins,
                    "layers": layers,
                    "mean_false_positives": fp,
                    "search_mean_ms": search.mean_ms,
                    "lookup_mean_ms": lookup.mean_ms,
                    "storage_bytes": storage,
                }),
            );
        }
        eprintln!("done: B={bins}");
    }
    report.finish();
    println!("paper shape: for fixed B there is an FP-minimizing L*; storage grows");
    println!("sublinearly in L (hash collisions dedupe shared postings); lookup latency");
    println!("grows approximately linearly in L but ≪ L× the L=1 latency.");
}
