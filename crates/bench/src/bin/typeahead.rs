//! Typeahead economics: a `Query::prefix` expands against the segment
//! vocabulary *locally* (suffix-array / sorted-vocab walk, no storage
//! round trip) and then pays the same ONE superpost batch an exact term
//! pays — so the p50 lookup wait of a prefix query must stay within 2x
//! of the exact-term wait, not grow with the number of expanded terms.
//!
//! Headline: `prefix_wait_ratio_p50` (unit `x`, lower is better), gated
//! against `bench_results/baseline/BENCH_typeahead.json` by `perf_gate`.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher};
use airphant_bench::measure::percentile;
use airphant_bench::report::ms;
use airphant_bench::{Headline, Report};
use airphant_corpus::{zipf, QueryWorkload, SyntheticSpec};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, PhaseKind, SimulatedCloudStore};
use std::sync::Arc;

/// Wait attributed to the index-lookup phases (vocabulary expansion is
/// CPU-local and free on the simulated clock; what this measures is the
/// superpost batch the expansion lowers into).
fn lookup_wait_ms(trace: &airphant_storage::QueryTrace) -> f64 {
    trace
        .phases()
        .iter()
        .filter(|p| matches!(p.kind, PhaseKind::Lookup | PhaseKind::Postings))
        .map(|p| p.wait.as_millis_f64())
        .sum()
}

fn main() {
    let inner = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs: 4_000,
        n_vocab: 2_000,
        words_per_doc: 8,
    };
    let corpus = zipf(spec, inner.clone(), "corpora/zipf", 11);
    let profile = corpus.profile().expect("profiling");
    Builder::new(
        AirphantConfig::default()
            .with_total_bins(1_000)
            .with_seed(1),
    )
    .build_with_profile(&corpus, "idx", profile.clone())
    .expect("build");
    let store: Arc<dyn ObjectStore> =
        Arc::new(SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 3));
    let searcher = Searcher::open(store, "idx").expect("open");

    // A typeahead session: the user has typed all but the last character
    // of a real vocabulary word. Each stem covers up to ten sibling
    // words (`w000012?`), so the expansion is real but bounded.
    let words: Vec<String> = QueryWorkload::uniform(&profile, 120, 9).words().to_vec();
    let opts = QueryOptions::new();
    let mut exact_waits = Vec::new();
    let mut prefix_waits = Vec::new();
    let mut expanded_hits = 0usize;
    for word in &words {
        let r = searcher
            .execute(&Query::term(word), &opts)
            .expect("exact term");
        exact_waits.push(lookup_wait_ms(&r.trace));

        let stem = &word[..word.len() - 1];
        let r = searcher
            .execute(&Query::prefix(stem), &opts)
            .expect("prefix");
        assert_eq!(
            r.trace.round_trips_of(PhaseKind::Postings),
            1,
            "prefix expansion must stay one postings batch"
        );
        prefix_waits.push(lookup_wait_ms(&r.trace));
        expanded_hits += r.hits.len();
    }
    exact_waits.sort_by(|a, b| a.total_cmp(b));
    prefix_waits.sort_by(|a, b| a.total_cmp(b));

    let mut report = Report::new("typeahead", &["query", "p50_wait_ms", "p95_wait_ms"]);
    for (name, waits) in [("exact_term", &exact_waits), ("prefix", &prefix_waits)] {
        report.push(
            vec![
                name.to_string(),
                ms(percentile(waits, 0.50)),
                ms(percentile(waits, 0.95)),
            ],
            serde_json::json!({
                "query": name,
                "p50_wait_ms": percentile(waits, 0.50),
                "p95_wait_ms": percentile(waits, 0.95),
            }),
        );
    }
    report.finish();

    let ratio = percentile(&prefix_waits, 0.50) / percentile(&exact_waits, 0.50);
    println!(
        "typeahead: p50 prefix wait is {ratio:.2}x the exact-term wait \
         ({} hits across {} prefix queries)",
        expanded_hits,
        words.len()
    );
    assert!(
        ratio <= 2.0,
        "typeahead bar: p50 prefix wait {ratio:.2}x exceeds 2x the exact-term wait"
    );
    Headline::new(
        "typeahead",
        "prefix_wait_ratio_p50",
        ratio,
        "x",
        serde_json::json!({
            "n_docs": 4_000,
            "n_vocab": 2_000,
            "queries": words.len(),
            "stem": "word minus last char",
        }),
    )
    .write();
}
