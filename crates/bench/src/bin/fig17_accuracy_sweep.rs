//! Figure 17 (Appendix B-D): tighter accuracy requirements — optimal layer
//! counts and latencies for F0 ∈ {1, 0.01, 0.0001}.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{
    lookup_latencies, paper_datasets, search_latencies, summarize, BenchEnv, DatasetKind, Report,
};
use airphant_storage::LatencyModel;

fn main() {
    // The paper uses HDFS-scale data with B=1e5; we use the HDFS look-alike
    // with a vocabulary-proportional budget.
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Hdfs)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(4_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);
    let workload = env.workload(30, 7);

    let mut report = Report::new(
        "fig17_accuracy_sweep",
        &["f0", "optimal_layers", "search_ms", "p99_ms", "lookup_ms"],
    );
    for f0 in [1.0f64, 0.01, 0.0001] {
        let prefix = format!("idx/accuracy-{f0}");
        let config = AirphantConfig::default()
            .with_total_bins(4_000)
            .with_accuracy(f0)
            .with_seed(1);
        let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
        let corpus = airphant_corpus::Corpus::new(
            raw.clone(),
            raw.list("corpora/").expect("list"),
            std::sync::Arc::new(airphant_corpus::LineSplitter),
            std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
        );
        let built = airphant::Builder::new(config)
            .build_with_profile(&corpus, &prefix, env.profile().clone())
            .expect("build");

        let view = env.cloud_view(LatencyModel::gcs_like(), 42 + (f0 * 1e6) as u64);
        let searcher = Searcher::open(view, &prefix).expect("open");
        let search = summarize(&search_latencies(&searcher, &workload, Some(10)));
        let lookup = summarize(&lookup_latencies(&searcher, &workload));
        report.push(
            vec![
                format!("{f0}"),
                built.optimal_layers.to_string(),
                ms(search.mean_ms),
                ms(search.p99_ms),
                ms(lookup.mean_ms),
            ],
            serde_json::json!({
                "f0": f0,
                "optimal_layers": built.optimal_layers,
                "expected_fp": built.expected_fp,
                "search_mean_ms": search.mean_ms,
                "search_p99_ms": search.p99_ms,
                "lookup_mean_ms": lookup.mean_ms,
            }),
        );
        eprintln!("done: F0={f0}");
    }
    report.finish();
    println!("paper shape: tightening F0 by orders of magnitude adds only ~1 layer each");
    println!("time (FP decays as O(2^-L)); latencies rise only slightly with L*.");
}
