//! Figure 9: relative cost `C_E/C_A` between local Elasticsearch and
//! cloud-stored Airphant, as a function of the peak-time fraction τ and
//! the indexed data size N. Purely analytical — the paper's constants.

use airphant_bench::{relative_cost, CostParams, Report};

fn main() {
    let mut report = Report::new(
        "fig09_cost_model",
        &[
            "size", "tau=0.05", "tau=0.2", "tau=0.4", "tau=0.6", "tau=0.8", "tau=1.0",
        ],
    );
    let peak = 154.08; // throughput of one Elasticsearch server
    let trough = peak / 20.0;
    for size_tb in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let taus = [0.05, 0.2, 0.4, 0.6, 0.8, 1.0];
        let ratios: Vec<f64> = taus
            .iter()
            .map(|&tau| {
                relative_cost(&CostParams {
                    peak_ops: peak,
                    trough_ops: trough,
                    peak_fraction: tau,
                    data_gb: size_tb * 1024.0,
                })
            })
            .collect();
        let mut cells = vec![format!("{size_tb} TB")];
        cells.extend(ratios.iter().map(|r| format!("{r:.2}")));
        report.push(
            cells,
            serde_json::json!({
                "size_tb": size_tb,
                "taus": taus,
                "ce_over_ca": ratios,
            }),
        );
    }
    report.finish();
    println!("paper checkpoints: lim N→∞ C_E/C_A ≈ 3.29; Airphant wins (ratio > 1) when");
    println!("data is large and/or peak time is short; Elasticsearch wins at τ → 1 on small data.");
}
