//! The CI perf gate: compare every committed baseline headline
//! (`bench_results/baseline/BENCH_*.json`) against the current run's
//! `bench_results/BENCH_*.json`, failing on any >25% regression.
//!
//! The headline metrics are recorded on the **simulated clock** under
//! fixed seeds, so a regression here is a code-path change (more round
//! trips, lost overlap, a fatter batch), not host noise. Direction
//! comes from the unit (`qps` must not drop; `ms`/`x` must not grow) —
//! see [`Headline::higher_is_better`]. A baseline with no matching
//! current headline fails the gate: a bench that silently stopped
//! publishing is itself a regression.
//!
//! Refresh the baseline by re-running the bench binaries and copying
//! the new `BENCH_*.json` files into `bench_results/baseline/` in the
//! same PR that knowingly changes performance.

use airphant_bench::Headline;
use std::path::Path;

/// The gate's tolerance: a metric may move 25% before CI fails.
const TOLERANCE: f64 = 0.25;

fn load(path: &Path) -> Result<Headline, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value: serde_json::Value = serde_json::from_slice(&bytes)
        .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    Headline::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let baseline_dir = Path::new("bench_results/baseline");
    let current_dir = Path::new("bench_results");
    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!(
                "perf gate: cannot read {} ({e}) — commit the baseline headlines first",
                baseline_dir.display()
            );
            std::process::exit(1);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "perf gate: no BENCH_*.json baselines under {} — a gate with nothing to \
             compare passes nothing",
            baseline_dir.display()
        );
        std::process::exit(1);
    }

    let mut failures = 0usize;
    println!(
        "perf gate: {} baseline(s), tolerance {:.0}%",
        names.len(),
        TOLERANCE * 100.0
    );
    for name in &names {
        let verdict = (|| -> Result<Option<String>, String> {
            let baseline = load(&baseline_dir.join(name))?;
            let current = load(&current_dir.join(name)).map_err(|e| {
                format!("current headline missing (did the bench stop publishing?): {e}")
            })?;
            Ok(current
                .regression_vs(&baseline, TOLERANCE)
                .map(|why| format!("REGRESSION: {why}")))
        })();
        match verdict {
            Ok(None) => println!("  {name}: OK"),
            Ok(Some(why)) => {
                println!("  {name}: {why}");
                failures += 1;
            }
            Err(e) => {
                println!("  {name}: FAIL ({e})");
                failures += 1;
            }
        }
    }
    // The reverse direction: a current headline with no committed
    // baseline is a bench that was added (or renamed) without arming
    // the gate for it — fail so the baseline gets recorded now, not
    // after the first unnoticed regression.
    let mut unbaselined: Vec<String> = std::fs::read_dir(current_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_file())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .filter(|n| !names.contains(n))
                .collect()
        })
        .unwrap_or_default();
    unbaselined.sort();
    for name in &unbaselined {
        println!("  {name}: NO BASELINE (commit bench_results/baseline/{name} to arm the gate)");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("perf gate: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("perf gate: all headlines within tolerance");
}
