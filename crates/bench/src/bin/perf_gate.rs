//! The CI perf gate: compare every committed baseline headline
//! (`bench_results/baseline/BENCH_*.json`) against the current run's
//! `bench_results/BENCH_*.json`, failing on any >25% move.
//!
//! The headline metrics are recorded on the **simulated clock** under
//! fixed seeds, so a move past tolerance here is a code-path change
//! (more round trips, lost overlap, a fatter batch), not host noise.
//! Direction comes from the unit (`qps` must not drop; `ms`/`x` must
//! not grow) — see [`Headline::higher_is_better`]. A baseline with no
//! matching current headline fails the gate: a bench that silently
//! stopped publishing is itself a regression.
//!
//! Moves past tolerance in the **good** direction also fail — the
//! committed baseline is stale, and a stale baseline widens the band the
//! next real regression can hide in — but they carry their own verdict
//! (`IMPROVEMENT`, with the `cp` command that re-baselines) and their
//! own status in the machine-readable summary the gate writes to
//! `bench_results/perf_gate.json`, so CI logs never misreport a speedup
//! as a slowdown.
//!
//! Refresh the baseline by re-running the bench binaries and copying
//! the new `BENCH_*.json` files into `bench_results/baseline/` in the
//! same PR that knowingly changes performance.

use airphant_bench::{Comparison, Headline};
use std::path::Path;

/// The gate's tolerance: a metric may move 25% before CI fails.
const TOLERANCE: f64 = 0.25;

fn load(path: &Path) -> Result<Headline, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value: serde_json::Value = serde_json::from_slice(&bytes)
        .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    Headline::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let baseline_dir = Path::new("bench_results/baseline");
    let current_dir = Path::new("bench_results");
    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!(
                "perf gate: cannot read {} ({e}) — commit the baseline headlines first",
                baseline_dir.display()
            );
            std::process::exit(1);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "perf gate: no BENCH_*.json baselines under {} — a gate with nothing to \
             compare passes nothing",
            baseline_dir.display()
        );
        std::process::exit(1);
    }

    let mut failures = 0usize;
    // Per-headline machine-readable statuses, mirrored to perf_gate.json.
    let mut statuses: Vec<serde_json::Value> = Vec::new();
    let mut record = |name: &str, status: &str, detail: &str| {
        statuses.push(serde_json::json!({
            "name": name,
            "status": status,
            "detail": detail,
        }));
    };
    println!(
        "perf gate: {} baseline(s), tolerance {:.0}%",
        names.len(),
        TOLERANCE * 100.0
    );
    for name in &names {
        let verdict = (|| -> Result<Comparison, String> {
            let baseline = load(&baseline_dir.join(name))?;
            let current = load(&current_dir.join(name)).map_err(|e| {
                format!("current headline missing (did the bench stop publishing?): {e}")
            })?;
            Ok(current.compare_vs(&baseline, TOLERANCE))
        })();
        match verdict {
            Ok(cmp) => {
                match &cmp {
                    Comparison::Within => println!("  {name}: OK"),
                    Comparison::Regression(why) => {
                        println!("  {name}: REGRESSION: {why}");
                        failures += 1;
                    }
                    Comparison::Improvement(why) => {
                        // Still a gate failure — the baseline is stale —
                        // but with its own verdict and the exact command
                        // that fixes it.
                        println!(
                            "  {name}: IMPROVEMENT (stale baseline): {why} — re-baseline with: \
                             cp bench_results/{name} bench_results/baseline/{name}"
                        );
                        failures += 1;
                    }
                }
                let detail = match &cmp {
                    Comparison::Within => "",
                    Comparison::Regression(why) | Comparison::Improvement(why) => why,
                };
                record(name, cmp.status(), detail);
            }
            Err(e) => {
                println!("  {name}: FAIL ({e})");
                record(name, "error", &e);
                failures += 1;
            }
        }
    }
    // The reverse direction: a current headline with no committed
    // baseline is a bench that was added (or renamed) without arming
    // the gate for it — fail so the baseline gets recorded now, not
    // after the first unnoticed regression.
    let mut unbaselined: Vec<String> = std::fs::read_dir(current_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_file())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .filter(|n| !names.contains(n))
                .collect()
        })
        .unwrap_or_default();
    unbaselined.sort();
    for name in &unbaselined {
        println!("  {name}: NO BASELINE (commit bench_results/baseline/{name} to arm the gate)");
        record(name, "no_baseline", "commit the baseline to arm the gate");
        failures += 1;
    }

    let summary = serde_json::json!({
        "tolerance": TOLERANCE,
        "failures": failures as u64,
        "headlines": statuses,
    });
    let summary_path = current_dir.join("perf_gate.json");
    if let Err(e) = std::fs::write(&summary_path, serde_json::to_vec_pretty(&summary).unwrap()) {
        eprintln!("warning: could not write {}: {e}", summary_path.display());
    }

    if failures > 0 {
        eprintln!("perf gate: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("perf gate: all headlines within tolerance");
}
