//! Figure 5: average (observed) and expected numbers of false positives
//! per query when varying layers L and bins B on the Cranfield corpus.
//!
//! Validates that the analytical model F(L) of Equation 2 tracks the
//! measured sketch: the U-shape over L and the monotone improvement in B.

use airphant_bench::report::ms;
use airphant_bench::{build_dataset, paper_datasets, DatasetKind, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::InMemoryStore;
use iou_sketch::{CorpusShape, FalsePositiveModel, PostingsList, SketchBuilder, SketchConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Cranfield)
        .unwrap();
    let store = Arc::new(InMemoryStore::new());
    let corpus = build_dataset(spec, store);
    let profile = corpus.profile().expect("profile");

    // Materialize ground truth once.
    let mut truth: HashMap<String, Vec<u64>> = HashMap::new();
    let mut doc_id = 0u64;
    let tokenizer = corpus.tokenizer().clone();
    corpus
        .for_each_document(|doc| {
            let mut words = tokenizer.tokens(&doc.text);
            words.sort_unstable();
            words.dedup();
            for w in words {
                truth.entry(w).or_default().push(doc_id);
            }
            doc_id += 1;
        })
        .unwrap();

    let workload = QueryWorkload::uniform(&profile, 300, 11);
    let shape = CorpusShape::uniform(profile.doc_distinct_sizes.iter().copied(), profile.n_terms);

    let mut report = Report::new(
        "fig05_false_positives",
        &["bins", "layers", "observed_fp", "expected_fp"],
    );
    for bins in [500usize, 1_000, 2_000, 3_000, 5_000] {
        let model = FalsePositiveModel::new(shape.clone(), bins);
        for layers in [1usize, 2, 4, 6, 8, 12, 16] {
            if bins / layers == 0 {
                continue;
            }
            let config = SketchConfig {
                total_bins: bins,
                layers,
                common_fraction: 0.0,
            };
            let mut builder = SketchBuilder::new(config, 42);
            for (word, docs) in &truth {
                builder.insert(word, &PostingsList::from_doc_ids(docs));
            }
            let sketch = builder.freeze();
            let total_fp: usize = workload
                .iter()
                .map(|w| {
                    let t = PostingsList::from_doc_ids(
                        truth.get(w).map(|v| v.as_slice()).unwrap_or(&[]),
                    );
                    sketch.false_positives(w, &t)
                })
                .sum();
            let observed = total_fp as f64 / workload.len() as f64;
            let expected = model.expected_fp(layers as f64);
            report.push(
                vec![
                    bins.to_string(),
                    layers.to_string(),
                    ms(observed),
                    format!("{expected:.3}"),
                ],
                serde_json::json!({
                    "bins": bins,
                    "layers": layers,
                    "observed_fp": observed,
                    "expected_fp": expected,
                }),
            );
        }
        eprintln!("done: B={bins}");
    }
    report.finish();
    println!("paper shape: FP drops rapidly from L=1, reaches a minimum, then rises when");
    println!("too many layers starve each layer of bins; expectation tracks observation.");
}
