//! The async serving core under open-loop load: max sustainable QPS at a
//! p99 sojourn SLO, with 1k and 10k simulated concurrent clients.
//!
//! Three phases, all on the simulated clock:
//!
//! 1. **Rate sweep** (deterministic, caller-pumped executor): for each
//!    client count, submit `clients` queries at evenly spaced virtual
//!    arrival times for each offered rate and measure the p99 sojourn
//!    (arrival → completion, including virtual queueing behind the
//!    modeled backend slots). The headline is the measured `qps_sim` at
//!    the highest offered rate whose p99 stays under the SLO — the knee
//!    of the latency/throughput curve the paper's cost model prices.
//! 2. **Concurrency check**: burst all 10k arrivals at t=0 through a
//!    4-thread executor and assert `peak_in_flight ≥ 10_000` — 10k
//!    queries in flight over ≤ 8 OS threads, the tentpole claim.
//! 3. **Equality check**: the async path must return byte-for-byte the
//!    same hits as the sync worker-pool path on an identical workload.
//!
//! Exit-coded: any failed check exits non-zero, like the other gated
//! benches.

use airphant::{
    AsyncQueryServer, AsyncServerConfig, AsyncTicket, Query, QueryOptions, QueryServer,
    SearchResult, Searcher, ServerConfig, StagedEngine, SubmitSpec,
};
use airphant_bench::report::ms;
use airphant_bench::{BenchEnv, DatasetKind, DatasetSpec, Headline, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::{LatencyModel, SimDuration};
use std::sync::Arc;

/// p99 sojourn SLO the "max sustainable" search is measured against.
const SLO_MS: f64 = 400.0;
/// Offered rates (queries per simulated second) swept per client count.
const RATE_SWEEP: [f64; 5] = [100.0, 250.0, 400.0, 550.0, 700.0];
/// Modeled backend concurrency for the sweep.
const STORAGE_SLOTS: usize = 64;

fn canonical(result: &SearchResult) -> String {
    let mut v: Vec<String> = result
        .hits
        .iter()
        .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
        .collect();
    v.sort();
    v.join("|")
}

fn open_searcher(env: &BenchEnv, seed: u64) -> Arc<Searcher> {
    let view = env.cloud_view(LatencyModel::gcs_like(), seed);
    Arc::new(Searcher::open(view, "idx/airphant").expect("open airphant"))
}

/// Serve `clients` queries arriving at `rate` qps_sim through a fresh
/// caller-pumped async server; returns `(qps_sim, p99_sojourn_ms)`.
fn run_rate_point(
    env: &BenchEnv,
    workload: &QueryWorkload,
    clients: usize,
    rate: f64,
    report: &mut Report,
) -> (f64, f64) {
    // Fresh latency stream per point so every point replays the same
    // sampled world and only the offered rate differs.
    let searcher = open_searcher(env, 42);
    let server = AsyncQueryServer::start(
        searcher as Arc<dyn StagedEngine>,
        AsyncServerConfig::new()
            .with_executor_threads(0)
            .with_storage_slots(STORAGE_SLOTS),
    );
    let words: Vec<&str> = workload.iter().collect();
    let tickets: Vec<AsyncTicket> = (0..clients)
        .map(|i| {
            let arrival = SimDuration::from_secs_f64(i as f64 / rate);
            server.submit_at(
                Query::term(words[i % words.len()]),
                QueryOptions::new().top_k(10),
                SubmitSpec::new().at(arrival),
            )
        })
        .collect();
    server.drain();
    for t in tickets {
        t.wait().result.expect("admitted and served");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed as usize, clients);
    let p99 = stats.latency_p99_ms;
    report.push(
        vec![
            clients.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}", stats.qps_sim),
            ms(stats.latency_p50_ms),
            ms(p99),
            if p99 <= SLO_MS { "yes" } else { "no" }.to_string(),
        ],
        serde_json::json!({
            "clients": clients,
            "offered_qps": rate,
            "qps_sim": stats.qps_sim,
            "sojourn_p50_ms": stats.latency_p50_ms,
            "sojourn_p99_ms": p99,
            "wait_p99_ms": stats.wait_p99_ms,
            "within_slo": p99 <= SLO_MS,
            "storage_slots": STORAGE_SLOTS,
        }),
    );
    (stats.qps_sim, p99)
}

fn main() {
    let spec = DatasetSpec {
        kind: DatasetKind::Zipf,
        n_docs: 5_000,
        seed: 23,
    };
    let config = airphant::AirphantConfig::default()
        .with_total_bins(1_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &config);
    let workload = QueryWorkload::frequency_weighted(env.profile(), 512, 7);

    let mut ok = true;
    let mut report = Report::new(
        "admission",
        &[
            "clients",
            "offered_qps",
            "qps_sim",
            "sojourn_p50",
            "sojourn_p99",
            "within_slo",
        ],
    );

    // Phase 1: the rate sweep, 1k and 10k concurrent clients.
    let mut sustainable: Vec<(usize, f64)> = Vec::new();
    for &clients in &[1_000usize, 10_000] {
        let mut best: Option<f64> = None;
        for &rate in &RATE_SWEEP {
            let (qps, p99) = run_rate_point(&env, &workload, clients, rate, &mut report);
            if p99 <= SLO_MS {
                best = Some(qps);
            }
        }
        match best {
            Some(qps) => {
                println!(
                    "max sustainable ({clients} clients, p99 ≤ {SLO_MS:.0}ms): {qps:.1} qps_sim"
                );
                sustainable.push((clients, qps));
            }
            None => {
                eprintln!(
                    "FAIL: no swept rate meets the {SLO_MS:.0}ms p99 SLO for {clients} clients"
                );
                ok = false;
            }
        }
    }
    report.finish();

    // Phase 2: 10k in flight at once over 4 executor threads.
    {
        let searcher = open_searcher(&env, 43);
        let threads = 4usize;
        assert!(threads <= 8, "the claim is ≤ 8 OS threads");
        let server = AsyncQueryServer::start(
            searcher as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(threads)
                .with_storage_slots(STORAGE_SLOTS),
        );
        let words: Vec<&str> = workload.iter().collect();
        let tickets: Vec<AsyncTicket> = (0..10_000)
            .map(|i| {
                server.submit_at(
                    Query::term(words[i % words.len()]),
                    QueryOptions::new().top_k(10),
                    SubmitSpec::new().at(SimDuration::ZERO),
                )
            })
            .collect();
        for t in tickets {
            t.wait().result.expect("served");
        }
        let stats = server.shutdown();
        println!(
            "burst check: {} completed, peak_in_flight {} over {threads} OS threads",
            stats.completed, stats.peak_in_flight
        );
        if stats.peak_in_flight < 10_000 {
            eprintln!(
                "FAIL: peak_in_flight {} < 10000 — the burst did not overlap",
                stats.peak_in_flight
            );
            ok = false;
        }
        if stats.completed != 10_000 {
            eprintln!(
                "FAIL: only {} of 10000 burst queries completed",
                stats.completed
            );
            ok = false;
        }
    }

    // Phase 3: async results == sync worker-pool results, byte for byte.
    {
        let searcher = open_searcher(&env, 44);
        let queries: Vec<Query> = workload.iter().take(200).map(Query::term).collect();
        let sync_server = QueryServer::start(
            searcher.clone(),
            ServerConfig::new().with_workers(4).with_queue_capacity(64),
        );
        let sync_results: Vec<String> = queries
            .iter()
            .map(|q| {
                canonical(
                    &sync_server
                        .execute(q, &QueryOptions::new().top_k(10))
                        .expect("sync served"),
                )
            })
            .collect();
        drop(sync_server);
        let async_server = AsyncQueryServer::start(
            searcher as Arc<dyn StagedEngine>,
            AsyncServerConfig::new().with_executor_threads(0),
        );
        let tickets: Vec<AsyncTicket> = queries
            .iter()
            .map(|q| {
                async_server.submit_at(q.clone(), QueryOptions::new().top_k(10), SubmitSpec::new())
            })
            .collect();
        async_server.drain();
        let mut mismatches = 0usize;
        for (i, t) in tickets.into_iter().enumerate() {
            let got = canonical(&t.wait().result.expect("async served"));
            if got != sync_results[i] {
                mismatches += 1;
            }
        }
        println!(
            "equality check: {} queries, {} mismatch(es)",
            queries.len(),
            mismatches
        );
        if mismatches > 0 {
            eprintln!("FAIL: async results diverged from the sync worker pool");
            ok = false;
        }
    }

    // The headline: sustainable qps with 10k clients (falls back to the
    // 1k figure only if the 10k sweep never met the SLO, which is
    // itself a failure above).
    if let Some(&(clients, qps)) = sustainable.iter().find(|(c, _)| *c == 10_000) {
        Headline::new(
            "admission",
            "sustainable_qps_sim",
            qps,
            "qps",
            serde_json::json!({
                "clients": clients,
                "slo_p99_ms": SLO_MS,
                "storage_slots": STORAGE_SLOTS,
                "rates_swept": RATE_SWEEP,
                "n_docs": 5_000,
            }),
        )
        .write();
    }

    if !ok {
        std::process::exit(1);
    }
    println!("admission bench: all checks OK");
}
