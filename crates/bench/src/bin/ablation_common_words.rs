//! Ablation (DESIGN.md §6): effect of the 1% exact common-word bins
//! (§IV-E) on the skewed Windows-like corpus — query latency and bytes
//! fetched for common vs rare words, with and without the reservation.

use airphant::{AirphantConfig, Searcher};
use airphant_bench::report::ms;
use airphant_bench::{paper_datasets, summarize, BenchEnv, DatasetKind, Report};
use airphant_corpus::QueryWorkload;
use airphant_storage::LatencyModel;

fn main() {
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.kind == DatasetKind::Windows)
        .unwrap();
    let base = AirphantConfig::default()
        .with_total_bins(1_000)
        .with_seed(1);
    let env = BenchEnv::prepare(spec, &base);

    // Split the vocabulary: the 10 most document-frequent words vs 30 rare.
    let by_freq = env.profile().vocabulary_by_frequency();
    let common_words: Vec<String> = by_freq.iter().take(10).map(|(w, _)| w.clone()).collect();
    let rare_words: Vec<String> = by_freq
        .iter()
        .rev()
        .take(30)
        .map(|(w, _)| w.clone())
        .collect();

    let mut report = Report::new(
        "ablation_common_words",
        &[
            "config",
            "word_class",
            "search_ms",
            "bytes/query",
            "fp/query",
        ],
    );
    for (label, fraction) in [("with-common-bins", 0.01f64), ("no-common-bins", 0.0)] {
        let prefix = format!("idx/{label}");
        let config = AirphantConfig::default()
            .with_total_bins(1_000)
            .with_common_fraction(fraction)
            .with_manual_layers(2)
            .with_seed(1);
        let raw = env.cloud_view(LatencyModel::instantaneous(), 0);
        let corpus = airphant_corpus::Corpus::new(
            raw.clone(),
            raw.list("corpora/").expect("list"),
            std::sync::Arc::new(airphant_corpus::LineSplitter),
            std::sync::Arc::new(airphant_corpus::WhitespaceTokenizer),
        );
        airphant::Builder::new(config)
            .build_with_profile(&corpus, &prefix, env.profile().clone())
            .expect("build");
        let view = env.cloud_view(LatencyModel::gcs_like(), 42);
        let searcher = Searcher::open(view, &prefix).expect("open");

        for (class, words) in [("common", &common_words), ("rare", &rare_words)] {
            let workload = QueryWorkload::from_words(words.clone());
            let mut lat = Vec::new();
            let mut bytes = 0u64;
            let mut fp = 0usize;
            for w in workload.iter() {
                let r = searcher.search(w, Some(10)).expect("search");
                lat.push(r.latency().as_millis_f64());
                bytes += r.trace.bytes();
                fp += r.false_positives_removed;
            }
            let stats = summarize(&lat);
            report.push(
                vec![
                    label.to_string(),
                    class.to_string(),
                    ms(stats.mean_ms),
                    (bytes / workload.len() as u64).to_string(),
                    format!("{:.2}", fp as f64 / workload.len() as f64),
                ],
                serde_json::json!({
                    "config": label,
                    "word_class": class,
                    "search_mean_ms": stats.mean_ms,
                    "bytes_per_query": bytes / workload.len() as u64,
                    "fp_per_query": fp as f64 / workload.len() as f64,
                }),
            );
        }
        eprintln!("done: {label}");
    }
    report.finish();
    println!("expected: without the reservation, common words flood their bins' superposts —");
    println!("rare-word queries co-hashed with them fetch more bytes and see more FPs.");
}
