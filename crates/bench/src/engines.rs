//! Engine construction for the comparison experiments: builds all five
//! systems' indexes over one corpus, then opens them against a simulated
//! cloud store.

use crate::datasets::{build_dataset, DatasetSpec};
use airphant::{AirphantConfig, SearchEngine, Searcher};
use airphant_baselines::{
    BTreeBuilder, BTreeEngine, ElasticBuilder, ElasticEngine, HashTableEngine, SkipListBuilder,
    SkipListEngine,
};
use airphant_corpus::{CorpusProfile, QueryWorkload};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

/// The five engines of the paper's comparison figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Apache Lucene stand-in (skip-list term index).
    Lucene,
    /// Elasticsearch stand-in (searchable-snapshot skip list).
    Elasticsearch,
    /// SQLite stand-in (paged B+tree term index).
    Sqlite,
    /// Naïve hash table (IoU with L = 1).
    HashTable,
    /// This work.
    Airphant,
}

impl EngineKind {
    /// All five, in the paper's legend order.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Lucene,
            EngineKind::Elasticsearch,
            EngineKind::Sqlite,
            EngineKind::HashTable,
            EngineKind::Airphant,
        ]
    }

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Lucene => "Lucene",
            EngineKind::Elasticsearch => "Elasticsearch",
            EngineKind::Sqlite => "SQLite",
            EngineKind::HashTable => "HashTable",
            EngineKind::Airphant => "AIRPHANT",
        }
    }
}

/// A fully built benchmark environment for one corpus: the raw data and
/// every engine's persisted index live in `inner`; queries run through a
/// latency-simulating view of it.
pub struct BenchEnv {
    inner: Arc<InMemoryStore>,
    spec: DatasetSpec,
    profile: CorpusProfile,
}

impl BenchEnv {
    /// Generate the corpus and build all five engines' indexes (builds run
    /// against the raw store — the paper builds on a beefy VM and measures
    /// only query latency).
    pub fn prepare(spec: DatasetSpec, config: &AirphantConfig) -> Self {
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        let corpus = build_dataset(spec, store);
        let profile = corpus.profile().expect("profiling");

        airphant::Builder::new(config.clone())
            .build_with_profile(&corpus, "idx/airphant", profile.clone())
            .expect("airphant build");
        HashTableEngine::build(&corpus, "idx/hashtable", config).expect("hashtable build");
        BTreeBuilder::build(&corpus, "idx/sqlite").expect("btree build");
        SkipListBuilder::build(&corpus, "idx/lucene").expect("skiplist build");
        ElasticBuilder::build(&corpus, "idx/elastic").expect("elastic build");

        BenchEnv {
            inner,
            spec,
            profile,
        }
    }

    /// The dataset spec this environment was built from.
    pub fn spec(&self) -> DatasetSpec {
        self.spec
    }

    /// The corpus profile (for workload generation and Table II).
    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    /// A fresh latency-simulating view over the shared data.
    pub fn cloud_view(&self, model: LatencyModel, seed: u64) -> Arc<dyn ObjectStore> {
        Arc::new(SimulatedCloudStore::new(self.inner.clone(), model, seed))
    }

    /// The raw shared backend (zero latency) — for custom store stacks
    /// such as the cache ablation.
    pub fn raw_store(&self) -> Arc<InMemoryStore> {
        self.inner.clone()
    }

    /// Open one engine against the given cloud view.
    pub fn open_engine(
        &self,
        kind: EngineKind,
        store: Arc<dyn ObjectStore>,
    ) -> Box<dyn SearchEngine> {
        match kind {
            EngineKind::Airphant => {
                Box::new(Searcher::open(store, "idx/airphant").expect("open airphant"))
            }
            EngineKind::HashTable => {
                Box::new(HashTableEngine::open(store, "idx/hashtable").expect("open hashtable"))
            }
            EngineKind::Sqlite => {
                Box::new(BTreeEngine::open(store, "idx/sqlite").expect("open sqlite"))
            }
            EngineKind::Lucene => {
                Box::new(SkipListEngine::open(store, "idx/lucene").expect("open lucene"))
            }
            EngineKind::Elasticsearch => {
                Box::new(ElasticEngine::open(store, "idx/elastic").expect("open elastic"))
            }
        }
    }

    /// Open all five engines, each with its own seeded cloud view so
    /// latency draws are independent.
    pub fn open_all(&self, model: &LatencyModel, seed: u64) -> EngineSet {
        EngineKind::all()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| {
                let view = self.cloud_view(model.clone(), seed.wrapping_add(i as u64 * 7919));
                (kind, self.open_engine(kind, view))
            })
            .collect()
    }

    /// A seeded uniform query workload over this corpus's vocabulary.
    pub fn workload(&self, n: usize, seed: u64) -> QueryWorkload {
        QueryWorkload::uniform(&self.profile, n, seed)
    }
}

/// Default bin budget for the comparison experiments.
///
/// The paper fixes `B = 10^5` for every corpus. Cranfield is generated at
/// its full 1398-document scale, so it keeps the paper's exact budget; the
/// other corpora are scaled down ~10^3× and get a budget that preserves
/// the paper's terms-per-bin regime (tens of words merged per bin).
pub fn default_bins(kind: crate::datasets::DatasetKind) -> usize {
    match kind {
        crate::datasets::DatasetKind::Cranfield => 100_000,
        _ => 500,
    }
}

/// A set of opened engines, labelled by kind.
pub type EngineSet = Vec<(EngineKind, Box<dyn SearchEngine>)>;

/// Convenience: prepare an environment and open all engines in one call.
pub fn build_all_engines(
    spec: DatasetSpec,
    config: &AirphantConfig,
    model: &LatencyModel,
    seed: u64,
) -> (BenchEnv, EngineSet) {
    let env = BenchEnv::prepare(spec, config);
    let engines = env.open_all(model, seed);
    (env, engines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn all_five_engines_answer_identically() {
        let spec = DatasetSpec {
            kind: DatasetKind::Spark,
            n_docs: 2_000,
            seed: 5,
        };
        let config = AirphantConfig::default()
            .with_total_bins(1_000)
            .with_seed(1);
        let (env, engines) = build_all_engines(spec, &config, &LatencyModel::instantaneous(), 3);
        let workload = env.workload(10, 9);
        for word in workload.iter() {
            let mut counts = Vec::new();
            for (kind, engine) in &engines {
                let r = engine.search(word, None).unwrap();
                counts.push((kind.label(), r.hits.len()));
            }
            let first = counts[0].1;
            assert!(
                counts.iter().all(|&(_, c)| c == first),
                "engines disagree on '{word}': {counts:?}"
            );
            assert!(first > 0, "workload words must occur: '{word}'");
        }
    }

    #[test]
    fn airphant_is_fastest_on_cloud() {
        let spec = DatasetSpec {
            kind: DatasetKind::Hdfs,
            n_docs: 3_000,
            seed: 6,
        };
        let config = AirphantConfig::default()
            .with_total_bins(1_500)
            .with_seed(2);
        let (env, engines) = build_all_engines(spec, &config, &LatencyModel::gcs_like(), 4);
        let workload = env.workload(15, 11);
        let mut means = std::collections::HashMap::new();
        for (kind, engine) in &engines {
            let total: f64 = workload
                .iter()
                .map(|w| {
                    engine
                        .search(w, Some(10))
                        .unwrap()
                        .latency()
                        .as_millis_f64()
                })
                .sum();
            means.insert(*kind, total / workload.len() as f64);
        }
        let airphant = means[&EngineKind::Airphant];
        for kind in [EngineKind::Lucene, EngineKind::Sqlite] {
            assert!(
                airphant < means[&kind],
                "AIRPHANT ({airphant:.1} ms) should beat {} ({:.1} ms)",
                kind.label(),
                means[&kind]
            );
        }
    }
}
