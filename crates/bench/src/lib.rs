//! # airphant-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§V and the appendices). Every binary prints the same
//! rows/series the paper reports and writes machine-readable JSON under
//! `bench_results/`.
//!
//! Run them all via `cargo run -p airphant-bench --release --bin <name>`;
//! the full list is in DESIGN.md §5. Corpora are *scaled-down* look-alikes
//! of the paper's datasets (see DESIGN.md §4 and EXPERIMENTS.md); bin
//! budgets scale with vocabulary so the structural regimes match.
//!
//! Binaries with a headline metric additionally publish it as a
//! [`Headline`] record (`bench_results/BENCH_<name>.json`), which the
//! `perf_gate` binary diffs against the committed baseline in CI — see
//! `docs/adr/004-sharded-serving.md`.

#![warn(missing_docs)]

pub mod cost;
pub mod datasets;
pub mod engines;
pub mod measure;
pub mod report;

pub use cost::{airphant_monthly_cost, elastic_monthly_cost, relative_cost, CostParams};
pub use datasets::{build_dataset, paper_datasets, DatasetKind, DatasetSpec};
pub use engines::{build_all_engines, BenchEnv, EngineKind};
pub use measure::{
    lookup_latencies, mean_false_positives, mean_round_trips, percentile, search_latencies,
    summarize, wait_download_pairs, LatencyStats,
};
pub use report::{Comparison, Headline, Report};
