//! Latency measurement helpers: run workloads, summarize distributions.

use airphant::SearchEngine;
use airphant_corpus::QueryWorkload;
use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample, in milliseconds — the mean and
/// 99th percentile every figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: f64,
    /// Minimum.
    pub min_ms: f64,
    /// Maximum.
    pub max_ms: f64,
    /// Sample count.
    pub n: usize,
}

/// Nearest-rank percentile of `sorted` (must be ascending), `q ∈ [0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarize a latency sample (milliseconds).
pub fn summarize(samples: &[f64]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats {
            mean_ms: 0.0,
            p99_ms: 0.0,
            min_ms: 0.0,
            max_ms: 0.0,
            n: 0,
        };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LatencyStats {
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p99_ms: percentile(&sorted, 0.99),
        min_ms: sorted[0],
        max_ms: *sorted.last().unwrap(),
        n: sorted.len(),
    }
}

/// Run the full-search workload and return per-query simulated latencies
/// in milliseconds.
pub fn search_latencies(
    engine: &dyn SearchEngine,
    workload: &QueryWorkload,
    top_k: Option<usize>,
) -> Vec<f64> {
    workload
        .iter()
        .map(|w| {
            engine
                .search(w, top_k)
                .expect("search")
                .latency()
                .as_millis_f64()
        })
        .collect()
}

/// Run the lookup-only workload (term-index latency, Figure 14).
pub fn lookup_latencies(engine: &dyn SearchEngine, workload: &QueryWorkload) -> Vec<f64> {
    workload
        .iter()
        .map(|w| engine.lookup(w).expect("lookup").1.total().as_millis_f64())
        .collect()
}

/// Per-query `(wait_ms, download_ms)` pairs (Figures 8 and 11).
pub fn wait_download_pairs(
    engine: &dyn SearchEngine,
    workload: &QueryWorkload,
    top_k: Option<usize>,
) -> Vec<(f64, f64)> {
    workload
        .iter()
        .map(|w| {
            let r = engine.search(w, top_k).expect("search");
            (
                r.trace.wait().as_millis_f64(),
                r.trace.download().as_millis_f64(),
            )
        })
        .collect()
}

/// Mean dependent storage round trips per query — the single-batch
/// guarantee metric: ~2 for Airphant (one superpost batch + one document
/// batch) regardless of query shape, higher for hierarchical indexes.
pub fn mean_round_trips(
    engine: &dyn SearchEngine,
    workload: &QueryWorkload,
    top_k: Option<usize>,
) -> f64 {
    let total: u64 = workload
        .iter()
        .map(|w| engine.search(w, top_k).expect("search").trace.round_trips())
        .sum();
    total as f64 / workload.len().max(1) as f64
}

/// Average observed false positives per query for a sketch-backed engine.
pub fn mean_false_positives(engine: &dyn SearchEngine, workload: &QueryWorkload) -> f64 {
    let total: usize = workload
        .iter()
        .map(|w| {
            engine
                .search(w, None)
                .expect("search")
                .false_positives_removed
        })
        .sum();
    total as f64 / workload.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 0.5), 50.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summarize_basic() {
        let stats = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.mean_ms, 2.5);
        assert_eq!(stats.min_ms, 1.0);
        assert_eq!(stats.max_ms, 4.0);
        assert_eq!(stats.n, 4);
        assert_eq!(summarize(&[]).n, 0);
    }
}
