//! The Airphant Searcher (§III-C0c): initialization and querying.
//!
//! * **Initialization** (once per corpus): download the header block,
//!   reconstruct the hash functions and the MHT in memory. The footprint is
//!   `O(B)` — about 2 MB at the paper's `B = 10^5`.
//! * **Querying**: hash the query word to collect `L` superpost pointers,
//!   fetch all `L` superposts in a *single batch of concurrent requests*,
//!   intersect them, fetch the candidate documents, and filter out false
//!   positives by examining document content (restoring perfect precision).

use crate::builder::header_blob;
use crate::error::AirphantError;
use crate::result::SearchResult;
use crate::retrieval::{contains_word, fetch_and_filter};
use crate::Result;
use airphant_corpus::{Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, PhaseKind, QueryTrace, RangeRequest, SimDuration};
use iou_sketch::encoding::decode_superpost;
use iou_sketch::mht::WordLookup;
use iou_sketch::{
    intersect_views, sample_size_for_top_k, HeaderBlock, Mht, PostingsList, SegmentFormat,
    SuperpostView,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A lightweight query server over a cloud-persisted Airphant index.
pub struct Searcher {
    store: Arc<dyn ObjectStore>,
    prefix: String,
    mht: Mht,
    tokenizer: Arc<dyn Tokenizer>,
    init_trace: QueryTrace,
    accuracy_f0: f64,
    /// Modeled expected false positives of the built structure — drives
    /// the top-K sample size (Equation 6).
    expected_fp: f64,
    topk_delta: f64,
    optimal_layers: usize,
    /// What was on the wire when the header was decoded (version, and the
    /// layer directory for v2).
    format: SegmentFormat,
}

impl Searcher {
    /// Initialize from the index under `prefix`: fetches the header block
    /// and reconstructs the MHT. Uses the whitespace tokenizer (the
    /// experiments' analyzer); see [`Searcher::open_with_tokenizer`].
    pub fn open(store: Arc<dyn ObjectStore>, prefix: &str) -> Result<Self> {
        Self::open_with_tokenizer(store, prefix, Arc::new(WhitespaceTokenizer))
    }

    /// Initialize with a custom document-word parser (must match the one
    /// the corpus was indexed with).
    pub fn open_with_tokenizer(
        store: Arc<dyn ObjectStore>,
        prefix: &str,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<Self> {
        let header_name = header_blob(prefix);
        if !store.exists(&header_name) {
            return Err(AirphantError::IndexNotFound {
                prefix: prefix.to_owned(),
            });
        }
        let mut init_trace = QueryTrace::new();
        // The header is Index-class by definition: fetch it as a ranged
        // read carrying the tier hint so a tiered cache pins it against
        // Data traffic (reopen-heavy serverless workloads reuse it).
        let header_len = store.size_of(&header_name)?;
        let batch = store.get_ranges(&[RangeRequest::index(&header_name, 0, header_len)])?;
        init_trace.record_batch(PhaseKind::Init, &batch);
        let (header, format) = HeaderBlock::decode_any_bytes(&batch.parts[0].bytes)?;
        let mht = Mht::from_header(header);
        let accuracy_f0 = mht
            .meta_value("f0")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let expected_fp = mht
            .meta_value("expected_fp")
            .and_then(|v| v.parse().ok())
            .unwrap_or(accuracy_f0);
        let topk_delta = mht
            .meta_value("topk_delta")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-6);
        let optimal_layers = mht
            .meta_value("optimal_layers")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| mht.layers());
        Ok(Searcher {
            store,
            prefix: prefix.to_owned(),
            mht,
            tokenizer,
            init_trace,
            accuracy_f0,
            expected_fp,
            topk_delta,
            optimal_layers,
            format,
        })
    }

    /// The in-memory MHT.
    pub fn mht(&self) -> &Mht {
        &self.mht
    }

    /// The index prefix this Searcher was opened on.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The index-time vocabulary, when the segment carries one (format v2
    /// built with prefix/fuzzy support). Backs [`Query::Prefix`],
    /// [`Query::Fuzzy`], and the short-substring fallback; `None` means
    /// those atoms surface a typed
    /// [`AirphantError::UnsupportedQuery`](crate::AirphantError::UnsupportedQuery).
    ///
    /// [`Query::Prefix`]: crate::Query::Prefix
    /// [`Query::Fuzzy`]: crate::Query::Fuzzy
    pub fn vocab(&self) -> Option<&Arc<iou_sketch::Vocabulary>> {
        self.mht.vocab()
    }

    /// The on-wire format the index header was decoded from (version, and
    /// the layer directory for v2).
    pub fn format(&self) -> &SegmentFormat {
        &self.format
    }

    /// Simulated cost of initialization (header download).
    pub fn init_trace(&self) -> &QueryTrace {
        &self.init_trace
    }

    /// The accuracy constraint the index was built with.
    pub fn accuracy_f0(&self) -> f64 {
        self.accuracy_f0
    }

    /// The optimized layer count `L*` (≤ built layers when overprovisioned).
    pub fn optimal_layers(&self) -> usize {
        self.optimal_layers
    }

    /// Approximate Searcher memory footprint (the MHT dominates).
    pub fn memory_bytes(&self) -> usize {
        self.mht.approx_memory_bytes()
    }

    pub(crate) fn resolve_block(&self, block: u32) -> String {
        crate::builder::block_blob(&self.prefix, block)
    }

    /// Modeled expected false positives per query (drives Equation 6).
    pub(crate) fn expected_fp(&self) -> f64 {
        self.expected_fp
    }

    /// The index's top-K failure probability δ.
    pub(crate) fn topk_delta(&self) -> f64 {
        self.topk_delta
    }

    /// Crate-internal access to the underlying store (boolean queries,
    /// engine adapters).
    pub(crate) fn store_dyn(&self) -> &dyn ObjectStore {
        self.store.as_ref()
    }

    /// Total bytes of index structures persisted under this index's prefix
    /// (header + superpost blocks).
    pub fn index_usage_bytes(&self) -> u64 {
        self.store.usage(&format!("{}/", self.prefix)).unwrap_or(0)
    }

    /// Term-index lookup (§II-A workflow steps 1–2): resolve the word to
    /// superpost pointers, fetch them in one concurrent batch, decode, and
    /// intersect. Returns the final postings list and the lookup trace —
    /// the quantity Figure 14 and Figure 10c measure.
    pub fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.lookup_waiting_for(word, self.mht.layers())
    }

    /// Straggler-resilient lookup (§IV-G): issue all `L+` superpost
    /// requests but continue once the fastest `wait_for` have arrived,
    /// discarding the stragglers. Accuracy degrades gracefully (the result
    /// is the intersection of the `wait_for` fastest superposts — a
    /// superset of the full intersection, still with no false negatives).
    pub fn lookup_waiting_for(
        &self,
        word: &str,
        wait_for: usize,
    ) -> Result<(PostingsList, QueryTrace)> {
        let mut trace = QueryTrace::new();
        match self.mht.lookup(word) {
            WordLookup::Common(ptr) => {
                let req = [RangeRequest::superpost(
                    self.resolve_block(ptr.block),
                    ptr.offset,
                    ptr.len as u64,
                )];
                let batch = self.store.get_ranges(&req)?;
                trace.record_batch(PhaseKind::Postings, &batch);
                let list = decode_superpost(&batch.parts[0].bytes)?;
                Ok((list, trace))
            }
            WordLookup::Sketched(ptrs) => {
                let requests: Vec<RangeRequest> = ptrs
                    .iter()
                    .map(|p| {
                        RangeRequest::superpost(self.resolve_block(p.block), p.offset, p.len as u64)
                    })
                    .collect();
                let batch = self.store.get_ranges(&requests)?;
                let wait_for = wait_for.clamp(1, batch.parts.len().max(1));
                if wait_for == batch.parts.len() {
                    trace.record_batch(PhaseKind::Postings, &batch);
                    let compute_start = std::time::Instant::now();
                    let views: Vec<SuperpostView> = batch
                        .parts
                        .iter()
                        .map(|p| SuperpostView::parse(p.bytes.clone()))
                        .collect::<iou_sketch::Result<_>>()?;
                    let refs: Vec<&SuperpostView> = views.iter().collect();
                    let out = intersect_views(&refs);
                    trace.record_compute(SimDuration::from_secs_f64(
                        compute_start.elapsed().as_secs_f64(),
                    ));
                    Ok((out, trace))
                } else {
                    // Keep only the `wait_for` fastest streams: the batch's
                    // effective wait is the wait_for-th smallest
                    // time-to-first-byte, and only the chosen parts' bytes
                    // are downloaded (the rest are aborted).
                    let mut order: Vec<usize> = (0..batch.parts.len()).collect();
                    order.sort_by_key(|&i| batch.parts[i].latency.first_byte);
                    let chosen = &order[..wait_for];
                    let wait = batch.parts[chosen[wait_for - 1]].latency.first_byte;
                    let download: SimDuration = chosen
                        .iter()
                        .map(|&i| batch.parts[i].latency.transfer)
                        .sum();
                    let bytes: u64 = chosen
                        .iter()
                        .map(|&i| batch.parts[i].bytes.len() as u64)
                        .sum();
                    // One concurrent batch was issued; only the fastest
                    // streams were kept. Still a single round trip.
                    trace.record_concurrent(
                        PhaseKind::Postings,
                        wait_for as u64,
                        bytes,
                        wait,
                        download,
                    );
                    let compute_start = std::time::Instant::now();
                    let views: Vec<SuperpostView> = chosen
                        .iter()
                        .map(|&i| SuperpostView::parse(batch.parts[i].bytes.clone()))
                        .collect::<iou_sketch::Result<_>>()?;
                    let refs: Vec<&SuperpostView> = views.iter().collect();
                    let out = intersect_views(&refs);
                    trace.record_compute(SimDuration::from_secs_f64(
                        compute_start.elapsed().as_secs_f64(),
                    ));
                    Ok((out, trace))
                }
            }
        }
    }

    /// Timeout-based straggler mitigation — "the simplest mitigation is
    /// then to set a timeout before aborting the trailing request"
    /// (§IV-G). Superposts whose time-to-first-byte exceeds `timeout` are
    /// discarded (unless *none* arrive in time, in which case the fastest
    /// one is kept so the query still answers). The result intersects only
    /// the surviving layers: still no false negatives, possibly more false
    /// positives.
    pub fn lookup_with_timeout(
        &self,
        word: &str,
        timeout: SimDuration,
    ) -> Result<(PostingsList, QueryTrace)> {
        let mut trace = QueryTrace::new();
        match self.mht.lookup(word) {
            WordLookup::Common(ptr) => {
                let req = [RangeRequest::superpost(
                    self.resolve_block(ptr.block),
                    ptr.offset,
                    ptr.len as u64,
                )];
                let batch = self.store.get_ranges(&req)?;
                trace.record_batch(PhaseKind::Postings, &batch);
                Ok((decode_superpost(&batch.parts[0].bytes)?, trace))
            }
            WordLookup::Sketched(ptrs) => {
                let requests: Vec<RangeRequest> = ptrs
                    .iter()
                    .map(|p| {
                        RangeRequest::superpost(self.resolve_block(p.block), p.offset, p.len as u64)
                    })
                    .collect();
                let batch = self.store.get_ranges(&requests)?;
                let mut chosen: Vec<usize> = (0..batch.parts.len())
                    .filter(|&i| batch.parts[i].latency.first_byte <= timeout)
                    .collect();
                if chosen.is_empty() {
                    // Keep the single fastest stream: degrade, don't fail.
                    let fastest = (0..batch.parts.len())
                        .min_by_key(|&i| batch.parts[i].latency.first_byte)
                        .expect("non-empty batch");
                    chosen.push(fastest);
                }
                let wait = chosen
                    .iter()
                    .map(|&i| batch.parts[i].latency.first_byte)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let download: SimDuration = chosen
                    .iter()
                    .map(|&i| batch.parts[i].latency.transfer)
                    .sum();
                let bytes: u64 = chosen
                    .iter()
                    .map(|&i| batch.parts[i].bytes.len() as u64)
                    .sum();
                // One concurrent batch; stragglers beyond the timeout were
                // aborted, not re-requested. Still a single round trip.
                trace.record_concurrent(
                    PhaseKind::Postings,
                    chosen.len() as u64,
                    bytes,
                    wait,
                    download,
                );
                let compute_start = std::time::Instant::now();
                let views: Vec<SuperpostView> = chosen
                    .iter()
                    .map(|&i| SuperpostView::parse(batch.parts[i].bytes.clone()))
                    .collect::<iou_sketch::Result<_>>()?;
                let refs: Vec<&SuperpostView> = views.iter().collect();
                let out = intersect_views(&refs);
                trace.record_compute(SimDuration::from_secs_f64(
                    compute_start.elapsed().as_secs_f64(),
                ));
                Ok((out, trace))
            }
        }
    }

    /// Execute a [`Query`](crate::Query) through the single-batch planner
    /// (§III-C generalized): every term's and gram's superposts are
    /// fetched in **one** concurrent batch, the boolean algebra runs over
    /// the decoded postings, and one fetch-and-filter pass restores exact
    /// results.
    pub fn execute(
        &self,
        query: &crate::Query,
        opts: &crate::QueryOptions,
    ) -> Result<SearchResult> {
        crate::plan::execute_over(&[self], query, opts)
    }

    /// Index-lookup phase of [`Searcher::execute`] only: resolve the whole
    /// query's candidate postings in exactly one storage round trip
    /// (`trace.round_trips() == 1`). This is the compound-query
    /// counterpart of [`Searcher::lookup`].
    pub fn execute_lookup(&self, query: &crate::Query) -> Result<(PostingsList, QueryTrace)> {
        crate::plan::lookup_over(&[self], query)
    }

    /// Full keyword search (§II-A workflow): lookup, then fetch candidate
    /// documents and filter false positives by content. `top_k = Some(k)`
    /// enables the sampled fetch of §IV-D (Equation 6).
    ///
    /// Thin shim over [`Searcher::execute`] with a single
    /// [`Query::Term`](crate::Query::Term); kept for convenience and
    /// backward compatibility.
    pub fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(
            &crate::Query::term(word),
            &crate::QueryOptions::new().with_top_k(top_k),
        )
    }

    /// Search waiting for only the fastest `wait_for` superposts (§IV-G).
    pub fn search_waiting_for(
        &self,
        word: &str,
        wait_for: usize,
        top_k: Option<usize>,
    ) -> Result<SearchResult> {
        let (final_postings, mut trace) = self.lookup_waiting_for(word, wait_for)?;
        let candidates = final_postings.len();

        // Top-K sampling: fetch only R_K of the R candidates (Equation 6).
        // Uses the modeled expected FP of the built structure: for a
        // well-optimized sketch this is ≤ F0; for a degenerate structure
        // (e.g. the L=1 HashTable baseline) it is large, forcing a full
        // fetch as the paper's HashTable behaviour shows.
        let is_common = self.mht.lookup(word).is_common();
        let f0 = if is_common { 0.0 } else { self.expected_fp };
        let to_fetch: Vec<iou_sketch::Posting> = match top_k {
            Some(k) => {
                let rk = sample_size_for_top_k(k, candidates, f0, self.topk_delta);
                sample_postings(&final_postings, rk, seed_for(word))
            }
            None => final_postings.iter().copied().collect(),
        };

        let predicate = contains_word(self.tokenizer.as_ref(), word);
        let (mut hits, dropped) = fetch_and_filter(
            self.store.as_ref(),
            self.mht.string_table(),
            &to_fetch,
            &predicate,
            &mut trace,
        )?;
        if let Some(k) = top_k {
            hits.truncate(k);
        }
        Ok(SearchResult {
            hits,
            trace,
            candidates,
            false_positives_removed: dropped,
        })
    }

    /// Tokenizer used for false-positive filtering.
    pub fn tokenizer(&self) -> &Arc<dyn Tokenizer> {
        &self.tokenizer
    }
}

/// Deterministic per-word sampling seed.
pub(crate) fn seed_for(word: &str) -> u64 {
    iou_sketch::hash::fnv1a64(word.as_bytes())
}

/// Uniformly sample `k` postings without replacement (partial
/// Fisher–Yates), deterministic under `seed`.
pub(crate) fn sample_postings(
    list: &PostingsList,
    k: usize,
    seed: u64,
) -> Vec<iou_sketch::Posting> {
    let mut all: Vec<iou_sketch::Posting> = list.iter().copied().collect();
    let k = k.min(all.len());
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..k {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    all.truncate(k);
    all
}

trait WordLookupExt {
    fn is_common(&self) -> bool;
}

impl WordLookupExt for WordLookup {
    fn is_common(&self) -> bool {
        matches!(self, WordLookup::Common(_))
    }
}

// The whole read path is shared across query threads through a single
// `Arc<Searcher>`: per-query state (trace, candidates, samples) lives on
// the calling thread's stack, and the only shared mutability sits behind
// the store's own synchronization (cache LRU, RNG, counters).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Searcher>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use bytes::Bytes;

    fn build_corpus(store: Arc<dyn ObjectStore>, lines: &[&str]) -> Corpus {
        let blob = lines.join("\n");
        store.put("c/blob-0", Bytes::from(blob)).unwrap();
        Corpus::new(
            store,
            vec!["c/blob-0".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn build_index(store: Arc<dyn ObjectStore>, lines: &[&str], config: AirphantConfig) {
        let corpus = build_corpus(store, lines);
        Builder::new(config).build(&corpus, "idx").unwrap();
    }

    #[test]
    fn open_missing_index_errors() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        match Searcher::open(store, "nope") {
            Err(AirphantError::IndexNotFound { prefix }) => assert_eq!(prefix, "nope"),
            other => panic!("expected IndexNotFound, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn search_returns_exact_matches_only() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(
            store.clone(),
            &[
                "error disk failure",
                "info all good",
                "error network partition",
                "warn error imminent",
            ],
            AirphantConfig::default().with_total_bins(64),
        );
        let searcher = Searcher::open(store, "idx").unwrap();
        let result = searcher.search("error", None).unwrap();
        assert_eq!(result.hits.len(), 3);
        assert!(result.hits.iter().all(|h| h.text.contains("error")));
        // Perfect precision after filtering: no non-matching docs.
        let none = searcher.search("absent-word", None).unwrap();
        assert!(none.hits.is_empty());
    }

    #[test]
    fn search_has_no_false_negatives_under_tiny_sketch() {
        // A deliberately undersized sketch forces superpost collisions;
        // recall must still be perfect for every word.
        let lines: Vec<String> = (0..100)
            .map(|i| format!("word{} shared{} tail{}", i, i % 7, i % 3))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(
            store.clone(),
            &refs,
            AirphantConfig::default()
                .with_total_bins(32)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        );
        let searcher = Searcher::open(store, "idx").unwrap();
        for i in [0usize, 13, 57, 99] {
            let r = searcher.search(&format!("word{i}"), None).unwrap();
            assert_eq!(r.hits.len(), 1, "word{i} must be found");
        }
        let shared = searcher.search("shared0", None).unwrap();
        assert_eq!(shared.hits.len(), 100usize.div_ceil(7));
    }

    #[test]
    fn lookup_issues_single_concurrent_batch() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            42,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            build_index(
                s,
                &["alpha beta", "beta gamma", "gamma delta"],
                AirphantConfig::default()
                    .with_total_bins(64)
                    .with_manual_layers(3)
                    .with_common_fraction(0.0),
            );
        }
        store.reset_stats();
        let searcher = Searcher::open(store.clone(), "idx").unwrap();
        store.reset_stats(); // drop init traffic
        let (_, trace) = searcher.lookup("beta").unwrap();
        let stats = store.stats();
        assert_eq!(stats.batches, 1, "exactly one concurrent batch");
        assert_eq!(stats.read_requests, 3, "one request per layer");
        // Wait is ~one round-trip, not three.
        assert!(trace.wait().as_millis_f64() < 3.0 * 45.0);
        assert!(trace.wait().as_millis_f64() > 5.0);
    }

    #[test]
    fn common_word_lookup_is_exact_single_request() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        // "the" appears in every document → most common.
        build_index(
            store.clone(),
            &["the alpha", "the beta", "the gamma", "delta epsilon"],
            AirphantConfig::default()
                .with_total_bins(100)
                .with_manual_layers(2)
                .with_common_fraction(0.05),
        );
        let searcher = Searcher::open(store, "idx").unwrap();
        let (postings, trace) = searcher.lookup("the").unwrap();
        assert_eq!(postings.len(), 3);
        assert_eq!(trace.requests(), 1, "common word needs one pointer");
        let r = searcher.search("the", None).unwrap();
        assert_eq!(r.hits.len(), 3);
        assert_eq!(r.false_positives_removed, 0, "exact list has no FPs");
    }

    #[test]
    fn top_k_fetches_fewer_documents() {
        let lines: Vec<String> = (0..200).map(|i| format!("needle filler{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(
            store.clone(),
            &refs,
            AirphantConfig::default()
                .with_total_bins(512)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        );
        let searcher = Searcher::open(store, "idx").unwrap();
        let full = searcher.search("needle", None).unwrap();
        assert_eq!(full.hits.len(), 200);
        let topk = searcher.search("needle", Some(10)).unwrap();
        assert_eq!(topk.hits.len(), 10);
        // Equation 6: ~23 fetches for top-10 at delta=1e-6 — far below 200.
        assert!(
            topk.trace.requests() < full.trace.requests() / 3,
            "top-k should fetch far fewer docs: {} vs {}",
            topk.trace.requests(),
            full.trace.requests()
        );
    }

    #[test]
    fn waiting_for_fewer_layers_reduces_wait() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::builder().long_tail(0.3, 1.1).build(),
            7,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let lines: Vec<String> = (0..50).map(|i| format!("common word{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            build_index(
                s,
                &refs,
                AirphantConfig::default()
                    .with_total_bins(256)
                    .with_manual_layers(2)
                    .with_overprovision(4) // build 6 layers, need 2
                    .with_common_fraction(0.0),
            );
        }
        let searcher = Searcher::open(store.clone(), "idx").unwrap();
        assert_eq!(searcher.mht().layers(), 6);
        // Average over queries: waiting for 2-of-6 beats waiting for all 6
        // under a heavy-tailed latency model.
        let mut full_wait = 0.0;
        let mut fast_wait = 0.0;
        for i in 0..30 {
            let w = format!("word{i}");
            let (_, t_full) = searcher.lookup_waiting_for(&w, 6).unwrap();
            let (_, t_fast) = searcher.lookup_waiting_for(&w, 2).unwrap();
            full_wait += t_full.wait().as_millis_f64();
            fast_wait += t_fast.wait().as_millis_f64();
        }
        assert!(
            fast_wait < full_wait,
            "2-of-6 wait {fast_wait} should beat 6-of-6 {full_wait}"
        );
        // Recall is still perfect with the degraded intersection.
        let r = searcher.search_waiting_for("word7", 2, None).unwrap();
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn timeout_lookup_drops_stragglers_but_still_answers() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::builder().long_tail(0.5, 1.0).build(),
            13,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let lines: Vec<String> = (0..60).map(|i| format!("tok{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            build_index(
                s,
                &refs,
                AirphantConfig::default()
                    .with_total_bins(128)
                    .with_manual_layers(4)
                    .with_common_fraction(0.0),
            );
        }
        let searcher = Searcher::open(store, "idx").unwrap();
        let timeout = SimDuration::from_millis(120);
        let mut any_dropped = false;
        for i in 0..30 {
            let w = format!("tok{i}");
            let (postings, trace) = searcher.lookup_with_timeout(&w, timeout).unwrap();
            // Recall is preserved regardless of how many layers survived.
            assert!(
                postings.contains(&iou_sketch::Posting::new(0, 0, 1)) || !postings.is_empty(),
                "word {w} must resolve"
            );
            if trace.requests() < 4 {
                any_dropped = true;
                // Wait never exceeds the timeout when layers were dropped
                // (unless the all-slow fallback kicked in with 1 request).
                if trace.requests() > 1 {
                    assert!(trace.wait() <= timeout, "wait {} > timeout", trace.wait());
                }
            }
        }
        assert!(any_dropped, "heavy tail should trip the timeout sometimes");
    }

    #[test]
    fn timeout_lookup_on_calm_network_keeps_all_layers() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            3,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            build_index(
                s,
                &["alpha beta", "beta gamma"],
                AirphantConfig::default()
                    .with_total_bins(64)
                    .with_manual_layers(3)
                    .with_common_fraction(0.0),
            );
        }
        let searcher = Searcher::open(store, "idx").unwrap();
        let (_, trace) = searcher
            .lookup_with_timeout("beta", SimDuration::from_millis(10_000))
            .unwrap();
        assert_eq!(trace.requests(), 3, "generous timeout keeps all layers");
    }

    #[test]
    fn searcher_memory_is_small() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(
            store.clone(),
            &["a b c", "d e f"],
            AirphantConfig::default().with_total_bins(1_000),
        );
        let searcher = Searcher::open(store, "idx").unwrap();
        assert!(searcher.memory_bytes() < 64 * 1024);
        assert!(searcher.init_trace().bytes() > 0);
    }

    #[test]
    fn sample_postings_is_deterministic_and_unique() {
        let list = PostingsList::from_doc_ids(&(0..100).collect::<Vec<u64>>());
        let a = sample_postings(&list, 10, 42);
        let b = sample_postings(&list, 10, 42);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10, "sampling is without replacement");
        let all = sample_postings(&list, 1_000, 42);
        assert_eq!(all.len(), 100, "k > n clamps to n");
    }
}
