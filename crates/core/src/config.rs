//! Engine configuration ("Configuring Builder", §III-C0b).

use iou_sketch::FormatVersion;
use serde::{Deserialize, Serialize};

/// Configuration of an Airphant index build and its Searcher behaviour.
///
/// Defaults mirror the paper's experimental parameters (§V-A0c): `B = 10^5`
/// bins, accuracy constraint `F0 = 1`, top-K failure probability
/// `δ = 10^{-6}` with `K = 10`, and 1% of bins reserved for common words.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirphantConfig {
    /// Total bin budget `B` (common-word bins included).
    pub total_bins: usize,
    /// Accuracy constraint `F0`: expected false positives per query.
    pub accuracy_f0: f64,
    /// Fraction of bins holding exact postings of the most common words.
    pub common_fraction: f64,
    /// Manual layer override: skip profiling-based optimization
    /// ("users can also manually select the IoU Sketch structure").
    pub manual_layers: Option<usize>,
    /// Extra layers built beyond `L*` for straggler mitigation (§IV-G):
    /// a query may wait for only the fastest `L*` of `L* + overprovision`.
    pub overprovision_layers: usize,
    /// Failure probability `δ` for top-K sampling (Equation 6).
    pub topk_delta: f64,
    /// Target byte size of each compacted superpost block.
    pub block_target_bytes: usize,
    /// Seed for hash-family generation and sampling.
    pub seed: u64,
    /// On-wire segment format the Builder writes (readers accept both).
    pub format: FormatVersion,
}

impl Default for AirphantConfig {
    fn default() -> Self {
        AirphantConfig {
            total_bins: 100_000,
            accuracy_f0: 1.0,
            common_fraction: 0.01,
            manual_layers: None,
            overprovision_layers: 0,
            topk_delta: 1e-6,
            block_target_bytes: 4 * 1024 * 1024,
            seed: 0xA1B2_C3D4,
            format: FormatVersion::default(),
        }
    }
}

impl AirphantConfig {
    /// Set the total bin budget.
    pub fn with_total_bins(mut self, b: usize) -> Self {
        self.total_bins = b;
        self
    }

    /// Set the accuracy constraint `F0`.
    pub fn with_accuracy(mut self, f0: f64) -> Self {
        self.accuracy_f0 = f0;
        self
    }

    /// Fix the number of layers manually.
    pub fn with_manual_layers(mut self, layers: usize) -> Self {
        self.manual_layers = Some(layers);
        self
    }

    /// Set the common-word bin fraction.
    pub fn with_common_fraction(mut self, fraction: f64) -> Self {
        self.common_fraction = fraction;
        self
    }

    /// Build `extra` layers beyond the optimized `L*` (§IV-G replication).
    pub fn with_overprovision(mut self, extra: usize) -> Self {
        self.overprovision_layers = extra;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the on-wire segment format the Builder writes.
    pub fn with_format(mut self, format: FormatVersion) -> Self {
        self.format = format;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.total_bins == 0 {
            return Err(crate::AirphantError::InvalidConfig {
                reason: "total_bins must be positive".into(),
            });
        }
        if self.accuracy_f0 <= 0.0 {
            return Err(crate::AirphantError::InvalidConfig {
                reason: "accuracy_f0 must be positive".into(),
            });
        }
        if !(0.0..1.0).contains(&self.common_fraction) {
            return Err(crate::AirphantError::InvalidConfig {
                reason: "common_fraction must be in [0, 1)".into(),
            });
        }
        if !(0.0..1.0).contains(&self.topk_delta) || self.topk_delta == 0.0 {
            return Err(crate::AirphantError::InvalidConfig {
                reason: "topk_delta must be in (0, 1)".into(),
            });
        }
        if let Some(l) = self.manual_layers {
            if l == 0 {
                return Err(crate::AirphantError::InvalidConfig {
                    reason: "manual_layers must be >= 1".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = AirphantConfig::default();
        assert_eq!(c.total_bins, 100_000);
        assert_eq!(c.accuracy_f0, 1.0);
        assert_eq!(c.common_fraction, 0.01);
        assert_eq!(c.topk_delta, 1e-6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn format_defaults_to_v2() {
        assert_eq!(AirphantConfig::default().format, FormatVersion::V2);
        assert_eq!(
            AirphantConfig::default()
                .with_format(FormatVersion::V1)
                .format,
            FormatVersion::V1
        );
    }

    #[test]
    fn builder_style_setters() {
        let c = AirphantConfig::default()
            .with_total_bins(500)
            .with_accuracy(0.01)
            .with_manual_layers(4)
            .with_common_fraction(0.0)
            .with_overprovision(2)
            .with_seed(7);
        assert_eq!(c.total_bins, 500);
        assert_eq!(c.manual_layers, Some(4));
        assert_eq!(c.overprovision_layers, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(AirphantConfig::default()
            .with_total_bins(0)
            .validate()
            .is_err());
        assert!(AirphantConfig::default()
            .with_accuracy(0.0)
            .validate()
            .is_err());
        assert!(AirphantConfig::default()
            .with_manual_layers(0)
            .validate()
            .is_err());
        let c = AirphantConfig {
            common_fraction: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AirphantConfig {
            topk_delta: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
