//! Document retrieval and false-positive filtering — the routine Airphant
//! and the SQLite baseline share ("SQLite reuses the same document
//! retrieval routine from Airphant", §V-A0b).
//!
//! Given a final postings list, fetch all referenced documents in one
//! concurrent batch, then filter out documents that do not actually satisfy
//! the predicate: "Searcher filters out irrelevant documents after fetching
//! the documents. This filtering process is much fast\[er\] compared to
//! document-fetching" (§III-C).

use crate::result::SearchHit;
use airphant_storage::{ObjectStore, PhaseKind, QueryTrace, RangeRequest, SimDuration};
use iou_sketch::Posting;

/// Resolves interned blob ids back to blob names.
pub trait BlobResolver {
    /// The blob name for `id`, if known.
    fn resolve(&self, id: u32) -> Option<&str>;
}

impl BlobResolver for iou_sketch::encoding::StringTable {
    fn resolve(&self, id: u32) -> Option<&str> {
        self.name(id)
    }
}

/// Fetch the documents of `postings` in one concurrent batch and keep those
/// whose text satisfies `predicate`. Returns the retained hits and the
/// number filtered out; records the fetch as a [`PhaseKind::Documents`]
/// phase and the filter as compute time.
pub fn fetch_and_filter(
    store: &dyn ObjectStore,
    resolver: &dyn BlobResolver,
    postings: &[Posting],
    predicate: &dyn Fn(&str) -> bool,
    trace: &mut QueryTrace,
) -> airphant_storage::Result<(Vec<SearchHit>, usize)> {
    if postings.is_empty() {
        return Ok((Vec::new(), 0));
    }
    let requests: Vec<RangeRequest> = postings
        .iter()
        .map(|p| {
            let name = resolver.resolve(p.blob).unwrap_or_default().to_owned();
            RangeRequest::new(name, p.offset, p.len as u64)
        })
        .collect();
    let batch = store.get_ranges(&requests)?;
    trace.record_batch(PhaseKind::Documents, &batch);

    let filter_start = std::time::Instant::now();
    let mut hits = Vec::with_capacity(batch.parts.len());
    let mut dropped = 0usize;
    for (req, part) in requests.iter().zip(batch.parts.iter()) {
        let text = String::from_utf8_lossy(&part.bytes).into_owned();
        if predicate(&text) {
            hits.push(SearchHit {
                blob: req.name.clone(),
                offset: req.offset,
                len: req.len as u32,
                text,
            });
        } else {
            dropped += 1;
        }
    }
    trace.record_compute(SimDuration::from_secs_f64(
        filter_start.elapsed().as_secs_f64(),
    ));
    Ok((hits, dropped))
}

/// Predicate for "document contains keyword `word`" under a tokenizer.
pub fn contains_word<'a>(
    tokenizer: &'a dyn airphant_corpus::Tokenizer,
    word: &'a str,
) -> impl Fn(&str) -> bool + 'a {
    move |text: &str| tokenizer.tokens(text).iter().any(|t| t == word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::WhitespaceTokenizer;
    use airphant_storage::InMemoryStore;
    use bytes::Bytes;
    use iou_sketch::encoding::StringTable;

    fn setup() -> (InMemoryStore, StringTable, Vec<Posting>) {
        let store = InMemoryStore::new();
        store
            .put("blob-0", Bytes::from_static(b"hello world\nbye world"))
            .unwrap();
        let mut st = StringTable::new();
        let id = st.intern("blob-0");
        let postings = vec![Posting::new(id, 0, 11), Posting::new(id, 12, 9)];
        (store, st, postings)
    }

    #[test]
    fn fetch_and_filter_removes_false_positives() {
        let (store, st, postings) = setup();
        let mut trace = QueryTrace::new();
        let tok = WhitespaceTokenizer;
        let pred = contains_word(&tok, "hello");
        let (hits, dropped) = fetch_and_filter(&store, &st, &postings, &pred, &mut trace).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text, "hello world");
        assert_eq!(dropped, 1);
        assert_eq!(trace.requests(), 2);
        assert_eq!(trace.bytes(), 20);
    }

    #[test]
    fn empty_postings_is_free() {
        let (store, st, _) = setup();
        let mut trace = QueryTrace::new();
        let (hits, dropped) = fetch_and_filter(&store, &st, &[], &|_| true, &mut trace).unwrap();
        assert!(hits.is_empty());
        assert_eq!(dropped, 0);
        assert_eq!(trace.requests(), 0);
    }

    #[test]
    fn contains_word_is_exact_token_match() {
        let tok = WhitespaceTokenizer;
        let pred = contains_word(&tok, "hell");
        assert!(!pred("hello world"), "substring must not match");
        let pred = contains_word(&tok, "hello");
        assert!(pred("say hello twice"));
    }

    #[test]
    fn unknown_blob_id_yields_error() {
        let (store, st, _) = setup();
        let mut trace = QueryTrace::new();
        let bogus = vec![Posting::new(99, 0, 4)];
        let r = fetch_and_filter(&store, &st, &bogus, &|_| true, &mut trace);
        assert!(r.is_err(), "unresolvable blob id should surface as error");
    }
}
