//! Vocabulary expansion: rewriting Prefix/Fuzzy atoms (and short
//! substring patterns) into term unions before planning.
//!
//! The IoU sketch can only answer exact-term lookups, so every
//! vocabulary-resolved atom is lowered to `Or([Term, …])` over the union
//! of the target segments' vocabularies — *before* [`Query::atoms`] runs.
//! The planner then sees an ordinary boolean query and keeps the
//! single-batch guarantee: one `get_ranges` round trip no matter how many
//! terms the expansion produced.
//!
//! Exactness: the expanded query is used for both the postings evaluation
//! and the verify pass. Every fetched candidate's tokens are, by
//! construction, members of its own segment's vocabulary, so checking the
//! expanded union against the token set decides exactly the original
//! predicate (a token starts with the prefix ⟺ it is one of the
//! prefix-matching vocabulary terms, and likewise for fuzzy matches and
//! gram-contained short patterns).
//!
//! Segments without a vocabulary section (v1, or v2 written before
//! prefix/fuzzy support) yield a typed
//! [`AirphantError::UnsupportedQuery`] — never a panic, and never a
//! silent partial answer.

use crate::error::AirphantError;
use crate::query::Query;
use crate::searcher::Searcher;
use iou_sketch::Vocabulary;
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The most vocabulary terms one atom may expand to. A deterministic
/// guard against degenerate expansions (e.g. `Query::prefix("")` on a
/// huge vocabulary): exceeding it is a typed error, not a truncated —
/// and therefore silently wrong — answer.
pub const EXPANSION_CAP: usize = 4096;

/// Rewrite `query` against the vocabularies of `segments`. Returns the
/// input untouched (borrowed) when no node needs expansion.
///
/// Error/fallback contract:
/// * Prefix/Fuzzy atoms *require* a vocabulary on every target segment —
///   any segment without one is a typed [`AirphantError::UnsupportedQuery`].
/// * Short substring patterns expand only when the segments are gram
///   indexes of the pattern's gram size (the containment argument below
///   needs it) *and* every segment has a vocabulary. Otherwise the node
///   is left alone and [`Query::atoms`] surfaces the legacy typed
///   [`AirphantError::PatternTooShort`](crate::AirphantError::PatternTooShort)
///   — the fallback layer doesn't exist, so the old contract stands.
pub(crate) fn expand_for_segments<'q>(
    query: &'q Query,
    segments: &[&Searcher],
) -> crate::Result<Cow<'q, Query>> {
    if !query.needs_expansion() {
        return Ok(Cow::Borrowed(query));
    }
    let mut vocabs: Vec<&Arc<Vocabulary>> = Vec::with_capacity(segments.len());
    let mut missing: Option<&str> = None;
    for s in segments {
        match s.vocab() {
            Some(v) => vocabs.push(v),
            None => missing = Some(s.prefix()),
        }
    }
    if let Some(prefix) = missing {
        if has_prefix_or_fuzzy(query) {
            return Err(AirphantError::UnsupportedQuery {
                reason: format!(
                    "index {prefix:?} has a segment without a vocabulary section (v1, or v2 \
                     written before prefix/fuzzy support) — prefix and fuzzy queries need \
                     segments built with format v2"
                ),
            });
        }
        // Only short substrings wanted expansion; without a vocabulary on
        // every segment the legacy PatternTooShort contract applies.
        return Ok(Cow::Borrowed(query));
    }
    // The substring fallback is exact only on gram indexes: every
    // length-< n substring of a document lies inside some n-gram token,
    // so "text contains pattern" ⟺ "some vocabulary gram contains
    // pattern" (for documents of ≥ n chars, which gram tokenization
    // guarantees index their whole text as one gram anyway).
    let gram_n = common_gram_size(segments);
    Ok(Cow::Owned(rewrite(query, &vocabs, gram_n)?))
}

/// Does the query contain a Prefix or Fuzzy atom (the atoms with no
/// non-vocabulary fallback)?
fn has_prefix_or_fuzzy(query: &Query) -> bool {
    match query {
        Query::Prefix { .. } | Query::Fuzzy { .. } => true,
        Query::And(qs) | Query::Or(qs) => qs.iter().any(has_prefix_or_fuzzy),
        _ => false,
    }
}

/// The gram size shared by every segment's tokenizer, or `None` when any
/// segment is not a gram index (or they disagree).
fn common_gram_size(segments: &[&Searcher]) -> Option<usize> {
    let mut sizes = segments.iter().map(|s| s.tokenizer().gram_size());
    let first = sizes.next()??;
    sizes.all(|s| s == Some(first)).then_some(first)
}

fn rewrite(
    query: &Query,
    vocabs: &[&Arc<Vocabulary>],
    gram_n: Option<usize>,
) -> crate::Result<Query> {
    Ok(match query {
        Query::Prefix { term } => union_query(vocabs, query, |v| {
            v.prefix_matches(term).iter().map(String::as_str).collect()
        })?,
        Query::Fuzzy { term, max_edits } => {
            union_query(vocabs, query, |v| v.fuzzy_matches(term, *max_edits))?
        }
        Query::Substring { pattern, n } if query.needs_expansion() && gram_n == Some(*n) => {
            // Gram tokens are case-folded at build time; fold the pattern
            // the same way (Query::substring already does, but the
            // variant can be constructed directly).
            let folded;
            let pat = if pattern.bytes().any(|b| b.is_ascii_uppercase()) {
                folded = pattern.to_ascii_lowercase();
                folded.as_str()
            } else {
                pattern.as_str()
            };
            union_query(vocabs, query, |v| v.containing(pat))?
        }
        Query::And(qs) => Query::And(
            qs.iter()
                .map(|q| rewrite(q, vocabs, gram_n))
                .collect::<crate::Result<_>>()?,
        ),
        Query::Or(qs) => Query::Or(
            qs.iter()
                .map(|q| rewrite(q, vocabs, gram_n))
                .collect::<crate::Result<_>>()?,
        ),
        other => other.clone(),
    })
}

/// The union over all vocabularies of one atom's matching terms, lowered
/// to `Or([Term, …])` in sorted order (deterministic across runs and
/// shard layouts).
fn union_query(
    vocabs: &[&Arc<Vocabulary>],
    atom: &Query,
    matches: impl Fn(&Vocabulary) -> Vec<&str>,
) -> crate::Result<Query> {
    let mut terms: BTreeSet<&str> = BTreeSet::new();
    for v in vocabs {
        terms.extend(matches(v));
        if terms.len() > EXPANSION_CAP {
            return Err(AirphantError::UnsupportedQuery {
                reason: format!(
                    "{atom:?} expands to more than {EXPANSION_CAP} vocabulary terms; \
                     narrow the atom"
                ),
            });
        }
    }
    Ok(Query::Or(terms.into_iter().map(Query::term).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab(words: &[&str]) -> Arc<Vocabulary> {
        let mut terms: Vec<String> = words.iter().map(|w| (*w).to_string()).collect();
        terms.sort();
        terms.dedup();
        Arc::new(Vocabulary::build(terms).unwrap())
    }

    #[test]
    fn prefix_rewrites_to_sorted_term_union() {
        let a = vocab(&["type", "typo", "tar"]);
        let b = vocab(&["typeahead", "zebra"]);
        let q = rewrite(&Query::prefix("ty"), &[&a, &b], None).unwrap();
        assert_eq!(
            q,
            Query::Or(vec![
                Query::term("type"),
                Query::term("typeahead"),
                Query::term("typo"),
            ])
        );
    }

    #[test]
    fn fuzzy_and_nested_booleans_rewrite_in_place() {
        let v = vocab(&["disk", "disc", "dusk", "zebra"]);
        let q = Query::term("keep").and(Query::fuzzy("disk", 1));
        let r = rewrite(&q, &[&v], None).unwrap();
        assert_eq!(
            r,
            Query::And(vec![
                Query::term("keep"),
                Query::Or(vec![
                    Query::term("disc"),
                    Query::term("disk"),
                    Query::term("dusk"),
                ]),
            ])
        );
    }

    #[test]
    fn short_substring_rewrites_to_containing_grams() {
        let v = vocab(&["abx", "xab", "xyz"]);
        let q = rewrite(&Query::substring("ab", 3), &[&v], Some(3)).unwrap();
        assert_eq!(q, Query::Or(vec![Query::term("abx"), Query::term("xab")]));
        // Long-enough patterns are left alone.
        let q = Query::substring("abc", 3);
        assert_eq!(rewrite(&q, &[&v], Some(3)).unwrap(), q);
        // Non-gram (or mismatched-gram) indexes keep the node verbatim:
        // the fallback layer does not exist there.
        let q = Query::substring("ab", 3);
        assert_eq!(rewrite(&q, &[&v], None).unwrap(), q);
        assert_eq!(rewrite(&q, &[&v], Some(4)).unwrap(), q);
    }

    #[test]
    fn no_match_expands_to_empty_or() {
        let v = vocab(&["alpha"]);
        let q = rewrite(&Query::prefix("zz"), &[&v], None).unwrap();
        assert_eq!(q, Query::Or(vec![]));
    }

    #[test]
    fn cap_is_a_typed_error() {
        let words: Vec<String> = (0..EXPANSION_CAP + 2).map(|i| format!("w{i:06}")).collect();
        let v = Arc::new(
            Vocabulary::build({
                let mut t = words.clone();
                t.sort();
                t
            })
            .unwrap(),
        );
        match rewrite(&Query::prefix("w"), &[&v], None) {
            Err(AirphantError::UnsupportedQuery { reason }) => {
                assert!(reason.contains("expands"), "{reason}");
            }
            other => panic!("expected UnsupportedQuery, got {other:?}"),
        }
    }
}
