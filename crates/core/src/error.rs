//! Engine-level error type.

use std::fmt;

/// Errors from building or searching an Airphant index.
///
/// `#[non_exhaustive]`: match with a wildcard arm — new error variants
/// are additive, not breaking (see the stability contract in the crate
/// docs).
#[derive(Debug)]
#[non_exhaustive]
pub enum AirphantError {
    /// Underlying storage failure.
    Storage(airphant_storage::StorageError),
    /// Sketch construction/encoding/optimization failure.
    Sketch(iou_sketch::SketchError),
    /// The index the Searcher tried to open is missing or incomplete.
    IndexNotFound {
        /// The index prefix that was probed.
        prefix: String,
    },
    /// Invalid engine configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The segment manifest under `base` exists but cannot be decoded —
    /// truncated, non-UTF-8, an unrecognized format version, or a
    /// malformed generation/segment record. Surfaced as a typed error so
    /// corruption is diagnosed at the manifest, not as a confusing
    /// `IndexNotFound`/decode failure on some mangled segment prefix.
    CorruptManifest {
        /// The segmented-index base prefix whose manifest is corrupt.
        base: String,
        /// What exactly failed to parse.
        reason: String,
    },
    /// A sharded index's layout blob names a shard whose segment
    /// manifest is missing — the layout is incomplete (a crashed create,
    /// a partial delete) or mis-addressed. Named by shard so the
    /// diagnosis points at the exact hole instead of a generic
    /// [`AirphantError::IndexNotFound`] on some derived prefix.
    ShardNotFound {
        /// The sharded-index base prefix.
        base: String,
        /// The shard index whose manifest is missing.
        shard: usize,
        /// Total shard count the layout declares.
        shards: usize,
        /// The layout generation that named the shard — a reader racing
        /// an online reshard sees at a glance whether it held a stale
        /// layout when the lookup failed.
        generation: u64,
        /// Home-region names of the shard's replicas under that layout
        /// (empty for a single-home layout).
        replicas: Vec<String>,
    },
    /// A substring pattern shorter than the index's gram size: it cannot
    /// be prefiltered through the N-gram index, so instead of silently
    /// returning nothing (or degrading to a corpus scan) the query is
    /// rejected with this typed error.
    PatternTooShort {
        /// The offending pattern.
        pattern: String,
        /// The gram size the query targeted.
        n: usize,
    },
    /// A document appended to the streaming memtable that the
    /// line-oriented corpus codec cannot represent faithfully — empty
    /// (the line splitter skips blank lines) or containing a raw
    /// newline (which would split it into several documents at flush).
    /// Rejected at append so the live result and the post-flush result
    /// stay byte-for-byte identical.
    InvalidDocument {
        /// Why the document cannot be ingested.
        reason: String,
    },
    /// The query needs an index capability the target segments lack —
    /// e.g. a Prefix/Fuzzy atom (or a short-substring fallback) against a
    /// v1 or pre-vocabulary v2 segment that carries no vocabulary
    /// section, or a vocabulary expansion exceeding the planner's cap.
    /// Typed, never a panic: old segments keep decoding and answering
    /// every query shape they supported when they were written.
    UnsupportedQuery {
        /// What capability was missing and for which atom.
        reason: String,
    },
}

impl fmt::Display for AirphantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AirphantError::Storage(e) => write!(f, "storage error: {e}"),
            AirphantError::Sketch(e) => write!(f, "sketch error: {e}"),
            AirphantError::IndexNotFound { prefix } => {
                write!(f, "no index found under prefix {prefix}")
            }
            AirphantError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            AirphantError::CorruptManifest { base, reason } => {
                write!(f, "corrupt segment manifest under {base}: {reason}")
            }
            AirphantError::ShardNotFound {
                base,
                shard,
                shards,
                generation,
                replicas,
            } => {
                write!(
                    f,
                    "shard {shard} of {shards} under {base} (layout generation {generation}) \
                     has no segment manifest (sharded index incomplete, wrong base prefix, \
                     or a stale layout raced a reshard)"
                )?;
                if !replicas.is_empty() {
                    write!(f, "; replicas homed in [{}]", replicas.join(", "))?;
                }
                Ok(())
            }
            AirphantError::PatternTooShort { pattern, n } => write!(
                f,
                "substring pattern {pattern:?} is shorter than the index gram size {n}"
            ),
            AirphantError::InvalidDocument { reason } => {
                write!(f, "document cannot be ingested: {reason}")
            }
            AirphantError::UnsupportedQuery { reason } => {
                write!(f, "unsupported query: {reason}")
            }
        }
    }
}

impl std::error::Error for AirphantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AirphantError::Storage(e) => Some(e),
            AirphantError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<airphant_storage::StorageError> for AirphantError {
    fn from(e: airphant_storage::StorageError) -> Self {
        AirphantError::Storage(e)
    }
}

impl From<iou_sketch::SketchError> for AirphantError {
    fn from(e: iou_sketch::SketchError) -> Self {
        AirphantError::Sketch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AirphantError =
            airphant_storage::StorageError::BlobNotFound { name: "x".into() }.into();
        assert!(e.to_string().contains("blob not found"));
        let e: AirphantError = iou_sketch::SketchError::InvalidConfig {
            reason: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("sketch error"));
        assert!(AirphantError::IndexNotFound {
            prefix: "idx".into()
        }
        .to_string()
        .contains("idx"));
        let e = AirphantError::PatternTooShort {
            pattern: "ab".into(),
            n: 3,
        };
        assert!(e.to_string().contains("\"ab\""));
        assert!(e.to_string().contains('3'));
        let e = AirphantError::ShardNotFound {
            base: "idx".into(),
            shard: 2,
            shards: 8,
            generation: 3,
            replicas: vec!["us-central1-c".into(), "europe-west2-c".into()],
        };
        assert!(e.to_string().contains("shard 2 of 8"));
        assert!(e.to_string().contains("idx"));
        assert!(e.to_string().contains("generation 3"));
        assert!(e.to_string().contains("us-central1-c, europe-west2-c"));
    }
}
