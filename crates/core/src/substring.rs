//! Substring (regex-prefilter style) search over an N-gram index (§IV-F).
//!
//! "Regular expression (RegEx) can benefit from IoU Sketch as inverted
//! index by considering indexing N-grams … These engines use an inverted
//! index as a filter to avoid a full corpus scan, and later match the
//! remaining documents with the RegEx to remove false positives. Hence,
//! superpost's false positives do not affect the final correctness."
//!
//! The literal-substring case of that pipeline is now a first-class AST
//! node — [`Query::Substring`] — executed by the planner: the pattern's
//! distinct `n`-grams join the query's other atoms in the **single**
//! superpost batch, and the verify pass does the exact (case-insensitive)
//! `contains` check. This module keeps the old `search_substring` method
//! as a deprecated shim over [`Query::substring`] +
//! [`Searcher::execute`] — use the [`Query`] AST directly in new code.

use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::searcher::Searcher;
use crate::Result;

impl Searcher {
    /// Find documents whose text contains `pattern` as a (case-insensitive)
    /// substring. The index must have been built with an
    /// [`airphant_corpus::NgramTokenizer`] of size `n`.
    ///
    /// Deprecated shim over [`Searcher::execute`] with
    /// [`Query::substring`]. Unlike the pre-0.2 method, a pattern shorter
    /// than `n` now fails with
    /// [`AirphantError::PatternTooShort`](crate::AirphantError::PatternTooShort)
    /// instead of silently returning an empty result.
    #[deprecated(
        since = "0.2.0",
        note = "use `Searcher::execute` with `Query::substring`"
    )]
    pub fn search_substring(&self, pattern: &str, n: usize) -> Result<SearchResult> {
        self.execute(&Query::substring(pattern, n), &QueryOptions::new())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use crate::error::AirphantError;
    use crate::query::{Query, QueryOptions};
    use crate::Searcher;
    use airphant_corpus::{Corpus, LineSplitter, NgramTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn ngram_searcher(lines: &[&str]) -> Searcher {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(NgramTokenizer::new(3)),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(512)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
        Searcher::open_with_tokenizer(store, "idx", Arc::new(NgramTokenizer::new(3))).unwrap()
    }

    #[test]
    fn finds_substrings_across_word_boundaries() {
        let s = ngram_searcher(&[
            "PacketResponder terminating",
            "block blk_12345 received",
            "NameSystem.addStoredBlock updated",
        ]);
        let r = s.search_substring("blk_123", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("blk_12345"));
        // Substring spanning a space.
        let r = s.search_substring("Responder term", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn is_case_insensitive() {
        let s = ngram_searcher(&["ERROR Disk Failure", "info all good"]);
        let r = s.search_substring("disk fail", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn no_false_positives_after_verify() {
        // Document "xabay babx" contains both grams of "abab" ({aba, bab})
        // without containing "abab": the verify pass must drop it.
        let s = ngram_searcher(&["xabay babx", "the abab string"]);
        let r = s.search_substring("abab", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("abab"));
        assert!(
            r.false_positives_removed >= 1,
            "the gram-sharing decoy must have been filtered"
        );
    }

    #[test]
    fn shim_agrees_with_execute() {
        let s = ngram_searcher(&["block blk_42 ok", "packet drop"]);
        let old = s.search_substring("blk_42", 3).unwrap();
        let new = s
            .execute(&Query::substring("blk_42", 3), &QueryOptions::new())
            .unwrap();
        assert_eq!(old.hits.len(), 1);
        assert_eq!(old.hits[0].text, new.hits[0].text);
        assert_eq!(old.candidates, new.candidates);
    }

    #[test]
    fn short_pattern_is_a_typed_error() {
        let s = ngram_searcher(&["hello world"]);
        for pattern in ["he", ""] {
            match s.search_substring(pattern, 3) {
                Err(AirphantError::PatternTooShort { pattern: p, n }) => {
                    assert_eq!(p, pattern);
                    assert_eq!(n, 3);
                }
                other => panic!("expected PatternTooShort, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_substring_returns_empty() {
        let s = ngram_searcher(&["hello world"]);
        let r = s.search_substring("zzzzzz", 3).unwrap();
        assert!(r.hits.is_empty());
    }
}
