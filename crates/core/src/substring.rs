//! Substring (regex-prefilter style) search over an N-gram index (§IV-F).
//!
//! "Regular expression (RegEx) can benefit from IoU Sketch as inverted
//! index by considering indexing N-grams … These engines use an inverted
//! index as a filter to avoid a full corpus scan, and later match the
//! remaining documents with the RegEx to remove false positives. Hence,
//! superpost's false positives do not affect the final correctness."
//!
//! We implement the literal-substring case of that pipeline: index the
//! corpus with [`airphant_corpus::NgramTokenizer`], then answer
//! `search_substring(pattern)` by intersecting the pattern's grams'
//! superposts and verifying candidates with a plain `contains` check —
//! exactly the filter-then-verify structure trigram regex engines use.

use crate::result::SearchResult;
use crate::retrieval::fetch_and_filter;
use crate::searcher::Searcher;
use crate::Result;
use airphant_corpus::{NgramTokenizer, Tokenizer};
use airphant_storage::QueryTrace;
use iou_sketch::PostingsList;

impl Searcher {
    /// Find documents whose text contains `pattern` as a (case-insensitive)
    /// substring. The index must have been built with an
    /// [`NgramTokenizer`] of size `n`; patterns shorter than `n` cannot be
    /// pre-filtered and return an empty result.
    pub fn search_substring(&self, pattern: &str, n: usize) -> Result<SearchResult> {
        let tokenizer = NgramTokenizer::new(n);
        let mut grams = tokenizer.tokens(pattern);
        grams.sort_unstable();
        grams.dedup();
        if pattern.chars().count() < n || grams.is_empty() {
            return Ok(SearchResult {
                hits: Vec::new(),
                trace: QueryTrace::new(),
                candidates: 0,
                false_positives_removed: 0,
            });
        }

        // Filter phase: intersect every gram's superpost intersection.
        let mut trace = QueryTrace::new();
        let mut acc: Option<PostingsList> = None;
        for gram in &grams {
            let (list, t) = self.lookup(gram)?;
            trace.extend(&t);
            acc = Some(match acc {
                Some(prev) => prev.intersect(&list),
                None => list,
            });
            if acc.as_ref().is_some_and(|l| l.is_empty()) {
                break; // no candidate can survive
            }
        }
        let candidates_list = acc.unwrap_or_default();
        let candidates: Vec<iou_sketch::Posting> =
            candidates_list.iter().copied().collect();

        // Verify phase: exact substring match on document content.
        let needle = pattern.to_ascii_lowercase();
        let predicate = move |text: &str| text.to_ascii_lowercase().contains(&needle);
        let (hits, dropped) = fetch_and_filter(
            self.store_dyn(),
            self.mht().string_table(),
            &candidates,
            &predicate,
            &mut trace,
        )?;
        Ok(SearchResult {
            hits,
            trace,
            candidates: candidates.len(),
            false_positives_removed: dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use crate::Searcher;
    use airphant_corpus::{Corpus, LineSplitter, NgramTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn ngram_searcher(lines: &[&str]) -> Searcher {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(NgramTokenizer::new(3)),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(512)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
        Searcher::open_with_tokenizer(store, "idx", Arc::new(NgramTokenizer::new(3))).unwrap()
    }

    #[test]
    fn finds_substrings_across_word_boundaries() {
        let s = ngram_searcher(&[
            "PacketResponder terminating",
            "block blk_12345 received",
            "NameSystem.addStoredBlock updated",
        ]);
        let r = s.search_substring("blk_123", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("blk_12345"));
        // Substring spanning a space.
        let r = s.search_substring("Responder term", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn is_case_insensitive() {
        let s = ngram_searcher(&["ERROR Disk Failure", "info all good"]);
        let r = s.search_substring("disk fail", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn no_false_positives_after_verify() {
        // "abcxyz" and "xyzabc" share all individual trigram *sets* with
        // neither containing the other as substring? They don't share all
        // grams, so craft a sharper case: "aabba" vs pattern "abab" —
        // grams of "abab" = {aba, bab}; document "xabay babx" contains
        // both grams but not "abab".
        let s = ngram_searcher(&["xabay babx", "the abab string"]);
        let r = s.search_substring("abab", 3).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("abab"));
        assert!(
            r.false_positives_removed >= 1,
            "the gram-sharing decoy must have been filtered"
        );
    }

    #[test]
    fn short_pattern_returns_empty() {
        let s = ngram_searcher(&["hello world"]);
        let r = s.search_substring("he", 3).unwrap();
        assert!(r.hits.is_empty());
        let r = s.search_substring("", 3).unwrap();
        assert!(r.hits.is_empty());
    }

    #[test]
    fn missing_substring_returns_empty() {
        let s = ngram_searcher(&["hello world"]);
        let r = s.search_substring("zzzzzz", 3).unwrap();
        assert!(r.hits.is_empty());
    }
}
